//! The sharded Dimmunix engine: lock-id partitioning with a cross-shard
//! detection path.
//!
//! The paper serializes the three Dimmunix hooks behind one global VM lock
//! (§4), which is fine on a 2007 phone but makes every acquisition in a
//! heavily threaded process serialize through a single mutex. This module
//! splits the engine state into `N` shards keyed by lock id, so uncontended
//! acquisitions of locks on different shards never touch the same state:
//!
//! * **A shard owns the locks that hash to it**: their RAG lock nodes, the
//!   request/yield/pending-grant edges of threads whose outstanding request
//!   targets one of its locks, the position-queue entries created by grants
//!   of its locks, and its own [`Stats`] (rolled up on read).
//! * **Every shard reads one shared, immutable
//!   [`HistorySnapshot`](crate::HistorySnapshot)** — the history, the
//!   canonical outer-position table, and the
//!   [`SignatureIndex`](crate::SignatureIndex) exist once per process, not
//!   once per shard. A detection builds the successor snapshot
//!   (copy-on-write, epoch bumped), appends one record to the history log,
//!   and installs the new `Arc` into every shard under the all-shard lock
//!   ([`broadcast_signature`]); [`SignatureId`]s are globally consistent by
//!   construction because there is exactly one history. Each shard keeps a
//!   lazy link from its own interned positions to the snapshot's canonical
//!   outer ids, so the avoidance hot path still runs entirely inside the
//!   home shard.
//!
//! ## Fast path vs cross-shard path
//!
//! A request can be decided entirely inside its home shard
//! ([`try_request_local`]) when neither detection nor avoidance can possibly
//! need another shard's state:
//!
//! * the requester holds no lock on any shard (so no wait-for cycle can run
//!   through it — cycles need an edge *into* the requester, i.e. a lock it
//!   holds), and
//! * no history signature mentions the requesting position (so the
//!   avoidance instantiation check is vacuous — the common case, since
//!   deadlock histories touch few sites).
//!
//! Otherwise the request takes the cross-shard path
//! ([`request_cross_shard`]): the caller acquires **all shards in ascending
//! index order** (a total order, so two concurrent cross-shard requests
//! cannot deadlock the engine itself) and the decision is computed against
//! the merged view:
//!
//! * the merged wait-for relation is the concatenation of the per-shard
//!   relations (a thread's out-edges all live in the shard of its
//!   outstanding request, so concatenation introduces neither duplicates nor
//!   order changes);
//! * the merged occupancy of a signature's outer position is the union of
//!   every shard's local queue at that slot;
//! * hold-recency queries (`last_history_hold`) merge per-shard holds by the
//!   global acquisition sequence number stamped through
//!   [`Dimmunix::acquired_with_seq`];
//! * a lock's **owner set** (one entry per owner — several for a reader
//!   crowd) lives whole in the lock's home shard, so the merged view unions
//!   owner sets per lock trivially: the wait-for fan-out of a request (one
//!   edge per conflicting owner) is generated inside the shard that owns
//!   both the request edge and the lock node, and concatenation preserves
//!   it exactly.
//!
//! Detection results flow back through the owning shards: the signature is
//! appended to every replica, the yield/queue bookkeeping is written to the
//! shard that owns the affected lock, and counters/events land on the home
//! shard.
//!
//! ## Determinism and the single-shard oracle
//!
//! [`ShardedDimmunix`] is, like [`Dimmunix`], a deterministic state machine
//! with no interior locking; `dimmunix-rt` supplies the actual per-shard
//! mutexes. `ShardedDimmunix` with `shards = 1` routes *everything* through
//! one shard and is observably equivalent to a plain [`Dimmunix`], which is
//! what the property tests exploit: the same random workload is driven
//! through a monolithic engine and through sharded engines with several
//! shard counts, asserting identical outcomes, counters, and histories
//! (`tests/proptests.rs`).

use crate::avoidance::{instantiable_with_candidates, Instantiation};
use crate::callstack::CallStack;
use crate::config::Config;
use crate::engine::{Dimmunix, RequestOutcome};
use crate::events::EventKind;
use crate::history::History;
use crate::position::PositionId;
use crate::rag::{find_cycle_with, AccessMode, CycleStep, WaitEdge, YieldRecord};
use crate::signature::{Signature, SignatureKind, SignaturePair};
use crate::snapshot::HistorySnapshot;
use crate::stats::Stats;
use crate::{LockId, OwnerId, SignatureId};
use std::collections::HashMap;
use std::sync::Arc;

/// Upper bound on the number of shards (holds-per-shard bookkeeping is a
/// 64-bit mask).
pub const MAX_SHARDS: usize = 64;

/// Maps lock ids to shard indices.
///
/// The mapping is a Fibonacci multiplicative hash of the raw lock id, so
/// substrates that allocate sequential ids (like `dimmunix-rt`) spread their
/// locks evenly even when allocation patterns are strided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` shards, clamped to `1..=MAX_SHARDS`.
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: shards.clamp(1, MAX_SHARDS),
        }
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `lock`.
    pub fn shard_of(&self, lock: LockId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mixed = lock.index().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // High bits of the product are the well-mixed ones.
        ((mixed >> 32) % self.shards as u64) as usize
    }
}

/// The fast-path eligibility predicate, shared by [`ShardedDimmunix`] and
/// the `dimmunix-rt` runtime so the two routing layers cannot drift.
///
/// A request may be decided inside its home shard alone iff the requester
/// holds no lock on any shard (`holds_mask == 0`), any leftover request
/// edge from an abandoned acquisition lives in the home shard itself, and
/// no park can involve the requester in a cycle (`any_parked == false` —
/// the caller must evaluate this under a lock that a parking operation
/// would also need, e.g. the home shard's mutex, so a concurrent park
/// cannot be missed). With `lock_free_admission` enabled the caller scopes
/// that third condition to yield records naming the requester in their
/// blocker list; the legacy condition is "no owner parked anywhere".
/// [`try_request_local`] documents why these conditions make the
/// shard-local decision identical to the monolithic one.
pub fn fast_path_eligible(
    holds_mask: u64,
    stale_shard: Option<usize>,
    any_parked: bool,
    home: usize,
) -> bool {
    holds_mask == 0 && stale_shard.map_or(true, |s| s == home) && !any_parked
}

/// The stale-request-edge transition after a request, shared by
/// [`ShardedDimmunix`] and the `dimmunix-rt` runtime.
///
/// `Yield` and `DeadlockDetected` leave the request edge (and, for yields,
/// the park record) behind in the home shard until the thread retries,
/// completes, or cancels; a grant's edge is consumed by the following
/// `acquired`; the reentrant fast path and a disabled engine touch no
/// edges, so the previous value stands.
pub fn stale_shard_after(
    outcome: &RequestOutcome,
    prev: Option<usize>,
    home: usize,
    disabled: bool,
) -> Option<usize> {
    if disabled {
        return prev;
    }
    match outcome {
        RequestOutcome::Yield { .. } | RequestOutcome::DeadlockDetected { .. } => Some(home),
        RequestOutcome::Granted => None,
        RequestOutcome::GrantedReentrant => prev,
    }
}

/// The stale-edge transition when an acquisition or cancellation touches
/// `home`: both consume the request edge the home shard was carrying, so a
/// stale marker pointing at `home` is cleared; a marker pointing elsewhere
/// is untouched (the consumed edge was a different one). Shared by
/// [`ShardedDimmunix`] and the `dimmunix-rt` runtime.
pub fn stale_shard_consumed(prev: Option<usize>, home: usize) -> Option<usize> {
    if prev == Some(home) {
        None
    } else {
        prev
    }
}

/// The holds-mask transition after an engine call on `shard` changed (or
/// may have changed) the thread's holds there: bit `shard` reflects whether
/// the shard's RAG still records any hold for the thread. Re-derived from
/// the RAG rather than counted, so the mask can never drift. Shared by
/// [`ShardedDimmunix`] and the `dimmunix-rt` runtime.
pub fn holds_mask_with(mask: u64, shard: usize, holds_here: bool) -> u64 {
    if holds_here {
        mask | (1 << shard)
    } else {
        mask & !(1 << shard)
    }
}

/// Outcome of the shard-local fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalDecision {
    /// The request was fully decided inside the home shard.
    Decided(RequestOutcome),
    /// The request may need another shard's state (the requesting position
    /// appears in the history); the caller must take the cross-shard path.
    /// No engine state was modified beyond interning the position.
    NeedsCrossShard,
}

/// Attempts to decide a request entirely inside its home shard.
///
/// Precondition (enforced by the callers, [`ShardedDimmunix`] and the
/// `dimmunix-rt` runtime): the requesting thread holds no lock on **any**
/// shard, has no outstanding request or yield record on a *different*
/// shard, and **no yield record on any shard names it as a blocker**
/// ([`Rag::lists_yield_blocker`](crate::Rag::lists_yield_blocker) is false
/// everywhere — a yield record's blocker list is a snapshot, so a
/// starvation cycle can run through a thread that holds no lock at all,
/// but only by traversing a yield edge that names it; the legacy gate
/// conservatively requires [`Rag::yield_count`](crate::Rag::yield_count)
/// to be zero everywhere instead). A hold-free requester has no other
/// possible in-edge, so under that precondition no wait-for cycle can pass
/// through it, and shard-local detection plus an empty per-position
/// signature list make the shard-local decision identical to the
/// monolithic one.
pub fn try_request_local(
    shard: &mut Dimmunix,
    t: impl Into<OwnerId>,
    l: LockId,
    stack: &CallStack,
    mode: AccessMode,
) -> LocalDecision {
    let t = t.into();
    if shard.config().is_disabled() {
        return LocalDecision::Decided(shard.request_mode(t, l, stack, mode));
    }
    let pos = shard.intern_position(stack);
    // A position mentioned by any signature carries a link to its canonical
    // outer id in the shared snapshot; the membership test is one `Option`
    // read of shard-local state.
    if shard
        .positions()
        .get(pos)
        .and_then(|p| p.history_ref())
        .is_some()
    {
        return LocalDecision::NeedsCrossShard;
    }
    LocalDecision::Decided(shard.request_at_mode(t, l, pos, mode))
}

/// Decides a request against the full multi-shard view.
///
/// `shards` must contain **every** shard (the caller holds all of them, in
/// ascending index order when the shards live behind locks), `home` is the
/// index owning `l`, and `prev_request_shard` is the shard still carrying
/// the thread's previous request edge or yield record, if any (the request
/// edge moves to `home`, mirroring the monolithic engine's overwrite).
///
/// The decision logic mirrors [`Dimmunix::request_at`] step for step; only
/// the state accessors are merged across shards as described in the module
/// docs.
pub fn request_cross_shard(
    shards: &mut [&mut Dimmunix],
    router: &ShardRouter,
    t: impl Into<OwnerId>,
    l: LockId,
    stack: &CallStack,
    mode: AccessMode,
    prev_request_shard: Option<usize>,
) -> RequestOutcome {
    let t = t.into();
    let home = router.shard_of(l);
    let pos = shards[home].intern_position(stack);

    shards[home].tick();
    shards[home].stats_mut().requests += 1;
    shards[home].push_event(EventKind::Request {
        thread: t,
        lock: l,
        position: pos,
    });

    if shards[home].config().is_disabled() {
        shards[home].stats_mut().grants += 1;
        shards[home].rag_mut().register_owner(t);
        shards[home].rag_mut().register_lock(l);
        shards[home].rag_mut().set_pending_grant(t, l, pos, mode);
        return RequestOutcome::Granted;
    }

    // If the thread is retrying after a yield, it is no longer parked; the
    // record lives in the shard that answered the yielded request.
    shards[home].clear_yield_tracked(t);
    if let Some(prev) = prev_request_shard {
        if prev != home {
            shards[prev].clear_yield_tracked(t);
        }
    }

    // Reentrant fast path: a thread never deadlocks against itself on a
    // lock it already owns (in any mode).
    if shards[home].rag().owns(l, t) {
        shards[home].stats_mut().reentrant_grants += 1;
        shards[home].push_event(EventKind::ReentrantGrant { thread: t, lock: l });
        return RequestOutcome::GrantedReentrant;
    }

    // The request edge moves to the home shard (the monolithic engine's
    // `set_request` overwrite, split across shards).
    if let Some(prev) = prev_request_shard {
        if prev != home {
            shards[prev].rag_mut().clear_request(t);
        }
    }
    shards[home].rag_mut().set_request_mode(t, l, pos, mode);

    let detection = shards[home].config().detection;
    let avoidance = shards[home].config().avoidance;
    let starvation_handling = shards[home].config().starvation_handling;

    // --- Detection (merged wait-for relation) --------------------------
    if detection {
        let include_yields = starvation_handling;
        // One read-only snapshot serves cycle search and classification.
        let detected = {
            let ro: Vec<&Dimmunix> = shards.iter().map(|s| &**s).collect();
            find_cycle_with(t, |th| merged_successors(&ro, th, include_yields))
                .map(|steps| classify_cycle_merged(&ro, router, &steps))
        };
        if let Some(detected) = detected {
            let is_starvation = detected.involves_yield;
            let (sig_id, new) = broadcast_signature(shards, detected.signature.clone());
            if is_starvation {
                shards[home].stats_mut().starvations_detected += 1;
                if new {
                    shards[home].stats_mut().new_starvation_signatures += 1;
                }
                shards[home].push_event(EventKind::StarvationDetected {
                    thread: t,
                    signature: sig_id,
                    new_signature: new,
                });
                // Resume every parked participant (§2.2): clear its yield
                // (wherever it lives) and schedule a wake-up.
                for th in &detected.owners {
                    if let Some(y) = clear_yield_any(shards, *th) {
                        shards[home].push_pending_wakeup(y.signature);
                        shards[home].stats_mut().wakeups += 1;
                        shards[home].push_event(EventKind::Wakeup {
                            signature: y.signature,
                        });
                    }
                }
                // Fall through: the requester itself is then treated by the
                // avoidance logic below.
            } else {
                shards[home].stats_mut().deadlocks_detected += 1;
                if new {
                    shards[home].stats_mut().new_deadlock_signatures += 1;
                }
                shards[home].push_event(EventKind::DeadlockDetected {
                    thread: t,
                    signature: sig_id,
                    new_signature: new,
                });
                return RequestOutcome::DeadlockDetected {
                    signature: sig_id,
                    new_signature: new,
                    owners: detected.owners,
                };
            }
        }
    }

    // --- Avoidance (merged queue occupancy) ----------------------------
    if avoidance && !shards[home].history().is_empty() {
        shards[home].stats_mut().instantiation_checks += 1;
        let outer = shards[home]
            .positions()
            .get(pos)
            .and_then(|p| p.history_ref());
        let examined = outer.map_or(0, |o| {
            shards[home].signature_index().signatures_at(o).len() as u64
        });
        shards[home].stats_mut().signatures_examined += examined;
        // One read-only snapshot serves the instantiation check and, when it
        // matches, the starvation probe over the same state.
        let (inst, starvation_sig) = {
            let ro: Vec<&Dimmunix> = shards.iter().map(|s| &**s).collect();
            match outer.and_then(|o| find_instantiation_merged(&ro, home, t, o, l, mode)) {
                Some(inst) => {
                    let sig = (starvation_handling && would_starve_merged(&ro, t, &inst.blockers))
                        .then(|| starvation_signature_merged(&ro, home, pos, &inst.blockers));
                    (Some(inst), sig)
                }
                None => (None, None),
            }
        };
        if let Some(inst) = inst {
            let mut park = true;
            if let Some(sig) = starvation_sig {
                // Parking would itself create a wait-for cycle: record
                // the avoidance-induced deadlock and let the thread
                // proceed instead (§2.2).
                let (s_id, new) = broadcast_signature(shards, sig);
                shards[home].stats_mut().starvations_detected += 1;
                if new {
                    shards[home].stats_mut().new_starvation_signatures += 1;
                }
                shards[home].push_event(EventKind::StarvationDetected {
                    thread: t,
                    signature: s_id,
                    new_signature: new,
                });
                park = false;
            }
            if park {
                shards[home].stats_mut().yields += 1;
                shards[home].set_yield_tracked(
                    t,
                    YieldRecord {
                        signature: inst.signature,
                        position: pos,
                        lock: l,
                        blockers: inst.blockers,
                    },
                );
                shards[home].push_event(EventKind::Yield {
                    thread: t,
                    lock: l,
                    signature: inst.signature,
                });
                return RequestOutcome::Yield {
                    signature: inst.signature,
                };
            }
        }
    }

    // --- Grant ----------------------------------------------------------
    shards[home].stats_mut().grants += 1;
    if let Some(p) = shards[home].positions_mut().get_mut(pos) {
        p.queue_mut().push(t);
    }
    shards[home].rag_mut().set_pending_grant(t, l, pos, mode);
    shards[home].push_event(EventKind::Grant { thread: t, lock: l });
    RequestOutcome::Granted
}

// ----------------------------------------------------------------------
// Merged-view helpers
// ----------------------------------------------------------------------

/// The merged wait-for successors of `t`: concatenation of the per-shard
/// relations. A thread's out-edges (its outstanding request and its yield
/// blockers) all live in the shard of its outstanding request, so
/// concatenation yields exactly the monolithic successor list.
fn merged_successors(
    shards: &[&Dimmunix],
    t: OwnerId,
    include_yields: bool,
) -> Vec<(OwnerId, WaitEdge)> {
    let mut out = Vec::new();
    for s in shards {
        out.extend(s.rag().successors(t, include_yields));
    }
    out
}

/// A position pinned to the shard whose table interned it.
type ShardPos = (usize, PositionId);

fn stack_at(shards: &[&Dimmunix], loc: Option<ShardPos>) -> CallStack {
    loc.and_then(|(s, p)| shards[s].positions().get(p))
        .map(|p| p.stack().clone())
        .unwrap_or_default()
}

/// The shard and record of `t`'s outstanding request, if any.
fn requesting_any(shards: &[&Dimmunix], t: OwnerId) -> Option<(usize, LockId, PositionId)> {
    shards
        .iter()
        .enumerate()
        .find_map(|(i, s)| s.rag().requesting(t).map(|(l, p)| (i, l, p)))
}

/// The shard and yield record of `t`, if it is parked by avoidance.
fn yielding_any<'a>(shards: &'a [&Dimmunix], t: OwnerId) -> Option<(usize, &'a YieldRecord)> {
    shards
        .iter()
        .enumerate()
        .find_map(|(i, s)| s.rag().yielding(t).map(|y| (i, y)))
}

/// Clears `t`'s yield record in whichever shard carries it.
fn clear_yield_any(shards: &mut [&mut Dimmunix], t: OwnerId) -> Option<YieldRecord> {
    shards.iter_mut().find_map(|s| s.clear_yield_tracked(t))
}

/// Latest lock held by `t` (by global acquisition sequence) whose
/// acquisition position is flagged as in-history — the merged equivalent of
/// `detection::last_history_hold`.
fn last_history_hold_merged(shards: &[&Dimmunix], t: OwnerId) -> Option<ShardPos> {
    shards
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            s.rag()
                .held_locks(t)
                .iter()
                .filter(|e| {
                    s.positions()
                        .get(e.pos)
                        .map(|d| d.in_history())
                        .unwrap_or(false)
                })
                .map(move |e| (e.seq, (i, e.pos)))
        })
        .max_by_key(|(seq, _)| *seq)
        .map(|(_, loc)| loc)
}

/// Latest lock held by `t` across all shards, by global acquisition
/// sequence — the merged equivalent of `held_locks(t).last()`.
fn last_hold_merged(shards: &[&Dimmunix], t: OwnerId) -> Option<ShardPos> {
    shards
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            s.rag()
                .held_locks(t)
                .iter()
                .map(move |e| (e.seq, (i, e.pos)))
        })
        .max_by_key(|(seq, _)| *seq)
        .map(|(_, loc)| loc)
}

/// The merged equivalent of [`classify_cycle`](crate::classify_cycle):
/// resolves positions through the shard that interned them and hold recency
/// through the global acquisition sequence.
fn classify_cycle_merged(
    shards: &[&Dimmunix],
    router: &ShardRouter,
    steps: &[CycleStep],
) -> crate::detection::DetectedCycle {
    let n = steps.len();
    let mut pairs = Vec::with_capacity(n);
    let mut involves_yield = false;
    let owners: Vec<OwnerId> = steps.iter().map(|s| s.owner).collect();

    for i in 0..n {
        let waited_on = steps[(i + 1) % n].owner;
        let inner: Option<ShardPos> = requesting_any(shards, waited_on)
            .map(|(s, _, p)| (s, p))
            .or_else(|| yielding_any(shards, waited_on).map(|(s, y)| (s, y.position)));
        let outer: Option<ShardPos> = match &steps[i].edge {
            WaitEdge::Lock(lock) => {
                // The waited-on thread is one owner among possibly several
                // (a reader crowd): the template position is *its* `acqPos`.
                let s = router.shard_of(*lock);
                shards[s].rag().acq_pos_of(*lock, waited_on).map(|p| (s, p))
            }
            WaitEdge::Yield(_) => {
                involves_yield = true;
                last_history_hold_merged(shards, waited_on)
                    .or_else(|| last_hold_merged(shards, waited_on))
                    .or(inner)
            }
        };
        pairs.push(SignaturePair::new(
            stack_at(shards, outer),
            stack_at(shards, inner),
        ));
    }

    if steps.iter().any(|s| matches!(s.edge, WaitEdge::Yield(_))) {
        involves_yield = true;
    }

    let kind = if involves_yield {
        SignatureKind::Starvation
    } else {
        SignatureKind::Deadlock
    };
    crate::detection::DetectedCycle {
        owners,
        involves_yield,
        signature: Signature::new(kind, pairs),
    }
}

/// The merged instantiation check, in the shared snapshot's canonical
/// outer-position namespace (`outer` is the requesting position's canonical
/// id): candidate threads per outer slot are the union of every shard's
/// local queue at that slot (queue entries for one program location are
/// distributed across the shards whose locks were granted there). All
/// shards read the same snapshot `Arc`, so canonical ids are the common
/// coordinate system across shards by construction.
///
/// `lock` and `mode` are the requested lock and access mode. When the
/// request is [`AccessMode::Shared`], a thread whose only occupancy of a
/// slot is its own **shared hold of the same lock** is *not* a blocker:
/// the requester would join that thread's reader crowd, and two shared
/// holders of one lock cannot block each other, so the mutual-wait pattern
/// the signature predicts cannot run through that pair. Without this
/// carve-out every reader joining a crowd at a history position would be
/// parked against its own crowd-mates — a spurious (fail-safe) refusal.
///
/// The monolithic engine's avoidance check is the one-shard call
/// (`&[&engine]`, `home = 0`) — one implementation, so the single-engine
/// and sharded decisions cannot drift.
pub(crate) fn find_instantiation_merged(
    shards: &[&Dimmunix],
    home: usize,
    thread: OwnerId,
    outer: PositionId,
    lock: LockId,
    mode: AccessMode,
) -> Option<Instantiation> {
    let snapshot = shards[home].history_snapshot();
    'sigs: for &sig in snapshot.index().signatures_at(outer) {
        let slots = snapshot.index().outer_positions_of(sig);
        // An injective assignment of k slots touches at most k - 1 distinct
        // owners besides the pre-assigned requester, so a deterministic
        // prefix of k candidates per slot decides the matching exactly (any
        // slot offering ≥ k non-requester candidates can always be covered
        // last); the cap keeps each check O(arity²) however many thousands
        // of tasks crowd the position.
        let cap = slots.len();
        let mut candidates: Vec<Vec<OwnerId>> = Vec::with_capacity(cap);
        for slot in slots {
            let mut set: Vec<OwnerId> = Vec::new();
            for s in shards {
                let Some(pid) = s.local_position_of_outer(*slot) else {
                    continue;
                };
                let Some(p) = s.positions().get(pid) else {
                    continue;
                };
                // Crowd-mates (shared mode: owners whose only occupancy
                // of this slot is a shared hold of the requested lock)
                // are not adversaries and must not consume the cap.
                set.extend(p.queue().distinct_owners_capped(cap, |c| {
                    c != thread && !(mode.is_shared() && crowd_mate_occupancy(s, p, c, lock, pid))
                }));
            }
            if shards.len() > 1 {
                // Union of per-shard prefixes: the smallest `cap`
                // survivors are present in the merged prefix too.
                set.sort_unstable();
                set.dedup();
                set.truncate(cap);
            }
            if set.is_empty() && *slot != outer {
                // An unoccupied slot is only coverable by the pre-assigned
                // requester, and the requester stands at `outer`: this
                // signature cannot instantiate, whatever the other slots
                // hold. Bail before paying for the rest of the build and
                // the matching — the common case at a popular outer
                // position, where most co-indexed signatures have at least
                // one cold slot.
                continue 'sigs;
            }
            candidates.push(set);
        }
        let r = instantiable_with_candidates(slots, &candidates, thread, outer);
        if let Some(blockers) = r {
            // The one shared match point of the monolithic and sharded
            // request paths: refresh the antibody's eviction generation so
            // a signature that is actively steering schedules never counts
            // as stale.
            snapshot.note_matched(sig);
            return Some(Instantiation {
                signature: sig,
                blockers,
            });
        }
    }
    None
}

/// True if every occupancy of position `pid` (whose data `p` the caller
/// already holds) by thread `c` in shard `s` is explained by a shared hold
/// of `lock` itself — i.e. `c` covers the slot only as a member of the
/// reader crowd the requester is about to join. The owner-entry probe runs
/// first so the O(queue) occupancy count is paid only for actual
/// crowd-mates, never for ordinary candidates.
fn crowd_mate_occupancy(
    s: &Dimmunix,
    p: &crate::Position,
    c: OwnerId,
    lock: LockId,
    pid: PositionId,
) -> bool {
    let crowd = s
        .rag()
        .owner_entry(lock, c)
        .map(|o| usize::from(o.mode.is_shared() && o.pos == pid))
        .unwrap_or(0);
    crowd > 0 && p.queue().count(c) <= crowd
}

/// Merged equivalent of the engine's `would_starve`: true if parking `t`
/// would close a wait-for cycle through one of its blockers.
fn would_starve_merged(shards: &[&Dimmunix], t: OwnerId, blockers: &[OwnerId]) -> bool {
    let mut stack: Vec<OwnerId> = blockers.to_vec();
    let mut visited: Vec<OwnerId> = Vec::new();
    while let Some(current) = stack.pop() {
        if current == t {
            return true;
        }
        if visited.contains(&current) {
            continue;
        }
        visited.push(current);
        for (next, _) in merged_successors(shards, current, true) {
            stack.push(next);
        }
    }
    false
}

/// Merged equivalent of the engine's `starvation_signature`.
fn starvation_signature_merged(
    shards: &[&Dimmunix],
    home: usize,
    pos: PositionId,
    blockers: &[OwnerId],
) -> Signature {
    let mut pairs = Vec::with_capacity(1 + blockers.len());
    let requester_stack = stack_at(shards, Some((home, pos)));
    pairs.push(SignaturePair::new(requester_stack.clone(), requester_stack));
    for b in blockers {
        let requesting = requesting_any(shards, *b).map(|(s, _, p)| (s, p));
        let outer = last_history_hold_merged(shards, *b)
            .or_else(|| last_hold_merged(shards, *b))
            .or(requesting);
        let inner = requesting.or(outer);
        pairs.push(SignaturePair::new(
            stack_at(shards, outer),
            stack_at(shards, inner),
        ));
    }
    Signature::new(SignatureKind::Starvation, pairs)
}

/// Appends `sig` to the shared history and installs the successor snapshot
/// into every shard. The append itself — snapshot construction plus one
/// history-log record — happens exactly once, on the first shard; the
/// remaining shards only swap their `Arc` and reconcile their local
/// position links. `shards` must contain every shard, held under the
/// all-shard lock (ascending order) when the shards live behind mutexes.
///
/// Exposed so substrates that wrap shards in their own mutexes
/// (`dimmunix-rt`) install antibodies through the identical code path.
pub fn broadcast_signature(shards: &mut [&mut Dimmunix], sig: Signature) -> (SignatureId, bool) {
    let (first, rest) = shards.split_first_mut().expect("at least one shard");
    let (id, new) = first.insert_signature(sig);
    if new {
        let snapshot = Arc::clone(first.history_snapshot());
        for s in rest.iter_mut() {
            s.install_snapshot(Arc::clone(&snapshot));
        }
    }
    debug_assert!(
        shards
            .windows(2)
            .all(|w| Arc::ptr_eq(w[0].history_snapshot(), w[1].history_snapshot())),
        "shards must share one history snapshot"
    );
    (id, new)
}

// ----------------------------------------------------------------------
// The deterministic sharded engine
// ----------------------------------------------------------------------

/// Per-thread routing bookkeeping kept outside the shards.
#[derive(Debug, Clone, Copy, Default)]
struct OwnerRoute {
    /// Bit `s` set while the thread holds at least one lock on shard `s`.
    holds_mask: u64,
    /// Shard still carrying the thread's request edge or yield record from a
    /// request that was answered with `Yield` or `DeadlockDetected` (the
    /// substrate may never complete those acquisitions).
    stale_shard: Option<usize>,
}

/// A sharded, deterministic Dimmunix engine.
///
/// Semantically a [`Dimmunix`] whose state is partitioned by lock id across
/// `N` internal shards (see the module docs for the ownership model). Like
/// the monolithic engine it contains no interior locking: `dimmunix-rt`
/// wraps each shard in its own mutex, while tests and simulators drive this
/// type directly and rely on its determinism.
///
/// ```
/// use dimmunix_core::{CallStack, Config, Frame, LockId, ShardedDimmunix, OwnerId};
///
/// let mut engine = ShardedDimmunix::new(Config::default(), 8);
/// let t = OwnerId::thread(1);
/// let l = LockId::new(1);
/// let site = CallStack::single(Frame::new("worker", "app.rs", 42));
/// assert!(engine.request(t, l, &site).is_granted());
/// engine.acquired(t, l);
/// let _wake = engine.released(t, l);
/// assert_eq!(engine.stats().grants, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDimmunix {
    shards: Vec<Dimmunix>,
    router: ShardRouter,
    /// Global acquisition counter stamped into every shard's RAG holds.
    next_seq: u64,
    owner_routes: HashMap<OwnerId, OwnerRoute>,
}

impl ShardedDimmunix {
    /// Creates a sharded engine with `shards` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]). If the configuration names a history log, it
    /// is replayed once and the resulting snapshot is shared by every
    /// shard.
    pub fn new(config: Config, shards: usize) -> Self {
        let first = Dimmunix::new(config.clone());
        Self::from_first(config, shards, first)
    }

    /// Creates a sharded engine with an explicit starting history. The
    /// snapshot is bulk-built once and shared by every shard.
    pub fn with_history(config: Config, shards: usize, history: History) -> Self {
        let first = Dimmunix::with_history(config.clone(), history);
        Self::from_first(config, shards, first)
    }

    /// Completes construction from the first shard: the remaining shards
    /// receive clones of its snapshot `Arc`, never their own copy.
    fn from_first(config: Config, shards: usize, mut first: Dimmunix) -> Self {
        let router = ShardRouter::new(shards);
        let snapshot = Arc::clone(first.history_snapshot());
        // One stack interner serves every shard: a site hot on several
        // shards is resident once, not once per shard.
        let interner = Arc::new(crate::StackInterner::new());
        first.share_stack_interner(Arc::clone(&interner));
        let mut engines = Vec::with_capacity(router.shard_count());
        engines.push(first);
        for _ in 1..router.shard_count() {
            let mut shard = Dimmunix::with_snapshot(config.clone(), Arc::clone(&snapshot));
            shard.share_stack_interner(Arc::clone(&interner));
            engines.push(shard);
        }
        ShardedDimmunix {
            shards: engines,
            router,
            next_seq: 1,
            owner_routes: HashMap::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lock-id router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard owning `lock`.
    pub fn shard_of(&self, lock: LockId) -> usize {
        self.router.shard_of(lock)
    }

    /// Read access to one shard (tests and diagnostics).
    pub fn shard(&self, index: usize) -> &Dimmunix {
        &self.shards[index]
    }

    /// Diagnostics of the history-log recovery performed at construction
    /// (the replay happens once, on the first shard; see
    /// [`Dimmunix::recovery_report`]). `None` when no log replay happened.
    pub fn recovery_report(&self) -> Option<&crate::RecoveryReport> {
        self.shards[0].recovery_report()
    }

    /// The engine configuration (identical across shards).
    pub fn config(&self) -> &Config {
        self.shards[0].config()
    }

    /// The deadlock history (read from the shared snapshot).
    pub fn history(&self) -> &History {
        self.shards[0].history()
    }

    /// The shared history snapshot all shards read.
    pub fn history_snapshot(&self) -> &Arc<HistorySnapshot> {
        self.shards[0].history_snapshot()
    }

    /// Rolled-up activity counters: the sum of every shard's [`Stats`].
    pub fn stats(&self) -> Stats {
        Stats::merged(self.shards.iter().map(|s| s.stats()))
    }

    /// Estimated resident memory added by the sharded engine, in bytes.
    /// The shared history snapshot is charged **once**; each shard adds
    /// only its local state (positions, RAG, outer links), so the figure
    /// stays essentially flat as the shard count grows.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.history_snapshot().memory_footprint_bytes()
            + self
                .shards
                .iter()
                .map(|s| s.local_memory_footprint_bytes())
                .sum::<usize>()
    }

    /// Registers an owner (thread or task) on every shard. Idempotent.
    pub fn register_owner(&mut self, t: impl Into<OwnerId>) {
        let t = t.into();
        for s in &mut self.shards {
            s.register_owner(t);
        }
    }

    /// Unregisters a terminated owner on every shard, force-releasing
    /// anything it still held; returns the merged wake-up list.
    pub fn unregister_owner(&mut self, t: impl Into<OwnerId>) -> Vec<SignatureId> {
        let t = t.into();
        let mut wake = Vec::new();
        for s in &mut self.shards {
            wake.extend(s.unregister_owner(t));
        }
        wake.sort_unstable_by_key(|s| s.index());
        wake.dedup();
        self.owner_routes.remove(&t);
        wake
    }

    /// Registers a lock on its home shard. Idempotent.
    pub fn register_lock(&mut self, l: LockId) {
        let home = self.router.shard_of(l);
        self.shards[home].register_lock(l);
    }

    /// Unregisters a lock from its home shard.
    pub fn unregister_lock(&mut self, l: LockId) {
        let home = self.router.shard_of(l);
        self.shards[home].unregister_lock(l);
    }

    /// Adds a signature to the shared history and installs the successor
    /// snapshot into every shard; returns its id and whether it was new.
    pub fn add_signature(&mut self, sig: Signature) -> (SignatureId, bool) {
        let mut refs: Vec<&mut Dimmunix> = self.shards.iter_mut().collect();
        broadcast_signature(&mut refs, sig)
    }

    /// Called before a monitor (exclusive) acquisition; see
    /// [`Dimmunix::request`].
    ///
    /// Requests that cannot touch another shard's state are decided inside
    /// the home shard; the rest take the cross-shard snapshot path.
    pub fn request(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        stack: &CallStack,
    ) -> RequestOutcome {
        self.request_mode(t, l, stack, AccessMode::Exclusive)
    }

    /// Called before an acquisition in the given access mode; see
    /// [`Dimmunix::request_mode`].
    pub fn request_mode(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        stack: &CallStack,
        mode: AccessMode,
    ) -> RequestOutcome {
        let t = t.into();
        let home = self.router.shard_of(l);
        let route = self.owner_routes.entry(t).or_default();
        let stale = route.stale_shard;
        // Scoped degradation: with the lock-free admission path enabled, a
        // parked owner only degrades requests its yield record could actually
        // involve in a cycle — those naming `t` in a blocker list (a yield
        // edge is the only possible in-edge to a hold-free requester, so any
        // cycle through `t` must traverse one). Everyone else stays on the
        // shard-local fast path. The legacy gate degrades on *any* park.
        let any_parked = if self.shards[home].config().lock_free_admission {
            self.shards
                .iter()
                .any(|s| s.rag().yield_count() > 0 && s.rag().lists_yield_blocker(t))
        } else {
            self.shards.iter().any(|s| s.rag().yield_count() > 0)
        };
        let fast_ok = fast_path_eligible(route.holds_mask, stale, any_parked, home);

        let outcome = if fast_ok {
            match try_request_local(&mut self.shards[home], t, l, stack, mode) {
                LocalDecision::Decided(outcome) => outcome,
                LocalDecision::NeedsCrossShard => {
                    let mut refs: Vec<&mut Dimmunix> = self.shards.iter_mut().collect();
                    request_cross_shard(&mut refs, &self.router, t, l, stack, mode, stale)
                }
            }
        } else {
            let mut refs: Vec<&mut Dimmunix> = self.shards.iter_mut().collect();
            request_cross_shard(&mut refs, &self.router, t, l, stack, mode, stale)
        };

        let disabled = self.shards[home].config().is_disabled();
        let route = self.owner_routes.entry(t).or_default();
        route.stale_shard = stale_shard_after(&outcome, stale, home, disabled);
        outcome
    }

    /// Called right after the monitor acquisition succeeded; see
    /// [`Dimmunix::acquired`]. Stamps the hold with the engine-global
    /// acquisition sequence.
    pub fn acquired(&mut self, t: impl Into<OwnerId>, l: LockId) {
        let t = t.into();
        let home = self.router.shard_of(l);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[home].acquired_with_seq(t, l, seq);
        self.refresh_route(t, home);
        let route = self.owner_routes.entry(t).or_default();
        // The acquisition consumed the home shard's request edge.
        route.stale_shard = stale_shard_consumed(route.stale_shard, home);
    }

    /// Called right before the monitor is released; see
    /// [`Dimmunix::released`].
    pub fn released(&mut self, t: impl Into<OwnerId>, l: LockId) -> Vec<SignatureId> {
        let mut wake = Vec::new();
        self.released_into(t, l, &mut wake);
        wake
    }

    /// Allocation-free release path; see [`Dimmunix::released_into`].
    pub fn released_into(&mut self, t: impl Into<OwnerId>, l: LockId, wake: &mut Vec<SignatureId>) {
        let t = t.into();
        let home = self.router.shard_of(l);
        self.shards[home].released_into(t, l, wake);
        self.refresh_route(t, home);
    }

    /// Abandons a granted-but-never-completed acquisition; see
    /// [`Dimmunix::cancel_request`].
    pub fn cancel_request(&mut self, t: impl Into<OwnerId>, l: LockId) {
        let t = t.into();
        let home = self.router.shard_of(l);
        self.shards[home].cancel_request(t, l);
        let route = self.owner_routes.entry(t).or_default();
        route.stale_shard = stale_shard_consumed(route.stale_shard, home);
    }

    /// Drains wake-ups scheduled outside the release path (starvation
    /// resolution) from every shard; see
    /// [`Dimmunix::take_pending_wakeups`].
    pub fn take_pending_wakeups(&mut self) -> Vec<SignatureId> {
        let mut out = Vec::new();
        for s in &mut self.shards {
            out.extend(s.take_pending_wakeups());
        }
        out
    }

    /// Rewrites the configured history log to exactly the shared history
    /// (compaction); see [`Dimmunix::save_history`]. Normal operation
    /// appends single records instead.
    ///
    /// # Errors
    /// Returns an error if no path is configured or the write fails.
    pub fn save_history(&self) -> crate::error::Result<()> {
        self.shards[0].save_history()
    }

    /// Re-derives the thread's holds-mask bit for `shard` from that shard's
    /// RAG (exact, so the fast-path precondition can never drift).
    fn refresh_route(&mut self, t: OwnerId, shard: usize) {
        let holds = !self.shards[shard].rag().held_locks(t).is_empty();
        let route = self.owner_routes.entry(t).or_default();
        route.holds_mask = holds_mask_with(route.holds_mask, shard, holds);
    }
}
