//! Positions: interned acquisition call stacks with per-position thread
//! queues.
//!
//! §4 of the paper: *"The struct Position stores the program location of a
//! monitorenter operation and the set of threads that hold (or are allowed by
//! Dimmunix to acquire) locks at that location"*, plus a second queue used as
//! a free list so queue nodes are reused instead of reallocated. The
//! [`PositionTable`] is the `positions` global map that assigns a unique
//! `Position` object to each program location.

use crate::callstack::CallStack;
use crate::ThreadId;
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned position (acquisition call stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PositionId(u32);

impl PositionId {
    /// Creates a position id from a raw index (mainly for tests and codecs).
    pub const fn new(raw: u32) -> Self {
        PositionId(raw)
    }

    /// The raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PositionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A queue of threads that hold, or were allowed by Dimmunix to acquire,
/// locks at one position.
///
/// Mirrors the main-queue + free-list scheme of §4: elements removed from the
/// main queue go to the free list and are reused for later insertions, so
/// steady-state operation performs no allocation. The same thread may appear
/// more than once (it may hold several locks acquired at the same program
/// location).
#[derive(Debug, Clone, Default)]
pub struct ThreadQueue {
    /// Slot arena; `None` slots are free.
    slots: Vec<Option<ThreadId>>,
    /// Indices of free slots (the paper's second queue).
    free: Vec<usize>,
    /// Number of occupied slots.
    len: usize,
}

impl ThreadQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no thread occupies the queue.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the backing arena (occupied + reusable slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Adds one occurrence of `thread`, reusing a free slot when available.
    pub fn push(&mut self, thread: ThreadId) {
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx].is_none());
            self.slots[idx] = Some(thread);
        } else {
            self.slots.push(Some(thread));
        }
        self.len += 1;
    }

    /// Removes one occurrence of `thread`; returns true if an occurrence was
    /// present. The vacated slot is pushed onto the free list.
    pub fn remove_one(&mut self, thread: ThreadId) -> bool {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if *slot == Some(thread) {
                *slot = None;
                self.free.push(idx);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Removes every occurrence of `thread`, returning how many were removed.
    pub fn remove_all(&mut self, thread: ThreadId) -> usize {
        let mut removed = 0;
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if *slot == Some(thread) {
                *slot = None;
                self.free.push(idx);
                self.len -= 1;
                removed += 1;
            }
        }
        removed
    }

    /// Number of occurrences of `thread`.
    pub fn count(&self, thread: ThreadId) -> usize {
        self.slots.iter().filter(|s| **s == Some(thread)).count()
    }

    /// True if `thread` occupies at least one slot.
    pub fn contains(&self, thread: ThreadId) -> bool {
        self.count(thread) > 0
    }

    /// Iterates over the occupying threads (occurrences, not deduplicated).
    pub fn iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// Distinct threads currently occupying the queue.
    pub fn distinct_threads(&self) -> Vec<ThreadId> {
        let mut v: Vec<ThreadId> = self.iter().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Data stored per interned position.
#[derive(Debug, Clone)]
pub struct Position {
    id: PositionId,
    stack: CallStack,
    /// The canonical id of this stack in the shared history snapshot's
    /// outer-position table, if any signature mentions it as an outer
    /// position — the successor of the paper's `inHistory` flag (§4). The
    /// engine keeps this link current: it is resolved when the position is
    /// interned and refreshed when a new snapshot is installed.
    history_ref: Option<PositionId>,
    /// Threads holding, or allowed to acquire, locks at this position.
    queue: ThreadQueue,
}

impl Position {
    fn new(id: PositionId, stack: CallStack) -> Self {
        Position {
            id,
            stack,
            history_ref: None,
            queue: ThreadQueue::new(),
        }
    }

    /// The interned id.
    pub fn id(&self) -> PositionId {
        self.id
    }

    /// The (truncated) acquisition call stack.
    pub fn stack(&self) -> &CallStack {
        &self.stack
    }

    /// Whether this position appears in a history signature.
    pub fn in_history(&self) -> bool {
        self.history_ref.is_some()
    }

    /// The canonical outer-position id of this stack in the shared history
    /// snapshot, if any signature mentions it.
    pub fn history_ref(&self) -> Option<PositionId> {
        self.history_ref
    }

    /// Links the position to (or unlinks it from) a canonical outer id in
    /// the shared history snapshot.
    pub fn set_history_ref(&mut self, outer: Option<PositionId>) {
        self.history_ref = outer;
    }

    /// The thread queue of this position.
    pub fn queue(&self) -> &ThreadQueue {
        &self.queue
    }

    /// Mutable access to the thread queue.
    pub fn queue_mut(&mut self) -> &mut ThreadQueue {
        &mut self.queue
    }
}

/// Interning table mapping call stacks to dense [`PositionId`]s.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, PositionTable};
/// let mut table = PositionTable::new(1);
/// let a = table.intern(&CallStack::single(Frame::new("f", "x.rs", 1)));
/// let b = table.intern(&CallStack::single(Frame::new("f", "x.rs", 1)));
/// assert_eq!(a, b);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PositionTable {
    depth: usize,
    by_stack: HashMap<CallStack, PositionId>,
    positions: Vec<Position>,
}

impl PositionTable {
    /// Creates an empty table that truncates interned stacks to `depth`.
    pub fn new(depth: usize) -> Self {
        PositionTable {
            depth: depth.max(1),
            by_stack: HashMap::new(),
            positions: Vec::new(),
        }
    }

    /// The configured truncation depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of distinct interned positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no position has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Interns `stack` (after truncation) and returns its id.
    pub fn intern(&mut self, stack: &CallStack) -> PositionId {
        let truncated = stack.truncated(self.depth);
        if let Some(id) = self.by_stack.get(&truncated) {
            return *id;
        }
        let id = PositionId(self.positions.len() as u32);
        self.positions.push(Position::new(id, truncated.clone()));
        self.by_stack.insert(truncated, id);
        id
    }

    /// Looks up the id of an already-interned stack without inserting.
    pub fn lookup(&self, stack: &CallStack) -> Option<PositionId> {
        self.by_stack.get(&stack.truncated(self.depth)).copied()
    }

    /// Returns the position data for `id`, if it exists.
    pub fn get(&self, id: PositionId) -> Option<&Position> {
        self.positions.get(id.index())
    }

    /// Returns mutable position data for `id`, if it exists.
    pub fn get_mut(&mut self, id: PositionId) -> Option<&mut Position> {
        self.positions.get_mut(id.index())
    }

    /// Iterates over every interned position.
    pub fn iter(&self) -> impl Iterator<Item = &Position> {
        self.positions.iter()
    }

    /// Estimated resident memory of the table in bytes, used by the memory
    /// overhead experiments (Table 1).
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for p in &self.positions {
            total += std::mem::size_of::<Position>();
            total += p.queue.capacity() * std::mem::size_of::<Option<ThreadId>>();
            for f in p.stack.frames() {
                total += std::mem::size_of_val(f) + f.method().len() + f.file().len();
            }
        }
        // HashMap side of the interning (key stacks are clones of the stored ones).
        total += self.by_stack.len()
            * (std::mem::size_of::<CallStack>() + std::mem::size_of::<PositionId>());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn stack(line: u32) -> CallStack {
        CallStack::from_frames(vec![
            Frame::new("lock", "wrapper.rs", line),
            Frame::new("caller", "app.rs", 100 + line),
        ])
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = PositionTable::new(1);
        let a = t.intern(&stack(1));
        let b = t.intern(&stack(1));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&stack(1)), Some(a));
        assert_eq!(t.lookup(&stack(2)), None);
    }

    #[test]
    fn depth_one_conflates_wrapper_callers() {
        // The MyLock wrapper pathology of §3.2: with depth 1 two different
        // callers of the same wrapper collapse to the same position.
        let mut t = PositionTable::new(1);
        let a = t.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerA", "a.rs", 10),
        ]));
        let b = t.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerB", "b.rs", 20),
        ]));
        assert_eq!(a, b);

        // With depth 2 they stay distinct.
        let mut t2 = PositionTable::new(2);
        let a2 = t2.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerA", "a.rs", 10),
        ]));
        let b2 = t2.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerB", "b.rs", 20),
        ]));
        assert_ne!(a2, b2);
    }

    #[test]
    fn queue_push_remove_counts() {
        let mut q = ThreadQueue::new();
        let t1 = ThreadId::new(1);
        let t2 = ThreadId::new(2);
        q.push(t1);
        q.push(t2);
        q.push(t1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.count(t1), 2);
        assert!(q.contains(t2));
        assert!(q.remove_one(t1));
        assert_eq!(q.count(t1), 1);
        assert_eq!(q.remove_all(t1), 1);
        assert!(!q.contains(t1));
        assert_eq!(q.distinct_threads(), vec![t2]);
        assert!(!q.remove_one(ThreadId::new(99)));
    }

    #[test]
    fn queue_reuses_free_slots() {
        let mut q = ThreadQueue::new();
        for i in 0..8 {
            q.push(ThreadId::new(i));
        }
        let cap_before = q.capacity();
        for i in 0..8 {
            assert!(q.remove_one(ThreadId::new(i)));
        }
        assert!(q.is_empty());
        // New insertions must reuse the freed slots, not grow the arena.
        for i in 0..8 {
            q.push(ThreadId::new(100 + i));
        }
        assert_eq!(q.capacity(), cap_before);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn history_ref_roundtrips() {
        let mut t = PositionTable::new(1);
        let id = t.intern(&stack(9));
        assert!(!t.get(id).unwrap().in_history());
        assert_eq!(t.get(id).unwrap().history_ref(), None);
        t.get_mut(id)
            .unwrap()
            .set_history_ref(Some(PositionId::new(7)));
        assert!(t.get(id).unwrap().in_history());
        assert_eq!(t.get(id).unwrap().history_ref(), Some(PositionId::new(7)));
        t.get_mut(id).unwrap().set_history_ref(None);
        assert!(!t.get(id).unwrap().in_history());
    }

    #[test]
    fn memory_footprint_grows_with_positions() {
        let mut t = PositionTable::new(1);
        let empty = t.memory_footprint_bytes();
        for i in 0..64 {
            t.intern(&stack(i));
        }
        assert!(t.memory_footprint_bytes() > empty);
    }
}
