//! Positions: interned acquisition call stacks with per-position owner
//! queues.
//!
//! §4 of the paper: *"The struct Position stores the program location of a
//! monitorenter operation and the set of threads that hold (or are allowed by
//! Dimmunix to acquire) locks at that location"*, plus a second queue used as
//! a free list so queue nodes are reused instead of reallocated. The
//! [`PositionTable`] is the `positions` global map that assigns a unique
//! `Position` object to each program location. The queues are keyed by
//! [`OwnerId`] rather than raw thread ids so async tasks occupy positions
//! exactly like OS threads.

use crate::callstack::{CallStack, SiteKey};
use crate::OwnerId;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// Dense identifier of an interned position (acquisition call stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PositionId(u32);

impl PositionId {
    /// Creates a position id from a raw index (mainly for tests and codecs).
    pub const fn new(raw: u32) -> Self {
        PositionId(raw)
    }

    /// The raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PositionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A queue of owners (threads or tasks) that hold, or were allowed by
/// Dimmunix to acquire, locks at one position.
///
/// §4's Position stores this as a linked queue with a free list; here it is
/// a counted multiset ordered by owner id. The representation matters once
/// owners are *tasks*: a server position can be occupied by thousands of
/// concurrent tasks at once, and the avoidance hot path asks for a few
/// distinct occupants per check — an ordered count map answers that in
/// O(answer), keeps insert/remove at O(log distinct), and makes every
/// traversal deterministic. The same owner may appear more than once (it
/// may hold several locks acquired at the same program location).
#[derive(Debug, Clone, Default)]
pub struct OwnerQueue {
    /// Occurrences per owner; absent means zero.
    counts: std::collections::BTreeMap<OwnerId, usize>,
    /// Total occurrences across all owners.
    len: usize,
}

/// Pre-`OwnerId` name of [`OwnerQueue`], kept for source compatibility.
pub type ThreadQueue = OwnerQueue;

impl OwnerQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no owner occupies the queue.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct owners currently tracked.
    pub fn capacity(&self) -> usize {
        self.counts.len()
    }

    /// Adds one occurrence of `owner`.
    pub fn push(&mut self, owner: impl Into<OwnerId>) {
        *self.counts.entry(owner.into()).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `owner`; returns true if an occurrence was
    /// present.
    pub fn remove_one(&mut self, owner: impl Into<OwnerId>) -> bool {
        let owner = owner.into();
        match self.counts.get_mut(&owner) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&owner);
                }
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes every occurrence of every owner. Used by the schedule
    /// explorer's engine-reuse reset between simulated runs.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.len = 0;
    }

    /// Removes every occurrence of `owner`, returning how many were removed.
    pub fn remove_all(&mut self, owner: impl Into<OwnerId>) -> usize {
        let removed = self.counts.remove(&owner.into()).unwrap_or(0);
        self.len -= removed;
        removed
    }

    /// Number of occurrences of `owner`.
    pub fn count(&self, owner: impl Into<OwnerId>) -> usize {
        self.counts.get(&owner.into()).copied().unwrap_or(0)
    }

    /// True if `owner` occupies at least one slot.
    pub fn contains(&self, owner: impl Into<OwnerId>) -> bool {
        self.counts.contains_key(&owner.into())
    }

    /// Iterates over the occupying owners (occurrences, not deduplicated),
    /// in owner-id order.
    pub fn iter(&self) -> impl Iterator<Item = OwnerId> + '_ {
        self.counts
            .iter()
            .flat_map(|(o, c)| std::iter::repeat(*o).take(*c))
    }

    /// Distinct owners currently occupying the queue, in owner-id order.
    pub fn distinct_owners(&self) -> Vec<OwnerId> {
        self.counts.keys().copied().collect()
    }

    /// The first (in owner-id order) distinct owners satisfying `keep`, at
    /// most `cap` of them. The avoidance hot path uses this to bound an
    /// instantiation check by the signature's arity instead of by the
    /// position's crowd: an injective assignment of `k` slots never needs
    /// more than `k` candidates per slot, so any deterministic `cap ≥ k`
    /// prefix preserves the exact matching decision.
    pub fn distinct_owners_capped(
        &self,
        cap: usize,
        mut keep: impl FnMut(OwnerId) -> bool,
    ) -> Vec<OwnerId> {
        self.counts
            .keys()
            .copied()
            .filter(|o| keep(*o))
            .take(cap)
            .collect()
    }
}

/// Number of lock stripes inside a [`StackInterner`]. Sized so that even a
/// process running one engine shard per core rarely has two shards hashing
/// into the same stripe at once.
const INTERNER_STRIPES: usize = 16;

/// Process-wide, thread-safe interner of truncated acquisition call stacks.
///
/// Without it, every engine shard keeps private `CallStack` copies of each
/// position it interns (plus a clone as the interning key), so a site hot
/// in many shards is resident once *per shard* — a cache-dilution tax that
/// grows with the shard count. Sharing one interner across all shards
/// deduplicates each truncated stack into a single `Arc<CallStack>`; the
/// common case (site already interned) is a striped read-lock probe, and a
/// write lock is taken only the first time a site is seen process-wide.
#[derive(Debug)]
pub struct StackInterner {
    stripes: Vec<RwLock<HashSet<Arc<CallStack>>>>,
}

impl Default for StackInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl StackInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        StackInterner {
            stripes: (0..INTERNER_STRIPES)
                .map(|_| RwLock::new(HashSet::new()))
                .collect(),
        }
    }

    fn stripe_of(&self, stack: &CallStack) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        stack.hash(&mut h);
        (h.finish() % self.stripes.len() as u64) as usize
    }

    /// Returns the canonical shared copy of `stack`, inserting it on first
    /// use. `stack` must already be truncated to the caller's depth — the
    /// interner deduplicates exact stacks, it does not coarsen them.
    pub fn intern(&self, stack: &CallStack) -> Arc<CallStack> {
        let stripe = &self.stripes[self.stripe_of(stack)];
        if let Some(found) = stripe.read().expect("interner lock poisoned").get(stack) {
            return Arc::clone(found);
        }
        let mut writer = stripe.write().expect("interner lock poisoned");
        if let Some(found) = writer.get(stack) {
            return Arc::clone(found);
        }
        let shared = Arc::new(stack.clone());
        writer.insert(Arc::clone(&shared));
        shared
    }

    /// Number of distinct stacks interned so far (across all stripes).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().expect("interner lock poisoned").len())
            .sum()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Data stored per interned position.
#[derive(Debug, Clone)]
pub struct Position {
    id: PositionId,
    stack: Arc<CallStack>,
    /// Stable content-hash identity of `stack`, computed once at intern
    /// time. This is the coordinate foreign antibodies are matched in: a
    /// signature exported by a differently compiled binary carries site
    /// keys, and activating it locally means finding positions whose keys
    /// agree (see `dimmunix-exchange`).
    site_key: SiteKey,
    /// The canonical id of this stack in the shared history snapshot's
    /// outer-position table, if any signature mentions it as an outer
    /// position — the successor of the paper's `inHistory` flag (§4). The
    /// engine keeps this link current: it is resolved when the position is
    /// interned and refreshed when a new snapshot is installed.
    history_ref: Option<PositionId>,
    /// Owners holding, or allowed to acquire, locks at this position.
    queue: OwnerQueue,
}

impl Position {
    fn new(id: PositionId, stack: Arc<CallStack>) -> Self {
        let site_key = stack.site_key();
        Position {
            id,
            stack,
            site_key,
            history_ref: None,
            queue: OwnerQueue::new(),
        }
    }

    /// The interned id.
    pub fn id(&self) -> PositionId {
        self.id
    }

    /// The (truncated) acquisition call stack.
    pub fn stack(&self) -> &CallStack {
        &self.stack
    }

    /// The shared (interned) handle of the acquisition call stack. Cloning
    /// it is a reference-count bump, not a stack copy.
    pub fn stack_shared(&self) -> &Arc<CallStack> {
        &self.stack
    }

    /// The stable content-hash identity of this position's stack.
    pub fn site_key(&self) -> SiteKey {
        self.site_key
    }

    /// Whether this position appears in a history signature.
    pub fn in_history(&self) -> bool {
        self.history_ref.is_some()
    }

    /// The canonical outer-position id of this stack in the shared history
    /// snapshot, if any signature mentions it.
    pub fn history_ref(&self) -> Option<PositionId> {
        self.history_ref
    }

    /// Links the position to (or unlinks it from) a canonical outer id in
    /// the shared history snapshot.
    pub fn set_history_ref(&mut self, outer: Option<PositionId>) {
        self.history_ref = outer;
    }

    /// The owner queue of this position.
    pub fn queue(&self) -> &OwnerQueue {
        &self.queue
    }

    /// Mutable access to the owner queue.
    pub fn queue_mut(&mut self) -> &mut OwnerQueue {
        &mut self.queue
    }
}

/// Interning table mapping call stacks to dense [`PositionId`]s.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, PositionTable};
/// let mut table = PositionTable::new(1);
/// let a = table.intern(&CallStack::single(Frame::new("f", "x.rs", 1)));
/// let b = table.intern(&CallStack::single(Frame::new("f", "x.rs", 1)));
/// assert_eq!(a, b);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PositionTable {
    depth: usize,
    /// The process-wide stack interner this table resolves stacks through.
    /// Tables created with [`PositionTable::new`] get a private one;
    /// sharded engines and the runtime share a single interner across all
    /// shards via [`PositionTable::with_interner`].
    interner: Arc<StackInterner>,
    by_stack: HashMap<Arc<CallStack>, PositionId>,
    /// Stable-key index: the **first** position interned with each
    /// [`SiteKey`]. Keys deliberately coarsen identity (absolute lines are
    /// normalized away), so several positions may share one key; first-wins
    /// is fine because the key lookup only answers "does a local position
    /// prove this site exists here" for foreign-antibody screening.
    by_key: HashMap<SiteKey, PositionId>,
    positions: Vec<Position>,
}

impl PositionTable {
    /// Creates an empty table that truncates interned stacks to `depth`,
    /// with a private stack interner.
    pub fn new(depth: usize) -> Self {
        Self::with_interner(depth, Arc::new(StackInterner::new()))
    }

    /// Creates an empty table that resolves stacks through a shared
    /// process-wide interner (one `Arc<CallStack>` per distinct truncated
    /// stack no matter how many tables intern it).
    pub fn with_interner(depth: usize, interner: Arc<StackInterner>) -> Self {
        PositionTable {
            depth: depth.max(1),
            interner,
            by_stack: HashMap::new(),
            by_key: HashMap::new(),
            positions: Vec::new(),
        }
    }

    /// The interner this table resolves stacks through.
    pub fn interner(&self) -> &Arc<StackInterner> {
        &self.interner
    }

    /// Re-points the table at a shared interner. Safe at any time — the
    /// interner only deduplicates future interns; stacks already interned
    /// keep their existing allocations (the `by_stack` fast path answers
    /// repeats before the interner is consulted).
    pub fn set_interner(&mut self, interner: Arc<StackInterner>) {
        self.interner = interner;
    }

    /// The configured truncation depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of distinct interned positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no position has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Interns `stack` (after truncation) and returns its id.
    pub fn intern(&mut self, stack: &CallStack) -> PositionId {
        let truncated = stack.truncated(self.depth);
        if let Some(id) = self.by_stack.get(&truncated) {
            return *id;
        }
        let shared = self.interner.intern(&truncated);
        let id = PositionId(self.positions.len() as u32);
        let position = Position::new(id, Arc::clone(&shared));
        self.by_key.entry(position.site_key()).or_insert(id);
        self.positions.push(position);
        self.by_stack.insert(shared, id);
        id
    }

    /// Looks up the id of an already-interned stack without inserting.
    pub fn lookup(&self, stack: &CallStack) -> Option<PositionId> {
        self.by_stack.get(&stack.truncated(self.depth)).copied()
    }

    /// The first position interned with the given stable site key, if any.
    /// This is the foreign-antibody screening query: a hit proves that a
    /// program location with this content-hash identity exists (and has
    /// synchronized) in *this* process.
    pub fn lookup_by_key(&self, key: SiteKey) -> Option<PositionId> {
        self.by_key.get(&key).copied()
    }

    /// Returns the position data for `id`, if it exists.
    pub fn get(&self, id: PositionId) -> Option<&Position> {
        self.positions.get(id.index())
    }

    /// Returns mutable position data for `id`, if it exists.
    pub fn get_mut(&mut self, id: PositionId) -> Option<&mut Position> {
        self.positions.get_mut(id.index())
    }

    /// Iterates over every interned position.
    pub fn iter(&self) -> impl Iterator<Item = &Position> {
        self.positions.iter()
    }

    /// Iterates mutably over every interned position (queue cleanup during
    /// the schedule explorer's engine-reuse reset).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Position> {
        self.positions.iter_mut()
    }

    /// Estimated resident memory of the table in bytes, used by the memory
    /// overhead experiments (Table 1).
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for p in &self.positions {
            total += std::mem::size_of::<Position>();
            total += p.queue.capacity()
                * (std::mem::size_of::<OwnerId>() + std::mem::size_of::<usize>());
            for f in p.stack.frames() {
                total += std::mem::size_of_val(f) + f.method().len() + f.file().len();
            }
        }
        // HashMap side of the interning (keys share the stored stacks'
        // allocations through the interner, so only the Arc handle counts).
        total += self.by_stack.len()
            * (std::mem::size_of::<Arc<CallStack>>() + std::mem::size_of::<PositionId>());
        total += self.by_key.len()
            * (std::mem::size_of::<SiteKey>() + std::mem::size_of::<PositionId>());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn stack(line: u32) -> CallStack {
        CallStack::from_frames(vec![
            Frame::new("lock", "wrapper.rs", line),
            Frame::new("caller", "app.rs", 100 + line),
        ])
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = PositionTable::new(1);
        let a = t.intern(&stack(1));
        let b = t.intern(&stack(1));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&stack(1)), Some(a));
        assert_eq!(t.lookup(&stack(2)), None);
    }

    #[test]
    fn depth_one_conflates_wrapper_callers() {
        // The MyLock wrapper pathology of §3.2: with depth 1 two different
        // callers of the same wrapper collapse to the same position.
        let mut t = PositionTable::new(1);
        let a = t.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerA", "a.rs", 10),
        ]));
        let b = t.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerB", "b.rs", 20),
        ]));
        assert_eq!(a, b);

        // With depth 2 they stay distinct.
        let mut t2 = PositionTable::new(2);
        let a2 = t2.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerA", "a.rs", 10),
        ]));
        let b2 = t2.intern(&CallStack::from_frames(vec![
            Frame::new("MyLock.lock", "mylock.rs", 5),
            Frame::new("callerB", "b.rs", 20),
        ]));
        assert_ne!(a2, b2);
    }

    #[test]
    fn queue_push_remove_counts() {
        let mut q = OwnerQueue::new();
        let t1 = crate::ThreadId::new(1);
        let t2 = crate::ThreadId::new(2);
        q.push(t1);
        q.push(t2);
        q.push(t1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.count(t1), 2);
        assert!(q.contains(t2));
        assert!(q.remove_one(t1));
        assert_eq!(q.count(t1), 1);
        assert_eq!(q.remove_all(t1), 1);
        assert!(!q.contains(t1));
        assert_eq!(q.distinct_owners(), vec![OwnerId::from(t2)]);
        assert!(!q.remove_one(crate::ThreadId::new(99)));
    }

    #[test]
    fn queue_keeps_thread_and_task_occurrences_distinct() {
        // A task and a thread with the same raw index are different owners.
        let mut q = OwnerQueue::new();
        q.push(OwnerId::thread(1));
        q.push(OwnerId::task(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.count(OwnerId::thread(1)), 1);
        assert_eq!(q.count(OwnerId::task(1)), 1);
        assert!(q.remove_one(OwnerId::task(1)));
        assert!(q.contains(OwnerId::thread(1)));
        assert!(!q.contains(OwnerId::task(1)));
    }

    #[test]
    fn queue_memory_tracks_occupancy_not_history() {
        let mut q = OwnerQueue::new();
        for i in 0..8 {
            q.push(crate::ThreadId::new(i));
        }
        let cap_before = q.capacity();
        for i in 0..8 {
            assert!(q.remove_one(crate::ThreadId::new(i)));
        }
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 0, "departed owners leave no residue");
        // Fresh occupants cost the same as the original ones did.
        for i in 0..8 {
            q.push(crate::ThreadId::new(100 + i));
        }
        assert_eq!(q.capacity(), cap_before);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn queue_capped_distinct_owners_are_a_sorted_filtered_prefix() {
        let mut q = OwnerQueue::new();
        for i in (0..10).rev() {
            q.push(crate::ThreadId::new(i));
            q.push(crate::ThreadId::new(i)); // duplicates collapse
        }
        let excluded = OwnerId::thread(2);
        let capped = q.distinct_owners_capped(4, |o| o != excluded);
        assert_eq!(
            capped,
            vec![
                OwnerId::thread(0),
                OwnerId::thread(1),
                OwnerId::thread(3),
                OwnerId::thread(4),
            ]
        );
        assert_eq!(q.distinct_owners_capped(99, |_| true).len(), 10);
    }

    /// Site keys are assigned at intern time over the *truncated* stack and
    /// answer the foreign-antibody screening query: the same site rendered
    /// at shifted line numbers (a recompiled binary) resolves to the local
    /// position by key even though the stacks differ structurally.
    #[test]
    fn intern_assigns_stable_site_keys() {
        let mut t = PositionTable::new(2);
        let id = t.intern(&stack(1));
        let p = t.get(id).unwrap();
        assert_eq!(p.site_key(), p.stack().site_key());
        assert_eq!(t.lookup_by_key(p.site_key()), Some(id));
        // The same site from a "recompiled binary": every line shifted.
        let shifted = CallStack::from_frames(vec![
            Frame::new("lock", "wrapper.rs", 1 + 40),
            Frame::new("caller", "app.rs", 101 + 40),
        ]);
        assert_eq!(t.lookup(&shifted), None, "absolute stacks differ");
        assert_eq!(
            t.lookup_by_key(shifted.site_key()),
            Some(id),
            "site keys must survive the shift"
        );
        assert_eq!(t.lookup_by_key(SiteKey::new(0xdead_beef)), None);
    }

    /// Colliding keys (coarsened identity) resolve to the first interned
    /// position and never panic or churn the index.
    #[test]
    fn colliding_site_keys_are_first_wins() {
        let mut t = PositionTable::new(1);
        // Depth-1 keys ignore lines: these two distinct positions collide.
        let a = t.intern(&CallStack::single(Frame::new("f", "x.rs", 1)));
        let b = t.intern(&CallStack::single(Frame::new("f", "x.rs", 2)));
        assert_ne!(a, b);
        let key = t.get(a).unwrap().site_key();
        assert_eq!(t.get(b).unwrap().site_key(), key);
        assert_eq!(t.lookup_by_key(key), Some(a));
    }

    #[test]
    fn history_ref_roundtrips() {
        let mut t = PositionTable::new(1);
        let id = t.intern(&stack(9));
        assert!(!t.get(id).unwrap().in_history());
        assert_eq!(t.get(id).unwrap().history_ref(), None);
        t.get_mut(id)
            .unwrap()
            .set_history_ref(Some(PositionId::new(7)));
        assert!(t.get(id).unwrap().in_history());
        assert_eq!(t.get(id).unwrap().history_ref(), Some(PositionId::new(7)));
        t.get_mut(id).unwrap().set_history_ref(None);
        assert!(!t.get(id).unwrap().in_history());
    }

    /// Two tables sharing one interner resolve the same truncated stack to
    /// one allocation; a table's private ids stay independent.
    #[test]
    fn shared_interner_deduplicates_across_tables() {
        let interner = Arc::new(StackInterner::new());
        let mut a = PositionTable::with_interner(1, Arc::clone(&interner));
        let mut b = PositionTable::with_interner(1, Arc::clone(&interner));
        let ia = a.intern(&stack(7));
        let ib = b.intern(&stack(7));
        let sa = a.get(ia).unwrap().stack_shared();
        let sb = b.get(ib).unwrap().stack_shared();
        assert!(Arc::ptr_eq(sa, sb), "both tables must share one allocation");
        assert_eq!(interner.len(), 1);
        // A distinct site allocates once more.
        b.intern(&stack(8));
        assert_eq!(interner.len(), 2);
        assert!(!interner.is_empty());
    }

    /// Interning the same stack twice through one interner returns the same
    /// allocation (the read-probe fast path after first insertion).
    #[test]
    fn interner_is_idempotent() {
        let interner = StackInterner::new();
        let s = stack(3).truncated(1);
        let first = interner.intern(&s);
        let second = interner.intern(&s);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn memory_footprint_grows_with_positions() {
        let mut t = PositionTable::new(1);
        let empty = t.memory_footprint_bytes();
        for i in 0..64 {
            t.intern(&stack(i));
        }
        assert!(t.memory_footprint_bytes() > empty);
    }
}
