//! Strongly-typed identifiers used throughout the Dimmunix engine.
//!
//! The engine is substrate-agnostic: it never touches OS threads or real
//! mutexes. Substrates (the Dalvik-like simulator in `dalvik-sim`, or the
//! real-thread runtime in `dimmunix-rt`) map their own notion of threads and
//! monitors onto these dense identifiers and feed synchronization events to
//! the engine.

use std::fmt;

/// Identifier of a thread, as seen by the Dimmunix engine.
///
/// In the paper this corresponds to a Dalvik `Thread*` carrying an embedded
/// RAG `Node`; here it is an opaque dense id assigned by the substrate.
///
/// ```
/// use dimmunix_core::ThreadId;
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u64);

/// Identifier of an asynchronous task, as seen by the Dimmunix engine.
///
/// Tasks are cooperatively-scheduled units of work multiplexed onto a small
/// pool of OS threads by an async executor. A task-level deadlock (task A
/// holds lock 1 and awaits lock 2 while task B holds lock 2 and awaits
/// lock 1) is invisible to a thread-keyed RAG whenever both tasks share a
/// worker thread, so async substrates key the engine by `TaskId` instead.
///
/// ```
/// use dimmunix_core::TaskId;
/// let t = TaskId::new(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u64);

/// Identifier of a lock (Dalvik monitor / fat lock), as seen by the engine.
///
/// ```
/// use dimmunix_core::LockId;
/// let l = LockId::new(7);
/// assert_eq!(l.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(u64);

/// Identifier of a process (an Android application forked from Zygote).
///
/// Dimmunix state is strictly per-process (§3.1 of the paper); the id exists
/// so multi-process substrates can label histories and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

/// A statically-assigned synchronization-site identifier.
///
/// §4 of the paper proposes eliminating call-stack retrieval overhead by
/// having the compiler emit a constant id per synchronization statement.
/// `SiteId` is that optimization: substrates may pass a `SiteId` instead of a
/// captured call stack, and the engine interns it exactly like a depth-1
/// stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(u64);

/// Index of a deadlock/starvation signature within a [`History`].
///
/// [`History`]: crate::history::History
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignatureId(pub(crate) usize);

macro_rules! impl_id {
    ($name:ident, $repr:ty) => {
        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> $repr {
                self.0
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

impl_id!(ThreadId, u64);
impl_id!(TaskId, u64);
impl_id!(LockId, u64);
impl_id!(ProcessId, u32);
impl_id!(SiteId, u64);

/// The abstract identity that owns locks and waits in the RAG.
///
/// Every layer of the engine — lock owners, wait-for edges, cycle
/// classification, avoidance candidate sets, position queues, events and
/// statistics — is keyed by `OwnerId` rather than a raw [`ThreadId`]. The
/// classic thread-keyed runtime is simply the [`OwnerId::Thread`]
/// instantiation; async substrates feed [`OwnerId::Task`] identities so that
/// cycles among tasks multiplexed on a small worker pool remain visible.
///
/// The two arms form a flat two-branch lattice over one logical owner space:
/// an owner is either an OS thread or an async task, never both, and owners
/// of different kinds never compare equal. Engine entry points accept
/// `impl Into<OwnerId>`, so thread-keyed callers keep passing [`ThreadId`]
/// values unchanged.
///
/// ```
/// use dimmunix_core::{OwnerId, TaskId, ThreadId};
/// let a = OwnerId::from(ThreadId::new(1));
/// let b = OwnerId::from(TaskId::new(1));
/// assert_ne!(a, b); // same raw index, different identity space
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OwnerId {
    /// An OS thread (the paper's Dalvik `Thread*`).
    Thread(ThreadId),
    /// An async task multiplexed onto a worker pool.
    Task(TaskId),
}

impl OwnerId {
    /// Shorthand for `OwnerId::Thread(ThreadId::new(raw))`.
    pub const fn thread(raw: u64) -> Self {
        OwnerId::Thread(ThreadId::new(raw))
    }

    /// Shorthand for `OwnerId::Task(TaskId::new(raw))`.
    pub const fn task(raw: u64) -> Self {
        OwnerId::Task(TaskId::new(raw))
    }

    /// The thread identity, if this owner is an OS thread.
    pub const fn as_thread(self) -> Option<ThreadId> {
        match self {
            OwnerId::Thread(t) => Some(t),
            OwnerId::Task(_) => None,
        }
    }

    /// The task identity, if this owner is an async task.
    pub const fn as_task(self) -> Option<TaskId> {
        match self {
            OwnerId::Task(t) => Some(t),
            OwnerId::Thread(_) => None,
        }
    }

    /// True if this owner is an async task.
    pub const fn is_task(self) -> bool {
        matches!(self, OwnerId::Task(_))
    }

    /// The raw index inside the owner's identity space.
    pub const fn index(self) -> u64 {
        match self {
            OwnerId::Thread(t) => t.index(),
            OwnerId::Task(t) => t.index(),
        }
    }
}

impl From<ThreadId> for OwnerId {
    fn from(t: ThreadId) -> Self {
        OwnerId::Thread(t)
    }
}

impl From<TaskId> for OwnerId {
    fn from(t: TaskId) -> Self {
        OwnerId::Task(t)
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnerId::Thread(t) => write!(f, "thread({})", t.index()),
            OwnerId::Task(t) => write!(f, "task({})", t.index()),
        }
    }
}

impl SignatureId {
    /// Creates a signature id from a raw history index.
    pub const fn new(raw: usize) -> Self {
        Self(raw)
    }

    /// Returns the raw history index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignatureId({})", self.0)
    }
}

/// Monotonic logical clock used to order engine events.
///
/// One tick per engine entry point (request / acquire / release); it is not
/// wall-clock time, which keeps replays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalTime(pub u64);

impl LogicalTime {
    /// The zero instant.
    pub const ZERO: LogicalTime = LogicalTime(0);

    /// Returns the next instant.
    #[must_use]
    pub fn next(self) -> LogicalTime {
        LogicalTime(self.0 + 1)
    }
}

impl fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_raw_values() {
        assert_eq!(ThreadId::new(42).index(), 42);
        assert_eq!(LockId::new(7).index(), 7);
        assert_eq!(ProcessId::new(3).index(), 3);
        assert_eq!(SiteId::new(99).index(), 99);
        assert_eq!(SignatureId::new(5).index(), 5);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for i in 0..10 {
            set.insert(ThreadId::new(i));
        }
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ThreadId::new(1)).is_empty());
        assert!(!format!("{}", LockId::new(1)).is_empty());
        assert!(!format!("{}", SignatureId::new(1)).is_empty());
        assert!(!format!("{}", LogicalTime::ZERO).is_empty());
    }

    #[test]
    fn logical_time_advances() {
        let t = LogicalTime::ZERO;
        assert_eq!(t.next(), LogicalTime(1));
        assert!(t < t.next());
    }

    #[test]
    fn from_raw_conversion() {
        let t: ThreadId = 9u64.into();
        assert_eq!(t, ThreadId::new(9));
    }

    #[test]
    fn owner_id_separates_thread_and_task_spaces() {
        let th = OwnerId::from(ThreadId::new(4));
        let ta = OwnerId::from(TaskId::new(4));
        assert_ne!(th, ta);
        assert_eq!(th, OwnerId::thread(4));
        assert_eq!(ta, OwnerId::task(4));
        assert_eq!(th.as_thread(), Some(ThreadId::new(4)));
        assert_eq!(th.as_task(), None);
        assert_eq!(ta.as_task(), Some(TaskId::new(4)));
        assert!(!th.is_task());
        assert!(ta.is_task());
        assert_eq!(th.index(), 4);
        assert_eq!(ta.index(), 4);
        assert_eq!(format!("{th}"), "thread(4)");
        assert_eq!(format!("{ta}"), "task(4)");
        let mut set = HashSet::new();
        set.insert(th);
        set.insert(ta);
        assert_eq!(set.len(), 2);
    }
}
