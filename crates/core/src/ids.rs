//! Strongly-typed identifiers used throughout the Dimmunix engine.
//!
//! The engine is substrate-agnostic: it never touches OS threads or real
//! mutexes. Substrates (the Dalvik-like simulator in `dalvik-sim`, or the
//! real-thread runtime in `dimmunix-rt`) map their own notion of threads and
//! monitors onto these dense identifiers and feed synchronization events to
//! the engine.

use std::fmt;

/// Identifier of a thread, as seen by the Dimmunix engine.
///
/// In the paper this corresponds to a Dalvik `Thread*` carrying an embedded
/// RAG `Node`; here it is an opaque dense id assigned by the substrate.
///
/// ```
/// use dimmunix_core::ThreadId;
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u64);

/// Identifier of a lock (Dalvik monitor / fat lock), as seen by the engine.
///
/// ```
/// use dimmunix_core::LockId;
/// let l = LockId::new(7);
/// assert_eq!(l.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(u64);

/// Identifier of a process (an Android application forked from Zygote).
///
/// Dimmunix state is strictly per-process (§3.1 of the paper); the id exists
/// so multi-process substrates can label histories and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

/// A statically-assigned synchronization-site identifier.
///
/// §4 of the paper proposes eliminating call-stack retrieval overhead by
/// having the compiler emit a constant id per synchronization statement.
/// `SiteId` is that optimization: substrates may pass a `SiteId` instead of a
/// captured call stack, and the engine interns it exactly like a depth-1
/// stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(u64);

/// Index of a deadlock/starvation signature within a [`History`].
///
/// [`History`]: crate::history::History
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignatureId(pub(crate) usize);

macro_rules! impl_id {
    ($name:ident, $repr:ty) => {
        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> $repr {
                self.0
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

impl_id!(ThreadId, u64);
impl_id!(LockId, u64);
impl_id!(ProcessId, u32);
impl_id!(SiteId, u64);

impl SignatureId {
    /// Creates a signature id from a raw history index.
    pub const fn new(raw: usize) -> Self {
        Self(raw)
    }

    /// Returns the raw history index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignatureId({})", self.0)
    }
}

/// Monotonic logical clock used to order engine events.
///
/// One tick per engine entry point (request / acquire / release); it is not
/// wall-clock time, which keeps replays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalTime(pub u64);

impl LogicalTime {
    /// The zero instant.
    pub const ZERO: LogicalTime = LogicalTime(0);

    /// Returns the next instant.
    #[must_use]
    pub fn next(self) -> LogicalTime {
        LogicalTime(self.0 + 1)
    }
}

impl fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_raw_values() {
        assert_eq!(ThreadId::new(42).index(), 42);
        assert_eq!(LockId::new(7).index(), 7);
        assert_eq!(ProcessId::new(3).index(), 3);
        assert_eq!(SiteId::new(99).index(), 99);
        assert_eq!(SignatureId::new(5).index(), 5);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for i in 0..10 {
            set.insert(ThreadId::new(i));
        }
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ThreadId::new(1)).is_empty());
        assert!(!format!("{}", LockId::new(1)).is_empty());
        assert!(!format!("{}", SignatureId::new(1)).is_empty());
        assert!(!format!("{}", LogicalTime::ZERO).is_empty());
    }

    #[test]
    fn logical_time_advances() {
        let t = LogicalTime::ZERO;
        assert_eq!(t.next(), LogicalTime(1));
        assert!(t < t.next());
    }

    #[test]
    fn from_raw_conversion() {
        let t: ThreadId = 9u64.into();
        assert_eq!(t, ThreadId::new(9));
    }
}
