//! Error types for the Dimmunix engine.

use std::fmt;
use std::io;

/// Errors produced by the Dimmunix engine and its persistent history codecs.
#[derive(Debug)]
pub enum DimmunixError {
    /// A thread id was used before being registered with the engine.
    UnknownThread(crate::ThreadId),
    /// A lock id was used before being registered with the engine.
    UnknownLock(crate::LockId),
    /// A signature id does not exist in the history.
    UnknownSignature(crate::SignatureId),
    /// The engine observed an event that is inconsistent with its state
    /// (e.g. a release of a lock the thread does not hold).
    ProtocolViolation(String),
    /// Reading or writing the persistent history failed.
    Io(io::Error),
    /// The persistent history file is malformed.
    Parse {
        /// 1-based line number at which parsing failed (0 for JSON input).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The in-memory history is at `max_signatures` and the configuration
    /// sets the paper-faithful `refuse_at_capacity` flag, so the new
    /// antibody was refused (the default configuration evicts
    /// generation-stale antibodies instead and never produces this error).
    HistoryFull {
        /// The configured `max_signatures` bound that was hit.
        capacity: usize,
    },
}

impl fmt::Display for DimmunixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimmunixError::UnknownThread(t) => write!(f, "unknown thread {t}"),
            DimmunixError::UnknownLock(l) => write!(f, "unknown lock {l}"),
            DimmunixError::UnknownSignature(s) => write!(f, "unknown signature {s}"),
            DimmunixError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            DimmunixError::Io(e) => write!(f, "history i/o error: {e}"),
            DimmunixError::Parse { line, message } => {
                write!(f, "history parse error at line {line}: {message}")
            }
            DimmunixError::HistoryFull { capacity } => {
                write!(
                    f,
                    "history full: {capacity} signature(s) at capacity and refusal is configured"
                )
            }
        }
    }
}

impl std::error::Error for DimmunixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DimmunixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DimmunixError {
    fn from(e: io::Error) -> Self {
        DimmunixError::Io(e)
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, DimmunixError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockId, SignatureId, ThreadId};

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<DimmunixError> = vec![
            DimmunixError::UnknownThread(ThreadId::new(1)),
            DimmunixError::UnknownLock(LockId::new(2)),
            DimmunixError::UnknownSignature(SignatureId::new(3)),
            DimmunixError::ProtocolViolation("release without hold".into()),
            DimmunixError::Parse {
                line: 4,
                message: "bad token".into(),
            },
            DimmunixError::HistoryFull { capacity: 5 },
        ];
        for c in cases {
            let msg = c.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: DimmunixError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DimmunixError>();
    }
}
