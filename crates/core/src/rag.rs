//! The resource allocation graph (RAG).
//!
//! Dimmunix maintains the synchronization state of the process in a RAG
//! (§2.2): lock nodes point to the owners holding them (annotated with the
//! call stack of each acquisition, `acqPos`), and owner nodes point to the
//! lock they are currently requesting (annotated with the requesting call
//! stack). A cycle through a requesting owner means a deadlock is about to
//! occur. Owners parked by the avoidance module add *yield* edges towards
//! the owners blocking the matched signature; cycles through yield edges are
//! avoidance-induced deadlocks (starvation).
//!
//! The graph is keyed by [`OwnerId`], not raw thread ids: the paper's
//! thread-keyed RAG is the `OwnerId::Thread` instantiation, and async
//! substrates feed `OwnerId::Task` identities so cycles among tasks
//! multiplexed onto a small worker pool stay visible. The engine never
//! inspects which arm an owner is — every query below is owner-agnostic.
//!
//! ## Multi-owner lock nodes
//!
//! The paper's RAG models Java monitors: one owner per lock. This graph
//! generalizes the lock node to a **set of owners**, each with its own
//! acquisition position, [`AccessMode`], and recursion depth, so
//! reader–writer locks are represented exactly: every reader of a crowd
//! holds its own edge, a writer blocked behind the crowd waits on *all*
//! current readers (the wait-for successors fan out per owner), and
//! releasing one owner leaves the others untouched. Mutexes and monitors
//! are the one-owner special case ([`AccessMode::Exclusive`]), for which
//! every query below degenerates to the paper's single-owner semantics.

use crate::position::PositionId;
use crate::{LockId, OwnerId, SignatureId};
use std::collections::HashMap;

/// How an owner holds (or requests) a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Mutual exclusion: a mutex, a monitor, or the write side of an rwlock.
    Exclusive,
    /// Shared access: the read side of an rwlock. Shared holders of the same
    /// lock do not block each other.
    Shared,
}

impl AccessMode {
    /// True if a holder in `self` mode blocks (or is blocked by) a holder or
    /// requester in `other` mode on the same lock. Only shared/shared is
    /// compatible.
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        !(self == AccessMode::Shared && other == AccessMode::Shared)
    }

    /// True for [`AccessMode::Shared`].
    pub fn is_shared(self) -> bool {
        self == AccessMode::Shared
    }
}

/// Why an owner is waiting on another owner in the wait-for relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitEdge {
    /// The owner requests this lock, held by the successor owner.
    Lock(LockId),
    /// The owner was parked by avoidance and waits for the successor owner
    /// (one of the blockers of the matched signature) to make progress.
    Yield(SignatureId),
}

/// Record attached to an owner parked by the avoidance module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YieldRecord {
    /// The history signature whose instantiation is being avoided.
    pub signature: SignatureId,
    /// The position the parked owner was requesting at.
    pub position: PositionId,
    /// The lock the parked owner wanted to acquire.
    pub lock: LockId,
    /// The other owners currently covering the signature's outer positions.
    pub blockers: Vec<OwnerId>,
}

/// One lock currently held by an owner: the lock, its acquisition position
/// (`acqPos`), its access mode, and the acquisition sequence number.
///
/// The sequence number is what keeps "latest hold" queries meaningful when
/// the engine state is sharded by lock id: each shard's RAG only sees the
/// holds of its own locks, so a merged view re-establishes the global
/// acquisition order by sorting on `seq` (the sharded engine feeds every
/// shard from one monotonic counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldEntry {
    /// The held lock.
    pub lock: LockId,
    /// Call-stack position of the acquisition.
    pub pos: PositionId,
    /// Whether the hold is exclusive or shared.
    pub mode: AccessMode,
    /// Monotonic acquisition sequence number (engine-global in the sharded
    /// configuration, per-RAG otherwise).
    pub seq: u64,
}

/// An outstanding lock request: the lock, the requesting position, and the
/// requested access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RequestEdge {
    lock: LockId,
    pos: PositionId,
    mode: AccessMode,
}

/// Per-owner RAG node (a thread's or task's synchronization state).
#[derive(Debug, Clone, Default)]
pub struct OwnerNode {
    /// Outstanding lock request, if any, with the requesting position.
    requesting: Option<RequestEdge>,
    /// Locks currently held, in acquisition order, with their `acqPos`.
    held: Vec<HeldEntry>,
    /// Present while the owner is parked by avoidance.
    yielding: Option<YieldRecord>,
    /// Request approved by the last `request` grant, consumed by `acquire`.
    pending_grant: Option<RequestEdge>,
}

/// One owner of a lock: the holding owner, the call-stack position of its
/// acquisition (`acqPos` in §3.2), its access mode, and its own recursion
/// depth (Java monitors are reentrant; each owner re-enters independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockOwner {
    /// The holding owner (thread or task).
    pub owner: OwnerId,
    /// Call-stack position of this owner's acquisition.
    pub pos: PositionId,
    /// Whether this owner holds the lock exclusively or shared.
    pub mode: AccessMode,
    /// This owner's reentrant acquisition depth.
    pub recursion: u32,
}

/// Per-lock RAG node: the set of current owners. Exclusive holds have one
/// owner; a reader crowd has one owner entry per reader.
#[derive(Debug, Clone, Default)]
pub struct LockNode {
    owners: Vec<LockOwner>,
}

/// One step of a wait-for cycle: `owner` waits on the *next* entry's owner
/// through `edge`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStep {
    /// The waiting owner.
    pub owner: OwnerId,
    /// Why it waits on the next owner in the cycle.
    pub edge: WaitEdge,
}

/// The resource allocation graph.
#[derive(Debug, Clone, Default)]
pub struct Rag {
    owners_map: HashMap<OwnerId, OwnerNode>,
    locks: HashMap<LockId, LockNode>,
    /// Fallback acquisition counter used when the caller does not supply a
    /// sequence number (single-engine configuration).
    next_seq: u64,
    /// Number of owners currently parked by avoidance (with a yield
    /// record). The sharded engine's fast path is only sound while this is
    /// zero on every shard: a yield record's blocker list is a snapshot, so
    /// a wait-for cycle can run through an owner that holds no lock at all.
    yield_records: usize,
}

impl Rag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the graph in place, keeping the map allocations warm. Used
    /// by the schedule explorer's engine-reuse reset: a simulated run
    /// touches a handful of owners and locks, so retaining capacity across
    /// hundreds of thousands of runs avoids re-growing the tables each time.
    pub fn clear(&mut self) {
        self.owners_map.clear();
        self.locks.clear();
        self.next_seq = 0;
        self.yield_records = 0;
    }

    /// Number of registered owners.
    pub fn owner_count(&self) -> usize {
        self.owners_map.len()
    }

    /// Number of registered locks.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Registers an owner node (idempotent).
    pub fn register_owner(&mut self, t: OwnerId) {
        self.owners_map.entry(t).or_default();
    }

    /// Removes an owner node, returning the locks it still held (with their
    /// acquisition positions) so the caller can clean up position queues.
    pub fn unregister_owner(&mut self, t: OwnerId) -> Vec<HeldEntry> {
        let node = self.owners_map.remove(&t).unwrap_or_default();
        if node.yielding.is_some() {
            self.yield_records -= 1;
        }
        for entry in &node.held {
            if let Some(l) = self.locks.get_mut(&entry.lock) {
                l.owners.retain(|o| o.owner != t);
            }
        }
        node.held
    }

    /// Registers a lock node (idempotent). This is the analogue of inflating
    /// a thin lock into a fat `Monitor` that can carry a RAG node (§4).
    pub fn register_lock(&mut self, l: LockId) {
        self.locks.entry(l).or_default();
    }

    /// Removes a lock node (e.g. the monitor object was garbage collected).
    pub fn unregister_lock(&mut self, l: LockId) -> Option<LockNode> {
        self.locks.remove(&l)
    }

    /// True if the owner is registered.
    pub fn has_owner(&self, t: OwnerId) -> bool {
        self.owners_map.contains_key(&t)
    }

    /// True if the lock is registered.
    pub fn has_lock(&self, l: LockId) -> bool {
        self.locks.contains_key(&l)
    }

    /// The *sole* owner of `l`, if it has exactly one. This is the
    /// single-owner view mutex/monitor substrates reason with; a reader
    /// crowd (several owners) answers `None` — use [`owners`](Rag::owners)
    /// for the full set.
    pub fn owner(&self, l: LockId) -> Option<OwnerId> {
        match self.owners(l) {
            [single] => Some(single.owner),
            _ => None,
        }
    }

    /// Every current owner of `l`, in acquisition order (empty if the lock
    /// is unregistered or free).
    pub fn owners(&self, l: LockId) -> &[LockOwner] {
        self.locks
            .get(&l)
            .map(|n| n.owners.as_slice())
            .unwrap_or(&[])
    }

    /// True if `t` is among the current owners of `l` (any mode).
    pub fn owns(&self, l: LockId, t: OwnerId) -> bool {
        self.owner_entry(l, t).is_some()
    }

    /// The owner entry of `t` on `l`, if `t` currently holds it.
    pub fn owner_entry(&self, l: LockId, t: OwnerId) -> Option<&LockOwner> {
        self.owners(l).iter().find(|o| o.owner == t)
    }

    /// Acquisition position (`acqPos`) of `t`'s hold on `l`. With
    /// multi-owner lock nodes the template position of a cycle edge comes
    /// from the owner *actually on the cycle*, not from an arbitrary
    /// representative.
    pub fn acq_pos_of(&self, l: LockId, t: OwnerId) -> Option<PositionId> {
        self.owner_entry(l, t).map(|o| o.pos)
    }

    /// Reentrant acquisition depth of `t`'s hold on `l` (0 if `t` does not
    /// hold it).
    pub fn recursion_of(&self, l: LockId, t: OwnerId) -> u32 {
        self.owner_entry(l, t).map(|o| o.recursion).unwrap_or(0)
    }

    /// Locks held by `t` with their acquisition positions, in acquisition
    /// order (ascending [`HeldEntry::seq`]).
    pub fn held_locks(&self, t: OwnerId) -> &[HeldEntry] {
        self.owners_map
            .get(&t)
            .map(|n| n.held.as_slice())
            .unwrap_or(&[])
    }

    /// The lock and position `t` is currently requesting, if any.
    pub fn requesting(&self, t: OwnerId) -> Option<(LockId, PositionId)> {
        self.owners_map
            .get(&t)
            .and_then(|n| n.requesting)
            .map(|r| (r.lock, r.pos))
    }

    /// The access mode of `t`'s outstanding request, if any.
    pub fn requesting_mode(&self, t: OwnerId) -> Option<AccessMode> {
        self.owners_map
            .get(&t)
            .and_then(|n| n.requesting)
            .map(|r| r.mode)
    }

    /// The yield record of `t`, if it is parked by avoidance.
    pub fn yielding(&self, t: OwnerId) -> Option<&YieldRecord> {
        self.owners_map.get(&t).and_then(|n| n.yielding.as_ref())
    }

    /// Live yield records, keyed by their parked owner (unordered).
    pub fn yield_records(&self) -> impl Iterator<Item = (OwnerId, &YieldRecord)> {
        self.owners_map
            .iter()
            .filter_map(|(t, n)| n.yielding.as_ref().map(|y| (*t, y)))
    }

    /// True if any live yield record names `t` among its blockers, i.e. a
    /// yield edge points *at* `t` in the wait-for relation. Together with
    /// "t holds no lock" (no request edge can point at it either) this
    /// proves no cycle can run through `t` — the soundness condition of the
    /// scoped-degradation admission gate.
    pub fn lists_yield_blocker(&self, t: OwnerId) -> bool {
        self.yield_records().any(|(_, y)| y.blockers.contains(&t))
    }

    /// Owners currently parked by avoidance.
    pub fn yielding_owners(&self) -> Vec<OwnerId> {
        let mut v: Vec<OwnerId> = self
            .owners_map
            .iter()
            .filter(|(_, n)| n.yielding.is_some())
            .map(|(t, _)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    /// Records that `t` requests `l` at position `pos`, exclusively.
    pub fn set_request(&mut self, t: OwnerId, l: LockId, pos: PositionId) {
        self.set_request_mode(t, l, pos, AccessMode::Exclusive);
    }

    /// Records that `t` requests `l` at position `pos` in `mode`.
    pub fn set_request_mode(&mut self, t: OwnerId, l: LockId, pos: PositionId, mode: AccessMode) {
        self.register_owner(t);
        self.register_lock(l);
        if let Some(n) = self.owners_map.get_mut(&t) {
            n.requesting = Some(RequestEdge { lock: l, pos, mode });
        }
    }

    /// Clears the outstanding request of `t`.
    pub fn clear_request(&mut self, t: OwnerId) {
        if let Some(n) = self.owners_map.get_mut(&t) {
            n.requesting = None;
        }
    }

    /// Marks owner `t` as parked by avoidance.
    pub fn set_yield(&mut self, t: OwnerId, record: YieldRecord) {
        self.register_owner(t);
        if let Some(n) = self.owners_map.get_mut(&t) {
            if n.yielding.is_none() {
                self.yield_records += 1;
            }
            n.yielding = Some(record);
        }
    }

    /// Clears the parked state of `t`; returns the record if one was set.
    pub fn clear_yield(&mut self, t: OwnerId) -> Option<YieldRecord> {
        let taken = self.owners_map.get_mut(&t).and_then(|n| n.yielding.take());
        if taken.is_some() {
            self.yield_records -= 1;
        }
        taken
    }

    /// Number of owners currently parked by avoidance in this graph.
    pub fn yield_count(&self) -> usize {
        self.yield_records
    }

    /// Stores the position and mode approved by a grant, consumed by
    /// [`acquire`].
    ///
    /// [`acquire`]: Rag::acquire
    pub fn set_pending_grant(&mut self, t: OwnerId, l: LockId, pos: PositionId, mode: AccessMode) {
        self.register_owner(t);
        if let Some(n) = self.owners_map.get_mut(&t) {
            n.pending_grant = Some(RequestEdge { lock: l, pos, mode });
        }
    }

    /// The lock, position, and mode approved by the last grant for `t`, if
    /// any.
    pub fn pending_grant(&self, t: OwnerId) -> Option<(LockId, PositionId, AccessMode)> {
        self.owners_map
            .get(&t)
            .and_then(|n| n.pending_grant)
            .map(|g| (g.lock, g.pos, g.mode))
    }

    /// Removes and returns the pending grant of `t`, if any.
    pub fn take_pending_grant(&mut self, t: OwnerId) -> Option<(LockId, PositionId, AccessMode)> {
        self.owners_map
            .get_mut(&t)
            .and_then(|n| n.pending_grant.take())
            .map(|g| (g.lock, g.pos, g.mode))
    }

    /// Records that `t` acquired `l` at position `pos` (first, non-recursive
    /// acquisition, exclusive): adds the hold edge and an owner entry,
    /// clears the request. The acquisition is stamped from this RAG's own
    /// monotonic counter.
    pub fn acquire(&mut self, t: OwnerId, l: LockId, pos: PositionId) {
        let seq = self.next_seq;
        self.acquire_with_seq(t, l, pos, seq);
    }

    /// [`acquire`](Rag::acquire) with an explicit acquisition sequence
    /// number. The sharded engine calls this with a globally monotonic
    /// counter so holds distributed over several shard RAGs can be merged
    /// back into acquisition order.
    pub fn acquire_with_seq(&mut self, t: OwnerId, l: LockId, pos: PositionId, seq: u64) {
        self.acquire_mode_with_seq(t, l, pos, AccessMode::Exclusive, seq);
    }

    /// [`acquire_with_seq`](Rag::acquire_with_seq) with an explicit access
    /// mode: the owner entry joins the lock's owner set (a shared
    /// acquisition joins the existing reader crowd; an exclusive one is the
    /// sole owner in a well-behaved substrate).
    pub fn acquire_mode_with_seq(
        &mut self,
        t: OwnerId,
        l: LockId,
        pos: PositionId,
        mode: AccessMode,
        seq: u64,
    ) {
        self.next_seq = self.next_seq.max(seq).saturating_add(1);
        self.register_owner(t);
        self.register_lock(l);
        if let Some(n) = self.owners_map.get_mut(&t) {
            n.requesting = None;
            n.pending_grant = None;
            n.held.push(HeldEntry {
                lock: l,
                pos,
                mode,
                seq,
            });
        }
        if let Some(ln) = self.locks.get_mut(&l) {
            debug_assert!(
                ln.owners.iter().all(|o| o.owner != t),
                "first acquisition of an already-owned lock; use acquire_recursive"
            );
            ln.owners.push(LockOwner {
                owner: t,
                pos,
                mode,
                recursion: 1,
            });
        }
    }

    /// The sequence number the next un-stamped [`acquire`](Rag::acquire)
    /// would use.
    pub fn next_acquire_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records a recursive (reentrant) acquisition of a lock `t` already
    /// owns (any mode): bumps `t`'s own recursion depth; other owners are
    /// untouched.
    pub fn acquire_recursive(&mut self, t: OwnerId, l: LockId) {
        if let Some(n) = self.owners_map.get_mut(&t) {
            n.requesting = None;
            n.pending_grant = None;
        }
        if let Some(ln) = self.locks.get_mut(&l) {
            let owner = ln.owners.iter_mut().find(|o| o.owner == t);
            debug_assert!(owner.is_some(), "recursive acquisition by a non-owner");
            if let Some(o) = owner {
                o.recursion = o.recursion.saturating_add(1);
            }
        }
    }

    /// Records that `t` releases `l`: removes `t`'s own owner entry, leaving
    /// any co-owners (the rest of a reader crowd) in place. For recursive
    /// acquisitions the entry is only removed when `t`'s recursion count
    /// drops to zero; the return value is `t`'s acquisition position when
    /// its hold is actually released, or `None` for a nested exit or a
    /// release of a lock `t` does not own.
    pub fn release(&mut self, t: OwnerId, l: LockId) -> Option<PositionId> {
        let ln = self.locks.get_mut(&l)?;
        let idx = ln.owners.iter().position(|o| o.owner == t)?;
        if ln.owners[idx].recursion > 1 {
            ln.owners[idx].recursion -= 1;
            return None;
        }
        let pos = ln.owners.remove(idx).pos;
        if let Some(n) = self.owners_map.get_mut(&t) {
            if let Some(idx) = n.held.iter().rposition(|e| e.lock == l) {
                n.held.remove(idx);
            }
        }
        Some(pos)
    }

    /// Successor owners of `t` in the wait-for relation, together with the
    /// edge kind. A request fans out to **every** owner whose mode conflicts
    /// with the requested one: a writer blocked behind a reader crowd waits
    /// on all of its readers, while a reader joining the crowd waits on no
    /// one. `include_yields` selects whether avoidance-parked owners
    /// contribute edges (needed for starvation detection).
    pub fn successors(&self, t: OwnerId, include_yields: bool) -> Vec<(OwnerId, WaitEdge)> {
        let mut out = Vec::new();
        if let Some(node) = self.owners_map.get(&t) {
            if let Some(edge) = node.requesting {
                for owner in self.owners(edge.lock) {
                    if owner.owner != t && edge.mode.conflicts_with(owner.mode) {
                        out.push((owner.owner, WaitEdge::Lock(edge.lock)));
                    }
                }
            }
            if include_yields {
                if let Some(y) = &node.yielding {
                    for b in &y.blockers {
                        if *b != t {
                            out.push((*b, WaitEdge::Yield(y.signature)));
                        }
                    }
                }
            }
        }
        out
    }

    /// Searches for a wait-for cycle containing `start`.
    ///
    /// Returns the cycle as an ordered list of steps: entry `i` waits on the
    /// owner of entry `(i + 1) % len` through the given edge. Returns `None`
    /// if `start` is not part of any cycle.
    pub fn find_cycle_from(&self, start: OwnerId, include_yields: bool) -> Option<Vec<CycleStep>> {
        find_cycle_with(start, |t| self.successors(t, include_yields))
    }

    /// Estimated resident memory of the graph in bytes.
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in self.owners_map.values() {
            total += std::mem::size_of::<OwnerId>() + std::mem::size_of::<OwnerNode>();
            total += n.held.capacity() * std::mem::size_of::<HeldEntry>();
            if let Some(y) = &n.yielding {
                total += y.blockers.capacity() * std::mem::size_of::<OwnerId>();
            }
        }
        for n in self.locks.values() {
            total += std::mem::size_of::<LockId>() + std::mem::size_of::<LockNode>();
            total += n.owners.capacity() * std::mem::size_of::<LockOwner>();
        }
        total
    }
}

/// Searches for a wait-for cycle containing `start` over an arbitrary
/// successor function.
///
/// This is [`Rag::find_cycle_from`] with the graph abstracted away: the
/// sharded engine calls it with a closure that concatenates the successor
/// edges of every shard's RAG, which yields exactly the wait-for relation a
/// single monolithic RAG would contain (an owner's out-edges all live in the
/// shard that handled its outstanding request).
pub fn find_cycle_with<F>(start: OwnerId, mut successors: F) -> Option<Vec<CycleStep>>
where
    F: FnMut(OwnerId) -> Vec<(OwnerId, WaitEdge)>,
{
    // Depth-first search over the wait-for relation, recording the path.
    // Out-degree per owner is 1 (the requested lock's holders) plus the
    // blockers of a yield record, so the graph is tiny in practice.
    let mut path: Vec<CycleStep> = Vec::new();
    let mut on_path: Vec<OwnerId> = Vec::new();
    let mut visited: Vec<OwnerId> = Vec::new();
    dfs_cycle(
        start,
        start,
        &mut successors,
        &mut path,
        &mut on_path,
        &mut visited,
    )
    .then_some(path)
}

fn dfs_cycle<F>(
    current: OwnerId,
    target: OwnerId,
    successors: &mut F,
    path: &mut Vec<CycleStep>,
    on_path: &mut Vec<OwnerId>,
    visited: &mut Vec<OwnerId>,
) -> bool
where
    F: FnMut(OwnerId) -> Vec<(OwnerId, WaitEdge)>,
{
    on_path.push(current);
    for (next, edge) in successors(current) {
        if next == target && (!path.is_empty() || current != target) {
            path.push(CycleStep {
                owner: current,
                edge,
            });
            on_path.pop();
            return true;
        }
        if next == target && path.is_empty() && current == target {
            // self-loop; ignore (reentrant acquisitions never produce one)
            continue;
        }
        if on_path.contains(&next) || visited.contains(&next) {
            continue;
        }
        path.push(CycleStep {
            owner: current,
            edge,
        });
        if dfs_cycle(next, target, successors, path, on_path, visited) {
            on_path.pop();
            return true;
        }
        path.pop();
    }
    on_path.pop();
    visited.push(current);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> OwnerId {
        OwnerId::thread(i)
    }
    fn l(i: u64) -> LockId {
        LockId::new(i)
    }
    fn p(i: u32) -> PositionId {
        PositionId::new(i)
    }

    #[test]
    fn acquire_release_updates_ownership() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        assert_eq!(rag.owner(l(1)), Some(t(1)));
        assert_eq!(rag.acq_pos_of(l(1), t(1)), Some(p(0)));
        assert_eq!(rag.held_locks(t(1)).len(), 1);
        assert_eq!(rag.release(t(1), l(1)), Some(p(0)));
        assert_eq!(rag.owner(l(1)), None);
        assert!(rag.held_locks(t(1)).is_empty());
    }

    #[test]
    fn recursive_acquisition_releases_only_at_depth_zero() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire_recursive(t(1), l(1));
        assert_eq!(rag.recursion_of(l(1), t(1)), 2);
        assert_eq!(rag.release(t(1), l(1)), None);
        assert_eq!(rag.owner(l(1)), Some(t(1)));
        assert_eq!(rag.release(t(1), l(1)), Some(p(0)));
        assert_eq!(rag.owner(l(1)), None);
    }

    #[test]
    fn shared_owners_coexist_and_release_individually() {
        let mut rag = Rag::new();
        rag.acquire_mode_with_seq(t(1), l(1), p(1), AccessMode::Shared, 1);
        rag.acquire_mode_with_seq(t(2), l(1), p(2), AccessMode::Shared, 2);
        assert_eq!(rag.owners(l(1)).len(), 2);
        // Two owners: no *sole* owner.
        assert_eq!(rag.owner(l(1)), None);
        assert!(rag.owns(l(1), t(1)));
        assert!(rag.owns(l(1), t(2)));
        // Each owner keeps its own acquisition position.
        assert_eq!(rag.acq_pos_of(l(1), t(1)), Some(p(1)));
        assert_eq!(rag.acq_pos_of(l(1), t(2)), Some(p(2)));
        // Releasing one leaves the other's hold (and position) intact.
        assert_eq!(rag.release(t(1), l(1)), Some(p(1)));
        assert_eq!(rag.owner(l(1)), Some(t(2)));
        assert_eq!(rag.acq_pos_of(l(1), t(2)), Some(p(2)));
        assert_eq!(rag.release(t(2), l(1)), Some(p(2)));
        assert!(rag.owners(l(1)).is_empty());
    }

    #[test]
    fn writer_request_fans_out_to_every_reader() {
        let mut rag = Rag::new();
        rag.acquire_mode_with_seq(t(1), l(1), p(1), AccessMode::Shared, 1);
        rag.acquire_mode_with_seq(t(2), l(1), p(2), AccessMode::Shared, 2);
        // A writer waits on *all* current readers...
        rag.set_request_mode(t(3), l(1), p(3), AccessMode::Exclusive);
        let succ: Vec<OwnerId> = rag
            .successors(t(3), false)
            .iter()
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(succ, vec![t(1), t(2)]);
        // ...while a reader joining the crowd waits on no one.
        rag.set_request_mode(t(4), l(1), p(4), AccessMode::Shared);
        assert!(rag.successors(t(4), false).is_empty());
        // A reader blocked behind an exclusive owner does wait.
        let mut rag2 = Rag::new();
        rag2.acquire(t(1), l(1), p(0));
        rag2.set_request_mode(t(2), l(1), p(1), AccessMode::Shared);
        assert_eq!(rag2.successors(t(2), false).len(), 1);
    }

    #[test]
    fn cycle_through_one_reader_of_a_crowd_is_found() {
        let mut rag = Rag::new();
        // r1 and r2 share lock 1; t3 owns lock 2 and requests lock 1
        // (exclusive); r2 requests lock 2. Cycle: t3 -> r2 -> t3, through
        // the non-first reader.
        rag.acquire_mode_with_seq(t(1), l(1), p(1), AccessMode::Shared, 1);
        rag.acquire_mode_with_seq(t(2), l(1), p(2), AccessMode::Shared, 2);
        rag.acquire(t(3), l(2), p(3));
        rag.set_request_mode(t(3), l(1), p(4), AccessMode::Exclusive);
        assert!(rag.find_cycle_from(t(3), false).is_none());
        rag.set_request_mode(t(2), l(2), p(5), AccessMode::Shared);
        let cycle = rag.find_cycle_from(t(2), false).expect("cycle");
        let threads: Vec<OwnerId> = cycle.iter().map(|s| s.owner).collect();
        assert!(threads.contains(&t(2)) && threads.contains(&t(3)));
        assert!(!threads.contains(&t(1)), "t1 is not on the cycle");
    }

    #[test]
    fn access_mode_conflicts() {
        use AccessMode::*;
        assert!(Exclusive.conflicts_with(Exclusive));
        assert!(Exclusive.conflicts_with(Shared));
        assert!(Shared.conflicts_with(Exclusive));
        assert!(!Shared.conflicts_with(Shared));
        assert!(Shared.is_shared() && !Exclusive.is_shared());
    }

    #[test]
    fn release_by_non_owner_is_ignored() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        assert_eq!(rag.release(t(2), l(1)), None);
        assert_eq!(rag.owner(l(1)), Some(t(1)));
    }

    #[test]
    fn two_thread_cycle_is_found() {
        let mut rag = Rag::new();
        // t1 holds l1, t2 holds l2, t1 requests l2, t2 requests l1.
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.set_request(t(1), l(2), p(2));
        assert!(rag.find_cycle_from(t(1), false).is_none());
        rag.set_request(t(2), l(1), p(3));
        let cycle = rag.find_cycle_from(t(2), false).expect("cycle");
        assert_eq!(cycle.len(), 2);
        let threads: Vec<OwnerId> = cycle.iter().map(|s| s.owner).collect();
        assert!(threads.contains(&t(1)));
        assert!(threads.contains(&t(2)));
    }

    #[test]
    fn three_thread_cycle_is_found() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.acquire(t(3), l(3), p(2));
        rag.set_request(t(1), l(2), p(3));
        rag.set_request(t(2), l(3), p(4));
        rag.set_request(t(3), l(1), p(5));
        let cycle = rag.find_cycle_from(t(3), false).expect("cycle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn no_cycle_for_chain() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.set_request(t(2), l(1), p(2));
        assert!(rag.find_cycle_from(t(2), false).is_none());
    }

    #[test]
    fn yield_edges_participate_only_when_requested() {
        let mut rag = Rag::new();
        // t1 holds l1 and requests l2 owned by t2; t2 is parked yielding on t1.
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.set_request(t(1), l(2), p(2));
        rag.set_request(t(2), l(3), p(3));
        rag.register_lock(l(3));
        rag.set_yield(
            t(2),
            YieldRecord {
                signature: SignatureId::new(0),
                position: p(3),
                lock: l(3),
                blockers: vec![t(1)],
            },
        );
        assert!(rag.find_cycle_from(t(1), false).is_none());
        let cycle = rag.find_cycle_from(t(1), true).expect("starvation cycle");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.iter().any(|s| matches!(s.edge, WaitEdge::Yield(_))));
    }

    #[test]
    fn unregister_thread_frees_owned_locks() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(1), l(2), p(1));
        let held = rag.unregister_owner(t(1));
        assert_eq!(held.len(), 2);
        assert_eq!(rag.owner(l(1)), None);
        assert_eq!(rag.owner(l(2)), None);
        assert!(!rag.has_owner(t(1)));
    }

    #[test]
    fn pending_grant_roundtrip() {
        let mut rag = Rag::new();
        rag.set_pending_grant(t(1), l(5), p(7), AccessMode::Shared);
        assert_eq!(
            rag.pending_grant(t(1)),
            Some((l(5), p(7), AccessMode::Shared))
        );
        rag.acquire(t(1), l(5), p(7));
        assert_eq!(rag.pending_grant(t(1)), None);
    }

    #[test]
    fn successors_skip_self_edges() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.set_request(t(1), l(1), p(1));
        assert!(rag.successors(t(1), true).is_empty());
    }

    #[test]
    fn memory_footprint_grows() {
        let mut rag = Rag::new();
        let base = rag.memory_footprint_bytes();
        for i in 0..32 {
            rag.acquire(t(i), l(i), p(0));
        }
        assert!(rag.memory_footprint_bytes() > base);
    }
}
