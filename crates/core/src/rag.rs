//! The resource allocation graph (RAG).
//!
//! Dimmunix maintains the synchronization state of the process in a RAG
//! (§2.2): lock nodes point to the thread owning them (annotated with the
//! call stack of the acquisition, `acqPos`), and thread nodes point to the
//! lock they are currently requesting (annotated with the requesting call
//! stack). A cycle through a requesting thread means a deadlock is about to
//! occur. Threads parked by the avoidance module add *yield* edges towards
//! the threads blocking the matched signature; cycles through yield edges are
//! avoidance-induced deadlocks (starvation).

use crate::position::PositionId;
use crate::{LockId, SignatureId, ThreadId};
use std::collections::HashMap;

/// Why a thread is waiting on another thread in the wait-for relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitEdge {
    /// The thread requests this lock, owned by the successor thread.
    Lock(LockId),
    /// The thread was parked by avoidance and waits for the successor thread
    /// (one of the blockers of the matched signature) to make progress.
    Yield(SignatureId),
}

/// Record attached to a thread parked by the avoidance module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YieldRecord {
    /// The history signature whose instantiation is being avoided.
    pub signature: SignatureId,
    /// The position the parked thread was requesting at.
    pub position: PositionId,
    /// The lock the parked thread wanted to acquire.
    pub lock: LockId,
    /// The other threads currently covering the signature's outer positions.
    pub blockers: Vec<ThreadId>,
}

/// One lock currently held by a thread: the lock, its acquisition position
/// (`acqPos`), and the acquisition sequence number.
///
/// The sequence number is what keeps "latest hold" queries meaningful when
/// the engine state is sharded by lock id: each shard's RAG only sees the
/// holds of its own locks, so a merged view re-establishes the global
/// acquisition order by sorting on `seq` (the sharded engine feeds every
/// shard from one monotonic counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldEntry {
    /// The held lock.
    pub lock: LockId,
    /// Call-stack position of the acquisition.
    pub pos: PositionId,
    /// Monotonic acquisition sequence number (engine-global in the sharded
    /// configuration, per-RAG otherwise).
    pub seq: u64,
}

/// Per-thread RAG node.
#[derive(Debug, Clone, Default)]
pub struct ThreadNode {
    /// Outstanding lock request, if any, with the requesting position.
    requesting: Option<(LockId, PositionId)>,
    /// Locks currently held, in acquisition order, with their `acqPos`.
    held: Vec<HeldEntry>,
    /// Present while the thread is parked by avoidance.
    yielding: Option<YieldRecord>,
    /// Position approved by the last `request` grant, consumed by `acquire`.
    pending_grant: Option<(LockId, PositionId)>,
}

/// Per-lock RAG node.
#[derive(Debug, Clone, Default)]
pub struct LockNode {
    /// Current owner thread.
    owner: Option<ThreadId>,
    /// Call-stack position of the owner's acquisition (`acqPos` in §3.2).
    acq_pos: Option<PositionId>,
    /// Monitor recursion depth (Java monitors are reentrant).
    recursion: u32,
}

/// One step of a wait-for cycle: `thread` waits on the *next* entry's thread
/// through `edge`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStep {
    /// The waiting thread.
    pub thread: ThreadId,
    /// Why it waits on the next thread in the cycle.
    pub edge: WaitEdge,
}

/// The resource allocation graph.
#[derive(Debug, Clone, Default)]
pub struct Rag {
    threads: HashMap<ThreadId, ThreadNode>,
    locks: HashMap<LockId, LockNode>,
    /// Fallback acquisition counter used when the caller does not supply a
    /// sequence number (single-engine configuration).
    next_seq: u64,
    /// Number of threads currently parked by avoidance (with a yield
    /// record). The sharded engine's fast path is only sound while this is
    /// zero on every shard: a yield record's blocker list is a snapshot, so
    /// a wait-for cycle can run through a thread that holds no lock at all.
    yield_records: usize,
}

impl Rag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of registered locks.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Registers a thread node (idempotent).
    pub fn register_thread(&mut self, t: ThreadId) {
        self.threads.entry(t).or_default();
    }

    /// Removes a thread node, returning the locks it still held (with their
    /// acquisition positions) so the caller can clean up position queues.
    pub fn unregister_thread(&mut self, t: ThreadId) -> Vec<HeldEntry> {
        let node = self.threads.remove(&t).unwrap_or_default();
        if node.yielding.is_some() {
            self.yield_records -= 1;
        }
        for entry in &node.held {
            if let Some(l) = self.locks.get_mut(&entry.lock) {
                if l.owner == Some(t) {
                    l.owner = None;
                    l.acq_pos = None;
                    l.recursion = 0;
                }
            }
        }
        node.held
    }

    /// Registers a lock node (idempotent). This is the analogue of inflating
    /// a thin lock into a fat `Monitor` that can carry a RAG node (§4).
    pub fn register_lock(&mut self, l: LockId) {
        self.locks.entry(l).or_default();
    }

    /// Removes a lock node (e.g. the monitor object was garbage collected).
    pub fn unregister_lock(&mut self, l: LockId) -> Option<LockNode> {
        self.locks.remove(&l)
    }

    /// True if the thread is registered.
    pub fn has_thread(&self, t: ThreadId) -> bool {
        self.threads.contains_key(&t)
    }

    /// True if the lock is registered.
    pub fn has_lock(&self, l: LockId) -> bool {
        self.locks.contains_key(&l)
    }

    /// Current owner of `l`, if any.
    pub fn owner(&self, l: LockId) -> Option<ThreadId> {
        self.locks.get(&l).and_then(|n| n.owner)
    }

    /// Acquisition position (`acqPos`) of `l`'s current ownership.
    pub fn acq_pos(&self, l: LockId) -> Option<PositionId> {
        self.locks.get(&l).and_then(|n| n.acq_pos)
    }

    /// Monitor recursion depth of `l`.
    pub fn recursion(&self, l: LockId) -> u32 {
        self.locks.get(&l).map(|n| n.recursion).unwrap_or(0)
    }

    /// Locks held by `t` with their acquisition positions, in acquisition
    /// order (ascending [`HeldEntry::seq`]).
    pub fn held_locks(&self, t: ThreadId) -> &[HeldEntry] {
        self.threads
            .get(&t)
            .map(|n| n.held.as_slice())
            .unwrap_or(&[])
    }

    /// The lock and position `t` is currently requesting, if any.
    pub fn requesting(&self, t: ThreadId) -> Option<(LockId, PositionId)> {
        self.threads.get(&t).and_then(|n| n.requesting)
    }

    /// The yield record of `t`, if it is parked by avoidance.
    pub fn yielding(&self, t: ThreadId) -> Option<&YieldRecord> {
        self.threads.get(&t).and_then(|n| n.yielding.as_ref())
    }

    /// Threads currently parked by avoidance.
    pub fn yielding_threads(&self) -> Vec<ThreadId> {
        let mut v: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|(_, n)| n.yielding.is_some())
            .map(|(t, _)| *t)
            .collect();
        v.sort_unstable();
        v
    }

    /// Records that `t` requests `l` at position `pos`.
    pub fn set_request(&mut self, t: ThreadId, l: LockId, pos: PositionId) {
        self.register_thread(t);
        self.register_lock(l);
        if let Some(n) = self.threads.get_mut(&t) {
            n.requesting = Some((l, pos));
        }
    }

    /// Clears the outstanding request of `t`.
    pub fn clear_request(&mut self, t: ThreadId) {
        if let Some(n) = self.threads.get_mut(&t) {
            n.requesting = None;
        }
    }

    /// Marks `t` as parked by avoidance.
    pub fn set_yield(&mut self, t: ThreadId, record: YieldRecord) {
        self.register_thread(t);
        if let Some(n) = self.threads.get_mut(&t) {
            if n.yielding.is_none() {
                self.yield_records += 1;
            }
            n.yielding = Some(record);
        }
    }

    /// Clears the parked state of `t`; returns the record if one was set.
    pub fn clear_yield(&mut self, t: ThreadId) -> Option<YieldRecord> {
        let taken = self.threads.get_mut(&t).and_then(|n| n.yielding.take());
        if taken.is_some() {
            self.yield_records -= 1;
        }
        taken
    }

    /// Number of threads currently parked by avoidance in this graph.
    pub fn yield_count(&self) -> usize {
        self.yield_records
    }

    /// Stores the position approved by a grant, consumed by [`acquire`].
    ///
    /// [`acquire`]: Rag::acquire
    pub fn set_pending_grant(&mut self, t: ThreadId, l: LockId, pos: PositionId) {
        self.register_thread(t);
        if let Some(n) = self.threads.get_mut(&t) {
            n.pending_grant = Some((l, pos));
        }
    }

    /// The position approved by the last grant for `t`, if any.
    pub fn pending_grant(&self, t: ThreadId) -> Option<(LockId, PositionId)> {
        self.threads.get(&t).and_then(|n| n.pending_grant)
    }

    /// Removes and returns the pending grant of `t`, if any.
    pub fn take_pending_grant(&mut self, t: ThreadId) -> Option<(LockId, PositionId)> {
        self.threads
            .get_mut(&t)
            .and_then(|n| n.pending_grant.take())
    }

    /// Records that `t` acquired `l` at position `pos` (first, non-recursive
    /// acquisition): sets the hold edge and `acqPos`, clears the request.
    /// The acquisition is stamped from this RAG's own monotonic counter.
    pub fn acquire(&mut self, t: ThreadId, l: LockId, pos: PositionId) {
        let seq = self.next_seq;
        self.acquire_with_seq(t, l, pos, seq);
    }

    /// [`acquire`](Rag::acquire) with an explicit acquisition sequence
    /// number. The sharded engine calls this with a globally monotonic
    /// counter so holds distributed over several shard RAGs can be merged
    /// back into acquisition order.
    pub fn acquire_with_seq(&mut self, t: ThreadId, l: LockId, pos: PositionId, seq: u64) {
        self.next_seq = self.next_seq.max(seq).saturating_add(1);
        self.register_thread(t);
        self.register_lock(l);
        if let Some(n) = self.threads.get_mut(&t) {
            n.requesting = None;
            n.pending_grant = None;
            n.held.push(HeldEntry { lock: l, pos, seq });
        }
        if let Some(ln) = self.locks.get_mut(&l) {
            ln.owner = Some(t);
            ln.acq_pos = Some(pos);
            ln.recursion = 1;
        }
    }

    /// The sequence number the next un-stamped [`acquire`](Rag::acquire)
    /// would use.
    pub fn next_acquire_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records a recursive (reentrant) acquisition of a monitor `t` already
    /// owns.
    pub fn acquire_recursive(&mut self, t: ThreadId, l: LockId) {
        if let Some(n) = self.threads.get_mut(&t) {
            n.requesting = None;
            n.pending_grant = None;
        }
        if let Some(ln) = self.locks.get_mut(&l) {
            debug_assert_eq!(ln.owner, Some(t));
            ln.recursion = ln.recursion.saturating_add(1);
        }
    }

    /// Records that `t` releases `l`. For recursive monitors the hold edge is
    /// only removed when the recursion count drops to zero; the return value
    /// is the acquisition position when the monitor is actually released, or
    /// `None` for a nested exit or a release of an un-owned lock.
    pub fn release(&mut self, t: ThreadId, l: LockId) -> Option<PositionId> {
        let ln = self.locks.get_mut(&l)?;
        if ln.owner != Some(t) {
            return None;
        }
        if ln.recursion > 1 {
            ln.recursion -= 1;
            return None;
        }
        let pos = ln.acq_pos.take();
        ln.owner = None;
        ln.recursion = 0;
        if let Some(n) = self.threads.get_mut(&t) {
            if let Some(idx) = n.held.iter().rposition(|e| e.lock == l) {
                n.held.remove(idx);
            }
        }
        pos
    }

    /// Successor threads of `t` in the wait-for relation, together with the
    /// edge kind. `include_yields` selects whether avoidance-parked threads
    /// contribute edges (needed for starvation detection).
    pub fn successors(&self, t: ThreadId, include_yields: bool) -> Vec<(ThreadId, WaitEdge)> {
        let mut out = Vec::new();
        if let Some(node) = self.threads.get(&t) {
            if let Some((lock, _)) = node.requesting {
                if let Some(owner) = self.owner(lock) {
                    if owner != t {
                        out.push((owner, WaitEdge::Lock(lock)));
                    }
                }
            }
            if include_yields {
                if let Some(y) = &node.yielding {
                    for b in &y.blockers {
                        if *b != t {
                            out.push((*b, WaitEdge::Yield(y.signature)));
                        }
                    }
                }
            }
        }
        out
    }

    /// Searches for a wait-for cycle containing `start`.
    ///
    /// Returns the cycle as an ordered list of steps: entry `i` waits on the
    /// thread of entry `(i + 1) % len` through the given edge. Returns `None`
    /// if `start` is not part of any cycle.
    pub fn find_cycle_from(&self, start: ThreadId, include_yields: bool) -> Option<Vec<CycleStep>> {
        find_cycle_with(start, |t| self.successors(t, include_yields))
    }

    /// Estimated resident memory of the graph in bytes.
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in self.threads.values() {
            total += std::mem::size_of::<ThreadId>() + std::mem::size_of::<ThreadNode>();
            total += n.held.capacity() * std::mem::size_of::<HeldEntry>();
            if let Some(y) = &n.yielding {
                total += y.blockers.capacity() * std::mem::size_of::<ThreadId>();
            }
        }
        total +=
            self.locks.len() * (std::mem::size_of::<LockId>() + std::mem::size_of::<LockNode>());
        total
    }
}

/// Searches for a wait-for cycle containing `start` over an arbitrary
/// successor function.
///
/// This is [`Rag::find_cycle_from`] with the graph abstracted away: the
/// sharded engine calls it with a closure that concatenates the successor
/// edges of every shard's RAG, which yields exactly the wait-for relation a
/// single monolithic RAG would contain (a thread's out-edges all live in the
/// shard that handled its outstanding request).
pub fn find_cycle_with<F>(start: ThreadId, mut successors: F) -> Option<Vec<CycleStep>>
where
    F: FnMut(ThreadId) -> Vec<(ThreadId, WaitEdge)>,
{
    // Depth-first search over the wait-for relation, recording the path.
    // Out-degree per thread is 1 (the requested lock's owner) plus the
    // blockers of a yield record, so the graph is tiny in practice.
    let mut path: Vec<CycleStep> = Vec::new();
    let mut on_path: Vec<ThreadId> = Vec::new();
    let mut visited: Vec<ThreadId> = Vec::new();
    dfs_cycle(
        start,
        start,
        &mut successors,
        &mut path,
        &mut on_path,
        &mut visited,
    )
    .then_some(path)
}

fn dfs_cycle<F>(
    current: ThreadId,
    target: ThreadId,
    successors: &mut F,
    path: &mut Vec<CycleStep>,
    on_path: &mut Vec<ThreadId>,
    visited: &mut Vec<ThreadId>,
) -> bool
where
    F: FnMut(ThreadId) -> Vec<(ThreadId, WaitEdge)>,
{
    on_path.push(current);
    for (next, edge) in successors(current) {
        if next == target && (!path.is_empty() || current != target) {
            path.push(CycleStep {
                thread: current,
                edge,
            });
            on_path.pop();
            return true;
        }
        if next == target && path.is_empty() && current == target {
            // self-loop; ignore (reentrant acquisitions never produce one)
            continue;
        }
        if on_path.contains(&next) || visited.contains(&next) {
            continue;
        }
        path.push(CycleStep {
            thread: current,
            edge,
        });
        if dfs_cycle(next, target, successors, path, on_path, visited) {
            on_path.pop();
            return true;
        }
        path.pop();
    }
    on_path.pop();
    visited.push(current);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> ThreadId {
        ThreadId::new(i)
    }
    fn l(i: u64) -> LockId {
        LockId::new(i)
    }
    fn p(i: u32) -> PositionId {
        PositionId::new(i)
    }

    #[test]
    fn acquire_release_updates_ownership() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        assert_eq!(rag.owner(l(1)), Some(t(1)));
        assert_eq!(rag.acq_pos(l(1)), Some(p(0)));
        assert_eq!(rag.held_locks(t(1)).len(), 1);
        assert_eq!(rag.release(t(1), l(1)), Some(p(0)));
        assert_eq!(rag.owner(l(1)), None);
        assert!(rag.held_locks(t(1)).is_empty());
    }

    #[test]
    fn recursive_acquisition_releases_only_at_depth_zero() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire_recursive(t(1), l(1));
        assert_eq!(rag.recursion(l(1)), 2);
        assert_eq!(rag.release(t(1), l(1)), None);
        assert_eq!(rag.owner(l(1)), Some(t(1)));
        assert_eq!(rag.release(t(1), l(1)), Some(p(0)));
        assert_eq!(rag.owner(l(1)), None);
    }

    #[test]
    fn release_by_non_owner_is_ignored() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        assert_eq!(rag.release(t(2), l(1)), None);
        assert_eq!(rag.owner(l(1)), Some(t(1)));
    }

    #[test]
    fn two_thread_cycle_is_found() {
        let mut rag = Rag::new();
        // t1 holds l1, t2 holds l2, t1 requests l2, t2 requests l1.
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.set_request(t(1), l(2), p(2));
        assert!(rag.find_cycle_from(t(1), false).is_none());
        rag.set_request(t(2), l(1), p(3));
        let cycle = rag.find_cycle_from(t(2), false).expect("cycle");
        assert_eq!(cycle.len(), 2);
        let threads: Vec<ThreadId> = cycle.iter().map(|s| s.thread).collect();
        assert!(threads.contains(&t(1)));
        assert!(threads.contains(&t(2)));
    }

    #[test]
    fn three_thread_cycle_is_found() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.acquire(t(3), l(3), p(2));
        rag.set_request(t(1), l(2), p(3));
        rag.set_request(t(2), l(3), p(4));
        rag.set_request(t(3), l(1), p(5));
        let cycle = rag.find_cycle_from(t(3), false).expect("cycle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn no_cycle_for_chain() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.set_request(t(2), l(1), p(2));
        assert!(rag.find_cycle_from(t(2), false).is_none());
    }

    #[test]
    fn yield_edges_participate_only_when_requested() {
        let mut rag = Rag::new();
        // t1 holds l1 and requests l2 owned by t2; t2 is parked yielding on t1.
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(2), l(2), p(1));
        rag.set_request(t(1), l(2), p(2));
        rag.set_request(t(2), l(3), p(3));
        rag.register_lock(l(3));
        rag.set_yield(
            t(2),
            YieldRecord {
                signature: SignatureId::new(0),
                position: p(3),
                lock: l(3),
                blockers: vec![t(1)],
            },
        );
        assert!(rag.find_cycle_from(t(1), false).is_none());
        let cycle = rag.find_cycle_from(t(1), true).expect("starvation cycle");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.iter().any(|s| matches!(s.edge, WaitEdge::Yield(_))));
    }

    #[test]
    fn unregister_thread_frees_owned_locks() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.acquire(t(1), l(2), p(1));
        let held = rag.unregister_thread(t(1));
        assert_eq!(held.len(), 2);
        assert_eq!(rag.owner(l(1)), None);
        assert_eq!(rag.owner(l(2)), None);
        assert!(!rag.has_thread(t(1)));
    }

    #[test]
    fn pending_grant_roundtrip() {
        let mut rag = Rag::new();
        rag.set_pending_grant(t(1), l(5), p(7));
        assert_eq!(rag.pending_grant(t(1)), Some((l(5), p(7))));
        rag.acquire(t(1), l(5), p(7));
        assert_eq!(rag.pending_grant(t(1)), None);
    }

    #[test]
    fn successors_skip_self_edges() {
        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p(0));
        rag.set_request(t(1), l(1), p(1));
        assert!(rag.successors(t(1), true).is_empty());
    }

    #[test]
    fn memory_footprint_grows() {
        let mut rag = Rag::new();
        let base = rag.memory_footprint_bytes();
        for i in 0..32 {
            rag.acquire(t(i), l(i), p(0));
        }
        assert!(rag.memory_footprint_bytes() > base);
    }
}
