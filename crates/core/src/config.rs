//! Engine configuration.
//!
//! The defaults mirror the choices made for Android Dimmunix in §3.2/§4 of
//! the paper: outer call stacks of depth 1, detection and avoidance both
//! enabled, and an optional persistent history file.

use std::path::PathBuf;

/// How many stack frames are kept when interning an acquisition position.
///
/// The paper uses depth 1 on the phone (cheap, but coarser matching, §3.2);
/// the depth-ablation experiment (`A1` in `DESIGN.md`) sweeps this value.
pub const DEFAULT_STACK_DEPTH: usize = 1;

/// Upper bound on signatures kept in memory; old histories on real phones are
/// small (one entry per distinct deadlock bug), so this is simply a safety
/// valve for synthetic-history experiments.
pub const DEFAULT_MAX_SIGNATURES: usize = 4096;

/// Default generation window for eviction at capacity: a signature that
/// matched no avoidance check (and was not re-detected) within this many
/// snapshot epochs is considered stale and may be retired to make room.
pub const DEFAULT_EVICTION_WINDOW: u64 = 16;

/// Default record count per history-log segment before an engine append
/// rolls to a fresh `<path>.segN` file. Detections are rare, so a segment
/// this size represents a long deployment; compaction coalesces the chain.
pub const DEFAULT_LOG_SEGMENT_RECORDS: usize = 1024;

/// Configuration of a [`Dimmunix`](crate::engine::Dimmunix) engine instance.
///
/// ```
/// use dimmunix_core::Config;
/// let cfg = Config::builder().stack_depth(2).detection(true).build();
/// assert_eq!(cfg.stack_depth, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of call-stack frames retained per acquisition position.
    pub stack_depth: usize,
    /// Whether the detection module (RAG cycle search on every request) runs.
    pub detection: bool,
    /// Whether the avoidance module (signature-instantiation check) runs.
    pub avoidance: bool,
    /// Whether avoidance-induced starvation is detected and converted into
    /// starvation signatures (§2.2).
    pub starvation_handling: bool,
    /// Optional path of the persistent deadlock history — an append-only
    /// signature log (see [`HistoryLog`](crate::HistoryLog)). The engine
    /// replays (and tail-repairs) the log at construction and appends one
    /// record per newly detected signature.
    pub history_path: Option<PathBuf>,
    /// Whether each history-log append fsyncs the file (default `true`):
    /// an antibody is durable the moment its detection returns, which is
    /// the paper-faithful choice — the whole point of the history is to
    /// survive the reboot that follows a freeze. Disable to trade that
    /// durability for cheaper appends.
    pub log_sync: bool,
    /// Maximum number of signatures retained in the in-memory history.
    pub max_signatures: usize,
    /// Capacity of the in-memory event log (0 disables event logging).
    pub event_log_capacity: usize,
    /// Generation window for eviction at capacity: a live signature is
    /// eviction-eligible only if it matched nothing within this many
    /// snapshot epochs. Signatures matched more recently are never evicted
    /// (a soft overflow is preferred), so immunity against active bugs is
    /// retained.
    pub eviction_window: u64,
    /// Paper-faithful capacity behaviour: when `true`, a full history
    /// refuses new antibodies ([`DimmunixError::HistoryFull`] from the
    /// fallible API, a silent refusal from the infallible one) instead of
    /// evicting generation-stale ones. Default `false`: evict and record
    /// the retirement in [`Stats::signatures_evicted`].
    ///
    /// [`DimmunixError::HistoryFull`]: crate::DimmunixError::HistoryFull
    /// [`Stats::signatures_evicted`]: crate::Stats
    pub refuse_at_capacity: bool,
    /// Records per history-log segment before appends roll to a fresh
    /// `<path>.segN` file (0 = unsegmented). Replay always walks whatever
    /// segment chain exists on disk regardless of this setting.
    pub log_segment_records: usize,
    /// Whether the lock-free admission path is active (default `true`).
    ///
    /// When enabled, the sharded engine scopes its degradation decision to
    /// the owners actually involved in a potential cycle (a park only slows
    /// requests a yield record's blocker list could reach), and the runtime
    /// admits clean-history, hold-free acquisitions with zero shard locks
    /// via an epoch-validated read of the
    /// [`AdmissionSummary`](crate::AdmissionSummary). When disabled, any
    /// parked owner degrades every request to the ordered all-shard path
    /// (the pre-admission-path behaviour).
    pub lock_free_admission: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            stack_depth: DEFAULT_STACK_DEPTH,
            detection: true,
            avoidance: true,
            starvation_handling: true,
            history_path: None,
            log_sync: true,
            max_signatures: DEFAULT_MAX_SIGNATURES,
            event_log_capacity: 0,
            eviction_window: DEFAULT_EVICTION_WINDOW,
            refuse_at_capacity: false,
            log_segment_records: DEFAULT_LOG_SEGMENT_RECORDS,
            lock_free_admission: true,
        }
    }
}

impl Config {
    /// Creates the default configuration (paper defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a builder for incremental configuration.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Configuration equivalent to running the vanilla platform: Dimmunix is
    /// a pure pass-through (used for overhead baselines).
    pub fn disabled() -> Self {
        Config {
            detection: false,
            avoidance: false,
            starvation_handling: false,
            ..Self::default()
        }
    }

    /// Returns true if neither detection nor avoidance is active.
    pub fn is_disabled(&self) -> bool {
        !self.detection && !self.avoidance
    }
}

/// Builder for [`Config`].
#[derive(Debug, Clone, Default)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Sets the retained call-stack depth (clamped to at least 1).
    pub fn stack_depth(mut self, depth: usize) -> Self {
        self.config.stack_depth = depth.max(1);
        self
    }

    /// Enables or disables deadlock detection.
    pub fn detection(mut self, enabled: bool) -> Self {
        self.config.detection = enabled;
        self
    }

    /// Enables or disables deadlock avoidance.
    pub fn avoidance(mut self, enabled: bool) -> Self {
        self.config.avoidance = enabled;
        self
    }

    /// Enables or disables starvation (avoidance-induced deadlock) handling.
    pub fn starvation_handling(mut self, enabled: bool) -> Self {
        self.config.starvation_handling = enabled;
        self
    }

    /// Sets the path of the persistent history (an append-only signature
    /// log; see [`HistoryLog`](crate::HistoryLog)).
    pub fn history_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.history_path = Some(path.into());
        self
    }

    /// Enables or disables the per-append fsync of the history log.
    pub fn log_sync(mut self, enabled: bool) -> Self {
        self.config.log_sync = enabled;
        self
    }

    /// Sets the maximum number of in-memory signatures.
    pub fn max_signatures(mut self, max: usize) -> Self {
        self.config.max_signatures = max;
        self
    }

    /// Sets the in-memory event log capacity (0 disables logging).
    pub fn event_log_capacity(mut self, cap: usize) -> Self {
        self.config.event_log_capacity = cap;
        self
    }

    /// Sets the generation window for eviction at capacity (epochs a
    /// signature may go unmatched before it becomes eviction-eligible).
    pub fn eviction_window(mut self, window: u64) -> Self {
        self.config.eviction_window = window;
        self
    }

    /// Enables the paper-faithful refusal of new antibodies at capacity
    /// instead of the default generation-based eviction.
    pub fn refuse_at_capacity(mut self, refuse: bool) -> Self {
        self.config.refuse_at_capacity = refuse;
        self
    }

    /// Sets the records-per-segment cap of the history log (0 keeps the
    /// log unsegmented).
    pub fn log_segment_records(mut self, records: usize) -> Self {
        self.config.log_segment_records = records;
        self
    }

    /// Enables or disables the lock-free admission path (scoped degradation
    /// in the sharded engine, zero-lock epoch-read admission in the
    /// runtime).
    pub fn lock_free_admission(mut self, enabled: bool) -> Self {
        self.config.lock_free_admission = enabled;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Config {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let cfg = Config::default();
        assert_eq!(cfg.stack_depth, 1);
        assert!(cfg.detection);
        assert!(cfg.avoidance);
        assert!(cfg.starvation_handling);
        assert!(cfg.history_path.is_none());
        assert!(cfg.log_sync);
        assert_eq!(cfg.eviction_window, DEFAULT_EVICTION_WINDOW);
        assert!(
            !cfg.refuse_at_capacity,
            "default evicts, paper flag opts in"
        );
        assert_eq!(cfg.log_segment_records, DEFAULT_LOG_SEGMENT_RECORDS);
        assert!(cfg.lock_free_admission);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = Config::builder()
            .stack_depth(3)
            .detection(false)
            .avoidance(false)
            .starvation_handling(false)
            .history_path("/tmp/h.dimmu")
            .log_sync(false)
            .max_signatures(12)
            .event_log_capacity(128)
            .eviction_window(4)
            .refuse_at_capacity(true)
            .log_segment_records(64)
            .lock_free_admission(false)
            .build();
        assert_eq!(cfg.stack_depth, 3);
        assert!(cfg.is_disabled());
        assert_eq!(cfg.max_signatures, 12);
        assert_eq!(cfg.event_log_capacity, 128);
        assert!(cfg.history_path.is_some());
        assert!(!cfg.log_sync);
        assert_eq!(cfg.eviction_window, 4);
        assert!(cfg.refuse_at_capacity);
        assert_eq!(cfg.log_segment_records, 64);
        assert!(!cfg.lock_free_admission);
    }

    #[test]
    fn stack_depth_is_clamped_to_one() {
        let cfg = Config::builder().stack_depth(0).build();
        assert_eq!(cfg.stack_depth, 1);
    }

    #[test]
    fn disabled_config_is_pass_through() {
        assert!(Config::disabled().is_disabled());
        assert!(!Config::default().is_disabled());
    }
}
