//! The Dimmunix engine: detection + avoidance behind three hook points.
//!
//! The engine mirrors the structure of the paper's Dimmunix core (§4): the
//! substrate (a VM, or a set of wrapper lock types) calls
//! [`Dimmunix::request`] before a monitor acquisition, [`Dimmunix::acquired`]
//! right after the acquisition succeeds, and [`Dimmunix::released`] right
//! before the monitor is released. `request` answers with a
//! [`RequestOutcome`]: proceed, park on a signature's condition variable and
//! retry, or "a deadlock is happening right now" (the signature has already
//! been saved for the next run).
//!
//! The engine is deliberately single-threaded: the paper serializes the three
//! hooks with a global lock inside the VM, and the substrates here do the
//! same (`Mutex<Dimmunix>` in `dimmunix-rt`, naturally serialized execution in
//! `dalvik-sim`). Keeping the engine free of interior locking makes it
//! deterministic and property-testable.

use crate::admission::AdmissionSummary;
use crate::avoidance::SignatureIndex;
use crate::callstack::CallStack;
use crate::config::Config;
use crate::detection::{classify_cycle, last_history_hold};
use crate::error::{DimmunixError, Result};
use crate::events::{EventKind, EventLog};
use crate::history::{History, HistoryLog, RecoveryReport};
use crate::position::{PositionId, PositionTable};
use crate::rag::{AccessMode, Rag, YieldRecord};
use crate::signature::{Signature, SignatureKind, SignaturePair};
use crate::snapshot::HistorySnapshot;
use crate::stats::Stats;
use crate::{LockId, LogicalTime, OwnerId, SignatureId};
use std::collections::HashMap;
use std::sync::Arc;

/// The engine's answer to a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The thread may proceed to acquire the lock.
    Granted,
    /// The thread already owns the monitor; proceed (reentrant acquisition).
    GrantedReentrant,
    /// Granting now could instantiate the given history signature: the thread
    /// must wait (on the signature's condition variable, in the substrates)
    /// and then call `request` again.
    Yield {
        /// The signature whose instantiation is being avoided.
        signature: SignatureId,
    },
    /// A genuine deadlock cycle was detected; its signature has been added to
    /// the history (and persisted if a history path is configured). The
    /// caller decides whether to block anyway (paper-faithful: the phone
    /// freezes once) or to fail the acquisition.
    DeadlockDetected {
        /// The signature extracted from the cycle.
        signature: SignatureId,
        /// True if this is the first time the bug is observed.
        new_signature: bool,
        /// The owners (threads or tasks) participating in the cycle.
        owners: Vec<OwnerId>,
    },
}

impl RequestOutcome {
    /// True if the caller may proceed with the acquisition.
    pub fn is_granted(&self) -> bool {
        matches!(
            self,
            RequestOutcome::Granted | RequestOutcome::GrantedReentrant
        )
    }
}

/// A per-process Dimmunix instance.
///
/// ```
/// use dimmunix_core::{CallStack, Config, Dimmunix, Frame, LockId, OwnerId};
///
/// let mut dimmunix = Dimmunix::new(Config::default());
/// let t = OwnerId::thread(1);
/// let l = LockId::new(1);
/// let site = CallStack::single(Frame::new("worker", "app.rs", 42));
/// let outcome = dimmunix.request(t, l, &site);
/// assert!(outcome.is_granted());
/// dimmunix.acquired(t, l);
/// let _wake = dimmunix.released(t, l);
/// ```
#[derive(Debug, Clone)]
pub struct Dimmunix {
    config: Config,
    positions: PositionTable,
    rag: Rag,
    /// The shared, immutable history snapshot (signatures + canonical
    /// outer-position table + [`SignatureIndex`]). In a sharded deployment
    /// every shard holds a clone of the same `Arc`; a detection builds a new
    /// snapshot and swaps it into every shard ([`install_snapshot`]).
    ///
    /// [`install_snapshot`]: Dimmunix::install_snapshot
    snapshot: Arc<HistorySnapshot>,
    /// Sparse link from the snapshot's canonical outer ids to this engine's
    /// own interned positions (the reverse of [`Position::history_ref`]).
    /// Only outers whose stack this engine has actually interned appear, so
    /// the map stays empty on engines that never touch a history site.
    ///
    /// [`Position::history_ref`]: crate::Position::history_ref
    outer_to_local: HashMap<PositionId, PositionId>,
    /// Number of snapshot outer ids already linked against the local
    /// position table; ids past this watermark are reconciled by the next
    /// [`install_snapshot`](Dimmunix::install_snapshot).
    linked_outers: usize,
    stats: Stats,
    events: EventLog,
    clock: LogicalTime,
    pending_wakeups: Vec<SignatureId>,
    /// Shared lock-free admission summary and this engine's shard index,
    /// attached by concurrent substrates
    /// ([`attach_admission_summary`](Dimmunix::attach_admission_summary)).
    /// When present, the engine mirrors its yield-record bookkeeping and
    /// history installs into the summary as a side effect of its (locked)
    /// transitions. `None` for stand-alone engines — the summary holds
    /// atomics, so a cloned engine would share (and corrupt) its counts.
    admission: Option<(Arc<AdmissionSummary>, usize)>,
    /// Diagnostics of the history-log recovery performed at construction
    /// (`None` for engines built without replaying a log: no configured
    /// path, explicit starting history, or shard stamped from a shared
    /// snapshot).
    recovery: Option<RecoveryReport>,
}

impl Default for Dimmunix {
    fn default() -> Self {
        Dimmunix::new(Config::default())
    }
}

impl Dimmunix {
    /// Creates an engine with the given configuration. If the configuration
    /// names a history log, it is replayed — repairing a crash-partial tail
    /// record first — and a missing file is an empty history (a phone that
    /// has not deadlocked yet). A log that fails to replay (interior
    /// corruption) is quarantined to `<path>.corrupt` so new detections
    /// start a fresh, replayable log instead of appending behind records no
    /// restart can ever read; the engine then starts with an empty history,
    /// matching the old text-codec behaviour of a corrupt file.
    pub fn new(config: Config) -> Self {
        let (history, recovery) = match config.history_path.as_ref() {
            Some(path) => {
                let log = HistoryLog::new(path);
                match log.recover() {
                    Ok(replay) => {
                        let report = RecoveryReport {
                            replayed: replay.records,
                            truncated_tail: replay.truncated_tail,
                            ..RecoveryReport::default()
                        };
                        (replay.history, Some(report))
                    }
                    Err(_) => {
                        let quarantined_records = log.raw_record_count();
                        let quarantine_path = log.quarantine().ok();
                        let report = RecoveryReport {
                            replayed: 0,
                            truncated_tail: false,
                            quarantined_records,
                            quarantine_path,
                        };
                        (History::new(), Some(report))
                    }
                }
            }
            None => (History::new(), None),
        };
        let mut engine = Self::with_history(config, history);
        engine.recovery = recovery;
        engine
    }

    /// Creates an engine with an explicit starting history (e.g. antibodies
    /// shipped by a vendor, or synthetic signatures for benchmarking). The
    /// snapshot is bulk-built: outer stacks are interned first and the
    /// avoidance index is constructed in one pass at the end.
    pub fn with_history(config: Config, history: History) -> Self {
        let snapshot = HistorySnapshot::build(history, config.stack_depth);
        Self::with_snapshot(config, snapshot)
    }

    /// Creates an engine sharing an existing history snapshot. This is how
    /// the sharded engine and the `dimmunix-rt` runtime stamp out shards:
    /// one snapshot is built (or replayed from the log) once and every
    /// shard receives a clone of the same `Arc`, so the history,
    /// outer-position table, and index exist once per process.
    pub fn with_snapshot(config: Config, snapshot: Arc<HistorySnapshot>) -> Self {
        Dimmunix {
            positions: PositionTable::new(config.stack_depth),
            rag: Rag::new(),
            outer_to_local: HashMap::new(),
            // The local table is empty, so there is nothing to link yet;
            // new positions are linked as they are interned.
            linked_outers: snapshot.outer_len(),
            snapshot,
            stats: Stats::new(),
            events: EventLog::new(config.event_log_capacity),
            clock: LogicalTime::ZERO,
            pending_wakeups: Vec::new(),
            admission: None,
            recovery: None,
            config,
        }
    }

    /// Attaches the process-wide [`AdmissionSummary`] this engine keeps
    /// current (as shard `shard` of a sharded deployment; pass 0 for a
    /// monolithic engine). Absorbs the current snapshot's outer positions
    /// into the summary's Bloom set immediately, then incrementally on
    /// every later snapshot install.
    ///
    /// Cloning an engine with a summary attached shares the summary —
    /// intended for the runtime, which never clones its shard engines.
    pub fn attach_admission_summary(&mut self, summary: Arc<AdmissionSummary>, shard: usize) {
        summary.absorb_snapshot(&self.snapshot);
        self.admission = Some((summary, shard));
    }

    /// The attached admission summary, if any.
    pub fn admission_summary(&self) -> Option<&Arc<AdmissionSummary>> {
        self.admission.as_ref().map(|(s, _)| s)
    }

    /// Re-points this engine's position table at a shared process-wide
    /// stack interner, so every shard resolves a given truncated stack to
    /// one `Arc<CallStack>` allocation instead of a private copy per shard.
    /// See [`StackInterner`](crate::StackInterner).
    pub fn share_stack_interner(&mut self, interner: Arc<crate::StackInterner>) {
        self.positions.set_interner(interner);
    }

    /// Rewinds the engine to a fresh run over `base`, keeping interned
    /// positions and map capacities warm. This is the schedule explorer's
    /// hot-loop hook: a fuzzer drives hundreds of thousands of simulated
    /// runs through one engine, and rebuilding it from scratch each run
    /// (re-interning every site, re-growing every table) would dominate the
    /// schedules/sec budget.
    ///
    /// `base` must be an ancestor of the engine's current snapshot — the
    /// snapshot the engine was constructed with, or any snapshot it later
    /// returned from [`history_snapshot`](Dimmunix::history_snapshot).
    /// Ancestry is what makes the rewind sound: [`HistorySnapshot::append`]
    /// only ever *appends* to the canonical outer table, so every outer id
    /// below `base.outer_len()` still names the same stack and every link
    /// at or above it is a later addition to unlink.
    ///
    /// Everything run-scoped is cleared — RAG, position queues, stats,
    /// events, logical clock, pending wake-ups — while the position table
    /// itself survives, with `history_ref` links pruned back to `base`'s
    /// outer table.
    pub fn reset_to_snapshot(&mut self, base: &Arc<HistorySnapshot>) {
        debug_assert!(
            base.outer_len() <= self.snapshot.outer_len(),
            "reset target must be an ancestor snapshot"
        );
        if let Some((summary, shard)) = &self.admission {
            // The summary outlives the run being rewound: un-count each live
            // yield record individually (the Bloom set is set-only and stays;
            // stale bits only cost a conservative slow path).
            for (_, rec) in self.rag.yield_records() {
                summary.note_yield_cleared(rec, *shard);
            }
        }
        self.rag.clear();
        self.pending_wakeups.clear();
        self.stats = Stats::new();
        self.events = EventLog::new(self.config.event_log_capacity);
        self.clock = LogicalTime::ZERO;
        let cutoff = base.outer_len();
        for p in self.positions.iter_mut() {
            p.queue_mut().clear();
            if p.history_ref().is_some_and(|outer| outer.index() >= cutoff) {
                p.set_history_ref(None);
            }
        }
        self.outer_to_local
            .retain(|outer, _| outer.index() < cutoff);
        self.linked_outers = cutoff;
        self.snapshot = Arc::clone(base);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The engine configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The deadlock history (the process's antibodies), read from the
    /// shared snapshot.
    pub fn history(&self) -> &History {
        self.snapshot.history()
    }

    /// The shared history snapshot this engine currently reads. Engines in
    /// one sharded deployment return clones of the same `Arc`.
    pub fn history_snapshot(&self) -> &Arc<HistorySnapshot> {
        &self.snapshot
    }

    /// Activity counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Diagnostics of the history-log recovery performed when this engine
    /// was constructed by [`Dimmunix::new`] with a configured
    /// [`Config::history_path`]: how many records replayed, whether a
    /// crash-partial tail was repaired, and whether a corrupt log was
    /// quarantined. `None` when no log replay happened (no path configured,
    /// or the engine was built from an explicit history or shared
    /// snapshot). Lets operators distinguish "no antibodies yet" from
    /// "antibodies lost to corruption" instead of starting silently empty.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The interned position table.
    pub fn positions(&self) -> &PositionTable {
        &self.positions
    }

    /// The resource allocation graph.
    pub fn rag(&self) -> &Rag {
        &self.rag
    }

    /// The inverted avoidance index, read from the shared snapshot. Its
    /// keys are the snapshot's *canonical* outer-position ids (see
    /// [`HistorySnapshot::outer_table`]), which local positions link to via
    /// [`Position::history_ref`](crate::Position::history_ref).
    pub fn signature_index(&self) -> &SignatureIndex {
        self.snapshot.index()
    }

    /// The event log (empty unless enabled in the configuration).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Current logical time.
    pub fn now(&self) -> LogicalTime {
        self.clock
    }

    /// Estimated resident memory added by Dimmunix to the process, in bytes.
    /// This is what the Table 1 memory-overhead experiment charges to
    /// Dimmunix: the engine-local state
    /// ([`local_memory_footprint_bytes`](Dimmunix::local_memory_footprint_bytes))
    /// plus the shared history snapshot. In a sharded deployment the
    /// snapshot is shared, so per-process accounting must charge it once —
    /// sum the shards' *local* footprints and add the snapshot separately
    /// (as [`ShardedDimmunix::memory_footprint_bytes`] does).
    ///
    /// [`ShardedDimmunix::memory_footprint_bytes`]: crate::ShardedDimmunix::memory_footprint_bytes
    pub fn memory_footprint_bytes(&self) -> usize {
        self.local_memory_footprint_bytes() + self.snapshot.memory_footprint_bytes()
    }

    /// Estimated resident memory of the engine-local state only: positions
    /// and their queues, the RAG, and the outer-link map — everything
    /// *except* the shared history snapshot.
    pub fn local_memory_footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.positions.memory_footprint_bytes()
            + self.rag.memory_footprint_bytes()
            + self.outer_to_local.len() * 2 * std::mem::size_of::<PositionId>()
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers an owner — an OS thread or an async task (the analogue of
    /// `initNode` on Dalvik's `allocThread`, §4). Idempotent.
    pub fn register_owner(&mut self, t: impl Into<OwnerId>) {
        self.rag.register_owner(t.into());
    }

    /// Unregisters a terminated owner: any monitors it still owned are
    /// force-released and the corresponding position-queue entries removed.
    /// Returns the signatures whose parked owners should be woken as a
    /// result of those releases.
    pub fn unregister_owner(&mut self, t: impl Into<OwnerId>) -> Vec<SignatureId> {
        let t = t.into();
        self.clear_yield_tracked(t);
        let held = self.rag.unregister_owner(t);
        let mut wake = Vec::new();
        for entry in held {
            if let Some(p) = self.positions.get_mut(entry.pos) {
                p.queue_mut().remove_one(t);
            }
            self.extend_wakeups_for_position(entry.pos, &mut wake);
        }
        wake.sort_unstable_by_key(|s| s.index());
        wake.dedup();
        wake
    }

    /// Registers a lock (the analogue of inflating a thin lock into a fat
    /// monitor carrying a RAG node, §4). Idempotent.
    pub fn register_lock(&mut self, l: LockId) {
        self.rag.register_lock(l);
    }

    /// Unregisters a lock (monitor deflation / collection).
    pub fn unregister_lock(&mut self, l: LockId) {
        self.rag.unregister_lock(l);
    }

    /// Interns a call stack as a position without issuing a request; exposed
    /// so substrates can pre-compute position ids for static sites (§4's
    /// compiler-id optimization).
    pub fn intern_position(&mut self, stack: &CallStack) -> PositionId {
        self.intern_linked(stack)
    }

    /// Interns `stack` and, if the position is new, links it against the
    /// shared snapshot's canonical outer table. Every intern performed by
    /// the engine goes through here, which (together with
    /// [`install_snapshot`](Dimmunix::install_snapshot)) maintains the
    /// invariant that `Position::history_ref` is always current.
    fn intern_linked(&mut self, stack: &CallStack) -> PositionId {
        let before = self.positions.len();
        let pid = self.positions.intern(stack);
        if self.positions.len() > before {
            if let Some(outer) = self.snapshot.outer_of_stack(stack) {
                if let Some(p) = self.positions.get_mut(pid) {
                    p.set_history_ref(Some(outer));
                }
                self.outer_to_local.insert(outer, pid);
            }
        }
        pid
    }

    /// Adds a signature directly to the history (vendor-shipped antibodies or
    /// synthetic signatures for the §5 microbenchmark). Returns its id and
    /// whether it was new. At capacity the default configuration evicts
    /// generation-stale antibodies; under
    /// [`refuse_at_capacity`](crate::Config::refuse_at_capacity) a full
    /// history silently refuses — use
    /// [`try_add_signature`](Dimmunix::try_add_signature) to observe the
    /// refusal as a structured error.
    pub fn add_signature(&mut self, sig: Signature) -> (SignatureId, bool) {
        self.insert_signature(sig)
    }

    /// Fallible variant of [`add_signature`](Dimmunix::add_signature).
    ///
    /// # Errors
    /// Returns [`DimmunixError::HistoryFull`] when the history is at
    /// `max_signatures` and the configuration sets
    /// [`refuse_at_capacity`](crate::Config::refuse_at_capacity) (the
    /// paper-faithful refusal). The default configuration never errors: it
    /// evicts generation-stale antibodies instead, recording each
    /// retirement in [`Stats::signatures_evicted`](crate::Stats).
    pub fn try_add_signature(&mut self, sig: Signature) -> Result<(SignatureId, bool)> {
        self.try_insert_signature(sig)
    }

    // ------------------------------------------------------------------
    // The three hook points
    // ------------------------------------------------------------------

    /// Called before a monitor (exclusive) acquisition, with the acquiring
    /// call stack. The stack is truncated and interned; see
    /// [`request_at_mode`] for the behaviour.
    ///
    /// [`request_at_mode`]: Dimmunix::request_at_mode
    pub fn request(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        stack: &CallStack,
    ) -> RequestOutcome {
        self.request_mode(t, l, stack, AccessMode::Exclusive)
    }

    /// Called before an acquisition in the given access mode
    /// ([`AccessMode::Shared`] for the read side of an rwlock), with the
    /// acquiring call stack.
    pub fn request_mode(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        stack: &CallStack,
        mode: AccessMode,
    ) -> RequestOutcome {
        let pos = self.intern_linked(stack);
        self.request_at_mode(t, l, pos, mode)
    }

    /// [`request_at_mode`](Dimmunix::request_at_mode) with
    /// [`AccessMode::Exclusive`] — the monitor/mutex hook.
    pub fn request_at(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        pos: PositionId,
    ) -> RequestOutcome {
        self.request_at_mode(t, l, pos, AccessMode::Exclusive)
    }

    /// Called before an acquisition, with a pre-interned position and an
    /// access mode.
    ///
    /// Performs deadlock detection (RAG cycle search) and avoidance
    /// (signature-instantiation check) and answers with a
    /// [`RequestOutcome`]. When the outcome is [`RequestOutcome::Yield`] the
    /// caller must park the thread until the signature is notified (see
    /// [`released`]) and then call `request_at_mode` again — the paper's
    /// `do { … } while (sigId >= 0)` loop in `lockMonitor`.
    ///
    /// A [`AccessMode::Shared`] request conflicts only with exclusive
    /// owners: joining an existing reader crowd produces no wait-for edges,
    /// and the avoidance check treats shared co-holders of `l` as
    /// compatible rather than as instantiation blockers.
    ///
    /// [`released`]: Dimmunix::released
    pub fn request_at_mode(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        pos: PositionId,
        mode: AccessMode,
    ) -> RequestOutcome {
        let t = t.into();
        self.clock = self.clock.next();
        self.stats.requests += 1;
        self.events.push(
            self.clock,
            EventKind::Request {
                thread: t,
                lock: l,
                position: pos,
            },
        );

        if self.config.is_disabled() {
            self.stats.grants += 1;
            self.rag.register_owner(t);
            self.rag.register_lock(l);
            self.rag.set_pending_grant(t, l, pos, mode);
            return RequestOutcome::Granted;
        }

        // If the thread is retrying after a yield, it is no longer parked.
        self.clear_yield_tracked(t);

        // Reentrant fast path: a thread never deadlocks against itself on a
        // lock it already owns (in any mode — a read-to-write upgrade is a
        // self-deadlock the engine cannot rescue, exactly like
        // `std::sync::RwLock`).
        if self.rag.owns(l, t) {
            self.stats.reentrant_grants += 1;
            self.events
                .push(self.clock, EventKind::ReentrantGrant { thread: t, lock: l });
            return RequestOutcome::GrantedReentrant;
        }

        self.rag.set_request_mode(t, l, pos, mode);

        // --- Detection -------------------------------------------------
        if self.config.detection {
            let include_yields = self.config.starvation_handling;
            if let Some(steps) = self.rag.find_cycle_from(t, include_yields) {
                let detected = classify_cycle(&self.rag, &self.positions, &steps);
                let is_starvation = detected.involves_yield;
                let (sig_id, new) = self.insert_signature(detected.signature.clone());
                if is_starvation {
                    self.stats.starvations_detected += 1;
                    if new {
                        self.stats.new_starvation_signatures += 1;
                    }
                    self.events.push(
                        self.clock,
                        EventKind::StarvationDetected {
                            thread: t,
                            signature: sig_id,
                            new_signature: new,
                        },
                    );
                    // Resume every parked participant (§2.2): clear its yield
                    // and schedule a wake-up of its signature.
                    for th in &detected.owners {
                        if let Some(y) = self.clear_yield_tracked(*th) {
                            self.pending_wakeups.push(y.signature);
                            self.stats.wakeups += 1;
                            self.events.push(
                                self.clock,
                                EventKind::Wakeup {
                                    signature: y.signature,
                                },
                            );
                        }
                    }
                    // Fall through: the requester itself is then treated by
                    // the avoidance logic below.
                } else {
                    self.stats.deadlocks_detected += 1;
                    if new {
                        self.stats.new_deadlock_signatures += 1;
                    }
                    self.events.push(
                        self.clock,
                        EventKind::DeadlockDetected {
                            thread: t,
                            signature: sig_id,
                            new_signature: new,
                        },
                    );
                    return RequestOutcome::DeadlockDetected {
                        signature: sig_id,
                        new_signature: new,
                        owners: detected.owners,
                    };
                }
            }
        }

        // --- Avoidance ---------------------------------------------------
        if self.config.avoidance && !self.snapshot.is_empty() {
            self.stats.instantiation_checks += 1;
            // Hot path: positions no signature mentions carry no
            // `history_ref` link, so the check is one `Option` read —
            // O(signatures-at-this-position) otherwise, never O(|history|).
            // The linear `avoidance::find_instantiation` remains the
            // property-tested oracle.
            let outer = self.positions.get(pos).and_then(|p| p.history_ref());
            self.stats.signatures_examined +=
                outer.map_or(0, |o| self.snapshot.index().signatures_at(o).len() as u64);
            // Same implementation as the sharded engine's merged check,
            // called with this engine as the only shard.
            let inst = outer.and_then(|o| {
                crate::sharded::find_instantiation_merged(&[&*self], 0, t, o, l, mode)
            });
            if let Some(inst) = inst {
                let mut park = true;
                if self.config.starvation_handling && self.would_starve(t, &inst.blockers) {
                    // Parking would itself create a wait-for cycle: record
                    // the avoidance-induced deadlock and let the thread
                    // proceed instead (§2.2).
                    let sig = self.starvation_signature(t, pos, &inst.blockers);
                    let (s_id, new) = self.insert_signature(sig);
                    self.stats.starvations_detected += 1;
                    if new {
                        self.stats.new_starvation_signatures += 1;
                    }
                    self.events.push(
                        self.clock,
                        EventKind::StarvationDetected {
                            thread: t,
                            signature: s_id,
                            new_signature: new,
                        },
                    );
                    park = false;
                }
                if park {
                    self.stats.yields += 1;
                    self.set_yield_tracked(
                        t,
                        YieldRecord {
                            signature: inst.signature,
                            position: pos,
                            lock: l,
                            blockers: inst.blockers,
                        },
                    );
                    self.events.push(
                        self.clock,
                        EventKind::Yield {
                            thread: t,
                            lock: l,
                            signature: inst.signature,
                        },
                    );
                    return RequestOutcome::Yield {
                        signature: inst.signature,
                    };
                }
            }
        }

        // --- Grant --------------------------------------------------------
        self.stats.grants += 1;
        if let Some(p) = self.positions.get_mut(pos) {
            p.queue_mut().push(t);
        }
        self.rag.set_pending_grant(t, l, pos, mode);
        self.events
            .push(self.clock, EventKind::Grant { thread: t, lock: l });
        RequestOutcome::Granted
    }

    /// Called right after the monitor acquisition succeeded.
    pub fn acquired(&mut self, t: impl Into<OwnerId>, l: LockId) {
        let seq = self.rag.next_acquire_seq();
        self.acquired_with_seq(t, l, seq);
    }

    /// [`acquired`](Dimmunix::acquired) with an explicit acquisition sequence
    /// number, used by the sharded engine to stamp holds distributed over
    /// several shards from one global counter (see
    /// [`Rag::acquire_with_seq`]).
    pub fn acquired_with_seq(&mut self, t: impl Into<OwnerId>, l: LockId, seq: u64) {
        let t = t.into();
        self.clock = self.clock.next();
        self.stats.acquisitions += 1;
        if self.config.is_disabled() {
            return;
        }
        if self.rag.owns(l, t) {
            // Recursive re-entry: counted as an acquisition above, but its
            // matching exit never reaches `releases` (the RAG just decrements
            // the recursion depth), so track it for the balance identity
            // `acquisitions - nested_reentries == releases` at quiescence.
            self.stats.nested_reentries += 1;
            self.rag.acquire_recursive(t, l);
            self.events
                .push(self.clock, EventKind::Acquired { thread: t, lock: l });
            return;
        }
        // The access mode travels with the grant, so shared and exclusive
        // acquisitions flow through the same `acquired` hook.
        let (pos, mode) = match self.rag.pending_grant(t) {
            Some((granted_lock, p, m)) if granted_lock == l => (p, m),
            _ => {
                // The acquisition was not announced through `request` (or the
                // grant was for a different lock). Account it under an
                // anonymous position so release bookkeeping stays balanced.
                let p = self.intern_linked(&CallStack::new());
                if let Some(pd) = self.positions.get_mut(p) {
                    pd.queue_mut().push(t);
                }
                (p, AccessMode::Exclusive)
            }
        };
        self.rag.acquire_mode_with_seq(t, l, pos, mode, seq);
        self.events
            .push(self.clock, EventKind::Acquired { thread: t, lock: l });
    }

    /// Called right before the monitor is released (including the implicit
    /// release performed by `Object.wait()`). Returns the signatures whose
    /// parked threads must be woken because a lock acquired at one of their
    /// outer positions was just released (§4's release path).
    ///
    /// Allocates the returned vector; hot callers should prefer
    /// [`released_into`](Dimmunix::released_into) with a reused scratch
    /// buffer.
    pub fn released(&mut self, t: impl Into<OwnerId>, l: LockId) -> Vec<SignatureId> {
        let mut wake = Vec::new();
        self.released_into(t, l, &mut wake);
        wake
    }

    /// Allocation-free variant of [`released`](Dimmunix::released): clears
    /// `wake` and fills it with the signatures whose parked threads must be
    /// woken. Substrates keep one scratch buffer per engine (or per shard)
    /// so steady-state releases of in-history positions perform no
    /// allocation (the §4 release path runs on every monitor exit).
    pub fn released_into(&mut self, t: impl Into<OwnerId>, l: LockId, wake: &mut Vec<SignatureId>) {
        let t = t.into();
        wake.clear();
        self.clock = self.clock.next();
        if self.config.is_disabled() {
            self.stats.releases += 1;
            return;
        }
        let Some(pos) = self.rag.release(t, l) else {
            // Nested monitor exit, or a release the engine never saw the
            // acquisition of; nothing to wake.
            self.events
                .push(self.clock, EventKind::Released { thread: t, lock: l });
            return;
        };
        self.stats.releases += 1;
        // Reentrant balance identity: every top-level acquisition is matched
        // by at most one counted release (nested exits return `None` above),
        // so the outstanding-hold balance can never go negative. Holds
        // force-released by `unregister_owner` keep it positive.
        debug_assert!(
            self.stats.reentrant_balance() >= 0,
            "reentrant balance violated: {} acquisitions - {} re-entries < {} releases",
            self.stats.acquisitions,
            self.stats.nested_reentries,
            self.stats.releases
        );
        if let Some(p) = self.positions.get_mut(pos) {
            p.queue_mut().remove_one(t);
        }
        self.events
            .push(self.clock, EventKind::Released { thread: t, lock: l });
        self.extend_wakeups_for_position(pos, wake);
        for sig in wake.iter() {
            self.stats.wakeups += 1;
            self.events
                .push(self.clock, EventKind::Wakeup { signature: *sig });
        }
    }

    /// Abandons a granted-but-never-completed acquisition (e.g. the substrate
    /// timed out or the thread was interrupted between `request` and
    /// `acquired`). Reverses the queue entry created by the grant.
    pub fn cancel_request(&mut self, t: impl Into<OwnerId>, l: LockId) {
        let t = t.into();
        self.clock = self.clock.next();
        self.clear_yield_tracked(t);
        if let Some((granted_lock, pos, mode)) = self.rag.take_pending_grant(t) {
            if granted_lock == l {
                if let Some(p) = self.positions.get_mut(pos) {
                    p.queue_mut().remove_one(t);
                }
            } else {
                // The grant was for a different lock; keep it.
                self.rag.set_pending_grant(t, granted_lock, pos, mode);
            }
        }
        self.rag.clear_request(t);
    }

    /// Makes an acquisition the engine never saw visible: the runtime's
    /// lock-free admission path grants hold-free, clean-history
    /// acquisitions without consulting the engine, and publishes the hold
    /// through here the moment the owner takes a slow-path request (so by
    /// the time an owner holds two locks, every hold is engine-visible and
    /// detection sees the full wait-for relation). The hold already exists
    /// physically, so this is a forced request+grant+acquire — no detection
    /// or avoidance runs — stamped with the caller's global acquisition
    /// sequence number.
    pub fn publish_acquired(
        &mut self,
        t: impl Into<OwnerId>,
        l: LockId,
        stack: &CallStack,
        mode: AccessMode,
        seq: u64,
    ) {
        let t = t.into();
        let pos = self.intern_linked(stack);
        self.clock = self.clock.next();
        self.stats.requests += 1;
        self.events.push(
            self.clock,
            EventKind::Request {
                thread: t,
                lock: l,
                position: pos,
            },
        );
        self.stats.grants += 1;
        self.rag.register_owner(t);
        self.rag.register_lock(l);
        if !self.config.is_disabled() {
            if let Some(p) = self.positions.get_mut(pos) {
                p.queue_mut().push(t);
            }
        }
        self.rag.set_pending_grant(t, l, pos, mode);
        self.events
            .push(self.clock, EventKind::Grant { thread: t, lock: l });
        self.acquired_with_seq(t, l, seq);
    }

    /// Wake-ups scheduled outside the release path (starvation resolution).
    /// Substrates should drain these after every `request` call and notify
    /// the corresponding signature condition variables.
    pub fn take_pending_wakeups(&mut self) -> Vec<SignatureId> {
        std::mem::take(&mut self.pending_wakeups)
    }

    /// Rewrites the configured history log to exactly the in-memory
    /// history, atomically — the online compaction entry point. Normal
    /// operation never calls this: detections append single records to the
    /// log as they happen.
    ///
    /// # Errors
    /// Returns an error if no history path is configured or the write
    /// fails.
    pub fn save_history(&self) -> Result<()> {
        match self.log() {
            Some(log) => log.rewrite(self.snapshot.history()),
            None => Err(crate::error::DimmunixError::ProtocolViolation(
                "no history path configured".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Crate-internal surface for the sharded orchestrator (sharded.rs)
    // ------------------------------------------------------------------

    /// Mutable access to the RAG (cross-shard request orchestration).
    pub(crate) fn rag_mut(&mut self) -> &mut Rag {
        &mut self.rag
    }

    /// [`Rag::set_yield`] mirrored into the attached admission summary.
    /// All engine-internal and cross-shard yield bookkeeping must go
    /// through the tracked pair so the summary's blocker refcounts and park
    /// counts stay balanced. `Rag::set_yield` replaces an existing record
    /// without returning it, so the old record is tracked-cleared first.
    pub(crate) fn set_yield_tracked(&mut self, t: OwnerId, record: YieldRecord) {
        if let Some((summary, shard)) = &self.admission {
            if let Some(old) = self.rag.clear_yield(t) {
                summary.note_yield_cleared(&old, *shard);
            }
            summary.note_yield(&record, *shard);
        }
        self.rag.set_yield(t, record);
    }

    /// [`Rag::clear_yield`] mirrored into the attached admission summary.
    pub(crate) fn clear_yield_tracked(&mut self, t: OwnerId) -> Option<YieldRecord> {
        let taken = self.rag.clear_yield(t);
        if let (Some(rec), Some((summary, shard))) = (&taken, &self.admission) {
            summary.note_yield_cleared(rec, *shard);
        }
        taken
    }

    /// Mutable access to the position table (cross-shard orchestration).
    pub(crate) fn positions_mut(&mut self) -> &mut PositionTable {
        &mut self.positions
    }

    /// Mutable access to the counters (cross-shard orchestration).
    pub(crate) fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Advances the logical clock by one tick (one tick per hook call).
    pub(crate) fn tick(&mut self) {
        self.clock = self.clock.next();
    }

    /// Records an event at the current logical time.
    pub(crate) fn push_event(&mut self, kind: EventKind) {
        self.events.push(self.clock, kind);
    }

    /// Schedules a wake-up to be drained by [`take_pending_wakeups`].
    ///
    /// [`take_pending_wakeups`]: Dimmunix::take_pending_wakeups
    pub(crate) fn push_pending_wakeup(&mut self, sig: SignatureId) {
        self.pending_wakeups.push(sig);
    }

    /// Adopts a newer shared snapshot and reconciles the local position
    /// table with it: every canonical outer id added since the last
    /// reconciliation is looked up among the already-interned local
    /// positions and linked both ways. Newer positions link themselves at
    /// intern time ([`intern_linked`](Dimmunix::intern_linked)), so the
    /// `history_ref` invariant holds at all times. In a sharded deployment
    /// this runs on every shard, under the all-shard lock, right after a
    /// detection appended to the shared history.
    pub(crate) fn install_snapshot(&mut self, snapshot: Arc<HistorySnapshot>) {
        self.snapshot = snapshot;
        let outers = self.snapshot.outer_table();
        for idx in self.linked_outers..outers.len() {
            let outer = PositionId::new(idx as u32);
            let stack = outers.stack(outer).expect("id in range");
            if let Some(pid) = self.positions.lookup(stack) {
                if let Some(p) = self.positions.get_mut(pid) {
                    p.set_history_ref(Some(outer));
                }
                self.outer_to_local.insert(outer, pid);
            }
        }
        self.linked_outers = outers.len();
        if let Some((summary, _)) = &self.admission {
            // Incremental and idempotent: a broadcast install over N shards
            // scans the new outers once and skips N-1 times.
            summary.absorb_snapshot(&self.snapshot);
        }
    }

    /// The local position (if any) interned for the snapshot's canonical
    /// outer id — used by the cross-shard instantiation check to find this
    /// shard's queue slice for an outer slot.
    pub(crate) fn local_position_of_outer(&self, outer: PositionId) -> Option<PositionId> {
        self.outer_to_local.get(&outer).copied()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Handle on the configured append-only history log, if any.
    fn log(&self) -> Option<HistoryLog> {
        self.config.history_path.as_ref().map(|p| {
            HistoryLog::new(p)
                .with_sync(self.config.log_sync)
                .with_segment_records(self.config.log_segment_records)
        })
    }

    fn extend_wakeups_for_position(&self, pos: PositionId, wake: &mut Vec<SignatureId>) {
        let Some(outer) = self.positions.get(pos).and_then(|p| p.history_ref()) else {
            return;
        };
        // Same inverted index as the request path: the signatures whose outer
        // positions include the released acquisition's position.
        wake.extend_from_slice(self.snapshot.index().signatures_at(outer));
    }

    /// Appends `sig` to the shared history: builds the successor snapshot,
    /// appends one record to the history log (best-effort), and installs
    /// the new snapshot locally. In a sharded deployment, `sharded.rs`'s
    /// `broadcast_signature` calls this on one shard and installs the
    /// resulting snapshot on the others, so the log is appended exactly
    /// once per new signature.
    ///
    /// Infallible wrapper over [`try_add_signature`]: under the
    /// paper-faithful `refuse_at_capacity` flag a full history degrades to
    /// the historical refusal tuple (last live id, `false`) instead of an
    /// error.
    ///
    /// [`try_add_signature`]: Dimmunix::try_add_signature
    pub(crate) fn insert_signature(&mut self, sig: Signature) -> (SignatureId, bool) {
        match self.try_insert_signature(sig) {
            Ok(result) => result,
            Err(_) => (
                SignatureId::new(self.snapshot.history().total_slots().saturating_sub(1)),
                false,
            ),
        }
    }

    /// Fallible signature insertion. A duplicate of a live signature
    /// returns its existing id (and refreshes its eviction generation). At
    /// `max_signatures`, the default configuration retires
    /// generation-stale antibodies (never matched within
    /// `eviction_window` epochs) to make room — recorded in
    /// [`Stats::signatures_evicted`] — and tolerates a soft overflow when
    /// every live antibody is recent; with
    /// [`refuse_at_capacity`](crate::Config::refuse_at_capacity) set, it
    /// refuses instead with [`DimmunixError::HistoryFull`], the
    /// paper-faithful behaviour.
    ///
    /// # Errors
    /// [`DimmunixError::HistoryFull`] only, and only under
    /// `refuse_at_capacity`.
    pub(crate) fn try_insert_signature(&mut self, sig: Signature) -> Result<(SignatureId, bool)> {
        if let Some(existing) = self.snapshot.history().find(&sig) {
            self.snapshot.note_matched(existing);
            return Ok((existing, false));
        }
        if self.snapshot.len() >= self.config.max_signatures {
            if self.config.refuse_at_capacity {
                // Paper-faithful: old antibodies are proven bugs; new ones
                // can be re-learned on the next occurrence.
                self.stats.history_full_refusals += 1;
                return Err(DimmunixError::HistoryFull {
                    capacity: self.config.max_signatures,
                });
            }
            while self.snapshot.len() >= self.config.max_signatures {
                let Some(victim) = self
                    .snapshot
                    .eviction_candidate(self.config.eviction_window)
                else {
                    // Every live antibody matched within the window; evicting
                    // one would break eviction soundness, so overflow softly.
                    break;
                };
                let evicted = self.snapshot.evict(victim).expect("candidate is live");
                self.install_snapshot(evicted);
                self.stats.signatures_evicted += 1;
                // Owners parked on the retired signature must re-request:
                // the pattern they were held back from no longer exists.
                self.pending_wakeups.push(victim);
            }
        }
        let (snapshot, id, new) = self.snapshot.append(sig);
        debug_assert!(new, "duplicates returned early above");
        if new {
            if let Some(log) = self.log() {
                // Best-effort, like the paper's persistence: a failed write
                // costs re-learning the bug after the next occurrence, never
                // engine correctness.
                let _ = log.append(snapshot.history().get(id).expect("just appended"));
            }
            self.install_snapshot(snapshot);
        }
        Ok((id, new))
    }

    /// True if parking `t` (with the given blockers) would close a wait-for
    /// cycle, i.e. some blocker transitively waits on `t`.
    fn would_starve(&self, t: OwnerId, blockers: &[OwnerId]) -> bool {
        let mut stack: Vec<OwnerId> = blockers.to_vec();
        let mut visited: Vec<OwnerId> = Vec::new();
        while let Some(current) = stack.pop() {
            if current == t {
                return true;
            }
            if visited.contains(&current) {
                continue;
            }
            visited.push(current);
            for (next, _) in self.rag.successors(current, true) {
                stack.push(next);
            }
        }
        false
    }

    /// Builds the signature of an avoidance-induced deadlock: one pair per
    /// participant (the would-be parked thread plus its blockers), using the
    /// most informative stable position for each.
    fn starvation_signature(
        &self,
        _requester: OwnerId,
        pos: PositionId,
        blockers: &[OwnerId],
    ) -> Signature {
        let stack_of = |p: Option<PositionId>| {
            p.and_then(|p| self.positions.get(p))
                .map(|d| d.stack().clone())
                .unwrap_or_default()
        };
        let mut pairs = Vec::with_capacity(1 + blockers.len());
        pairs.push(SignaturePair::new(stack_of(Some(pos)), stack_of(Some(pos))));
        for b in blockers {
            let outer = last_history_hold(&self.rag, &self.positions, *b)
                .or_else(|| self.rag.held_locks(*b).last().map(|e| e.pos))
                .or_else(|| self.rag.requesting(*b).map(|(_, p)| p));
            let inner = self.rag.requesting(*b).map(|(_, p)| p).or(outer);
            pairs.push(SignaturePair::new(stack_of(outer), stack_of(inner)));
        }
        Signature::new(SignatureKind::Starvation, pairs)
    }
}
