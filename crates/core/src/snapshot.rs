//! The shared, immutable, epoch-versioned history snapshot.
//!
//! PR 2 sharded the engine by lock id but replicated the history (and its
//! [`SignatureIndex`]) into every shard, so memory grew with the shard
//! count. This module replaces the replicas with **one** shared snapshot:
//!
//! * A [`HistorySnapshot`] is immutable. It bundles the [`History`], a
//!   canonical interning table for the signatures' *outer* positions, and
//!   the inverted [`SignatureIndex`] over that canonical namespace.
//! * Every engine shard holds an `Arc<HistorySnapshot>`. Reading it on the
//!   request path is lock-free with respect to the other shards — no
//!   history lock exists, only the shard's own mutex that the substrate
//!   already holds.
//! * A detection builds a *new* snapshot ([`append`](HistorySnapshot::append)
//!   — copy, append, bump the epoch) and the `Arc` is swapped into every
//!   shard under the all-shard lock. Signature ids are globally consistent
//!   **by construction**: there is exactly one history, so there is nothing
//!   to keep in lockstep.
//!
//! The canonical outer-position namespace decouples the shared snapshot
//! from the per-shard [`PositionTable`]s (which own the thread queues and
//! are deliberately shard-local): each shard lazily links its own interned
//! positions to the canonical ids — at intern time for positions created
//! after the signature, and at snapshot-install time for positions that
//! already existed. See `Dimmunix::install_snapshot` in `engine.rs`.

use crate::avoidance::SignatureIndex;
use crate::callstack::{CallStack, SiteKey};
use crate::history::History;
use crate::position::PositionId;
use crate::pvec::{PersistentMap, PersistentVec};
use crate::signature::Signature;
use crate::SignatureId;
use std::sync::Arc;

/// Canonical interning table for signature *outer* stacks, owned by the
/// shared [`HistorySnapshot`].
///
/// This is the snapshot-side sibling of the engine's mutable
/// [`PositionTable`](crate::PositionTable): same id space semantics
/// (append-only ids, depth-truncated stacks), but with **no owner queues**
/// (queues are shard-local state) and persistent, structurally-shared
/// storage — cloning the table into the next snapshot is O(1), interning
/// one more stack path-copies O(log₃₂ n) nodes. Ids are stable under
/// [`HistorySnapshot::append`] (the table only grows), which is what lets
/// shards cache links across epochs.
#[derive(Debug, Clone)]
pub struct OuterTable {
    depth: usize,
    /// Interned stack per [`PositionId`], in id order.
    stacks: PersistentVec<Arc<CallStack>>,
    /// Reverse lookup: truncated stack -> its canonical id. The keys are
    /// the *same* `Arc`s as `stacks` (hash/eq see through the `Arc`), so
    /// each distinct outer stack is stored once, not twice.
    by_stack: PersistentMap<Arc<CallStack>, PositionId>,
    /// Stable-key lookup: the first canonical outer position interned with
    /// each [`SiteKey`]. Several stacks can share a key (keys normalize
    /// absolute lines away); first-wins matches the engine-side
    /// [`PositionTable`](crate::PositionTable) convention.
    by_key: PersistentMap<SiteKey, PositionId>,
}

impl OuterTable {
    /// Creates an empty table interning stacks truncated to `depth` frames
    /// (clamped to at least 1, like the engine's table).
    pub fn new(depth: usize) -> Self {
        OuterTable {
            depth: depth.max(1),
            stacks: PersistentVec::new(),
            by_stack: PersistentMap::new(),
            by_key: PersistentMap::new(),
        }
    }

    /// The interning depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of interned outer positions.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Interns `stack` (truncated to the table depth), returning its
    /// existing or freshly assigned canonical id.
    pub fn intern(&mut self, stack: &CallStack) -> PositionId {
        let key = stack.truncated(self.depth);
        if let Some(id) = self.by_stack.get(&key) {
            return *id;
        }
        let id = PositionId::new(self.stacks.len() as u32);
        let site_key = key.site_key();
        let shared = Arc::new(key);
        self.stacks = self.stacks.push(Arc::clone(&shared));
        self.by_stack = self.by_stack.insert(shared, id).0;
        if self.by_key.get(&site_key).is_none() {
            self.by_key = self.by_key.insert(site_key, id).0;
        }
        id
    }

    /// The canonical id of `stack` (truncated to the table depth), if
    /// interned.
    pub fn lookup(&self, stack: &CallStack) -> Option<PositionId> {
        self.by_stack.get(&stack.truncated(self.depth)).copied()
    }

    /// The first canonical outer position interned with the given stable
    /// site key, if any — the snapshot-side foreign-antibody screening
    /// query (same first-wins convention as
    /// [`PositionTable::lookup_by_key`](crate::PositionTable::lookup_by_key)).
    pub fn lookup_by_key(&self, key: SiteKey) -> Option<PositionId> {
        self.by_key.get(&key).copied()
    }

    /// The interned stack with the given id.
    pub fn stack(&self, id: PositionId) -> Option<&CallStack> {
        self.stacks.get(id.index()).map(|s| &**s)
    }

    /// Estimated resident memory of the table in bytes.
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for stack in self.stacks.iter() {
            // The reverse-lookup key is the same `Arc` as the id->stack
            // entry, so the stack bytes are charged once and the key side
            // only pays the extra `Arc` pointer.
            let frames: usize = stack
                .frames()
                .iter()
                .map(|f| std::mem::size_of_val(f) + f.method().len() + f.file().len())
                .sum();
            total += std::mem::size_of::<CallStack>() + frames;
            total += 2 * std::mem::size_of::<Arc<CallStack>>() + std::mem::size_of::<PositionId>();
        }
        total
    }
}

/// An immutable, epoch-versioned view of the deadlock history, shared by
/// every engine shard in a process.
///
/// ```
/// use dimmunix_core::{History, HistorySnapshot};
/// let snap = HistorySnapshot::build(History::new(), 1);
/// assert_eq!(snap.epoch(), 0);
/// assert!(snap.is_empty());
/// ```
#[derive(Debug)]
pub struct HistorySnapshot {
    /// Monotonic version: 0 for a bulk-built snapshot, +1 per appended
    /// signature. Observability only — correctness never compares epochs.
    epoch: u64,
    /// The signatures themselves (the process's antibodies).
    history: History,
    /// Canonical interning of the signatures' outer stacks. Its
    /// [`PositionId`]s are the *shared* coordinate system: shard-local
    /// position tables link into it, never the other way around. Ids are
    /// stable under [`append`](HistorySnapshot::append) (the table only
    /// grows — eviction retires signatures, never outer ids), which is what
    /// lets shards cache links across epochs.
    outers: OuterTable,
    /// Inverted avoidance index, keyed by canonical outer ids.
    index: SignatureIndex,
}

impl HistorySnapshot {
    /// Bulk-builds a snapshot from a complete history (engine start-up,
    /// vendor-shipped antibodies, synthetic benchmark histories).
    ///
    /// This is the deferred-index bulk-load path: every outer stack of every
    /// signature is interned first, and the inverted index is constructed in
    /// one pass at the end — instead of the signature-by-signature
    /// resolve-and-index loop the engine used to run on every restart.
    pub fn build(history: History, stack_depth: usize) -> Arc<Self> {
        let mut outers = OuterTable::new(stack_depth);
        let resolved: Vec<(SignatureId, Vec<PositionId>)> = history
            .iter()
            .map(|(id, sig)| (id, sig.outer_stacks().map(|o| outers.intern(o)).collect()))
            .collect();
        let mut index = SignatureIndex::new();
        for (id, outs) in resolved {
            index.insert(id, outs);
        }
        Arc::new(HistorySnapshot {
            epoch: 0,
            history,
            outers,
            index,
        })
    }

    /// Returns a snapshot extended by `sig`, together with the signature's
    /// id and whether it was new. A duplicate (same bug) returns the
    /// existing snapshot unchanged; a new signature yields a fresh snapshot
    /// with the epoch bumped. The current snapshot is never mutated —
    /// readers holding the old `Arc` keep a consistent view.
    pub fn append(self: &Arc<Self>, sig: Signature) -> (Arc<Self>, SignatureId, bool) {
        // All three fields are persistent (structurally shared): these
        // clones are O(1) and the mutations below path-copy O(log₃₂ n)
        // nodes, so appending is independent of the history size.
        let mut history = self.history.clone();
        let (id, added) = history.add(sig);
        if !added {
            // A re-detection of a known bug counts as a match for
            // generation-based eviction: the antibody is demonstrably
            // alive. The untouched clone is simply dropped.
            self.history.note_matched(id, self.epoch);
            return (Arc::clone(self), id, false);
        }
        let mut outers = self.outers.clone();
        let mut index = self.index.clone();
        let outs: Vec<PositionId> = history
            .get(id)
            .expect("just appended")
            .outer_stacks()
            .map(|o| outers.intern(o))
            .collect();
        index.insert(id, outs);
        let epoch = self.epoch + 1;
        // Birth counts as a match, so a freshly learned antibody cannot be
        // evicted before it has had a window's worth of epochs to matter.
        history.note_matched(id, epoch);
        (
            Arc::new(HistorySnapshot {
                epoch,
                history,
                outers,
                index,
            }),
            id,
            true,
        )
    }

    /// Records that `id` matched (was instantiated against or re-detected)
    /// at this snapshot's epoch. Interior-mutable and monotonic, so the
    /// avoidance hot path can call it straight on the shared `Arc`.
    pub fn note_matched(&self, id: SignatureId) {
        self.history.note_matched(id, self.epoch);
    }

    /// The epoch at which the live signature `id` last matched, if any.
    pub fn last_matched(&self, id: SignatureId) -> Option<u64> {
        self.history.last_matched(id)
    }

    /// The stalest live signature that has not matched within the last
    /// `window` epochs — the next generation-based eviction victim. Ties
    /// break toward the lowest id (the oldest antibody among equally stale
    /// ones). `None` when every live signature matched recently; callers
    /// must then tolerate a soft overflow rather than evict a hot antibody.
    pub fn eviction_candidate(&self, window: u64) -> Option<SignatureId> {
        self.history
            .activity_iter()
            .filter(|(_, last)| self.epoch.saturating_sub(*last) >= window)
            .min_by_key(|(id, last)| (*last, *id))
            .map(|(id, _)| id)
    }

    /// Returns a snapshot with `id` retired: the signature stops matching,
    /// its index entries are removed (leaving an id gap), and the epoch
    /// bumps. Outer ids are untouched — the canonical namespace only grows.
    /// Returns `None` if `id` is not live. The current snapshot is never
    /// mutated.
    pub fn evict(self: &Arc<Self>, id: SignatureId) -> Option<Arc<Self>> {
        if !self.history.is_live(id) {
            return None;
        }
        let mut history = self.history.clone();
        let mut index = self.index.clone();
        let retired = history.retire(id);
        debug_assert!(retired, "is_live() said the id was live");
        index.remove(id);
        Some(Arc::new(HistorySnapshot {
            epoch: self.epoch + 1,
            history,
            outers: self.outers.clone(),
            index,
        }))
    }

    /// The snapshot's version: 0 at bulk build, +1 per appended signature.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The signatures.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The inverted avoidance index (canonical outer id → signature ids).
    pub fn index(&self) -> &SignatureIndex {
        &self.index
    }

    /// The canonical outer-position table.
    pub fn outer_table(&self) -> &OuterTable {
        &self.outers
    }

    /// Number of canonical outer positions (distinct outer stacks).
    pub fn outer_len(&self) -> usize {
        self.outers.len()
    }

    /// The canonical id of an outer stack, if any signature mentions it.
    /// The stack is truncated to the snapshot's interning depth first.
    pub fn outer_of_stack(&self, stack: &CallStack) -> Option<PositionId> {
        self.outers.lookup(stack)
    }

    /// The canonical id of the first outer position with the given stable
    /// site key, if any signature mentions one — how antibody exchange
    /// re-anchors a foreign outer stack to this process's history.
    pub fn outer_of_key(&self, key: SiteKey) -> Option<PositionId> {
        self.outers.lookup_by_key(key)
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if the history holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Estimated resident memory of the snapshot in bytes. Because the
    /// snapshot is shared, memory-overhead accounting must charge this
    /// **once per process**, not once per shard.
    pub fn memory_footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.history.memory_footprint_bytes()
            + self.outers.memory_footprint_bytes()
            + self.index.memory_footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{SignatureKind, SignaturePair};
    use crate::Frame;

    fn sig(a: u32, b: u32) -> Signature {
        Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new("m1", "f.rs", a)),
                    CallStack::single(Frame::new("m2", "f.rs", a + 1)),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new("m3", "f.rs", b)),
                    CallStack::single(Frame::new("m4", "f.rs", b + 1)),
                ),
            ],
        )
    }

    #[test]
    fn build_indexes_every_outer_stack() {
        let mut h = History::new();
        h.add(sig(1, 2));
        h.add(sig(3, 4));
        let snap = HistorySnapshot::build(h, 1);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.outer_len(), 4);
        assert_eq!(snap.index().len(), 2);
        let outer = CallStack::single(Frame::new("m1", "f.rs", 1));
        let id = snap.outer_of_stack(&outer).expect("outer interned");
        assert_eq!(snap.index().signatures_at(id), &[SignatureId::new(0)]);
    }

    #[test]
    fn append_is_copy_on_write_and_bumps_epoch() {
        let base = HistorySnapshot::build(History::new(), 1);
        let (v1, id0, new0) = base.append(sig(1, 2));
        assert!(new0);
        assert_eq!(id0, SignatureId::new(0));
        assert_eq!(v1.epoch(), 1);
        // The old snapshot is untouched.
        assert!(base.is_empty());
        assert_eq!(base.epoch(), 0);
        // Duplicates return the same snapshot (no epoch churn).
        let (v1b, id0b, new0b) = v1.append(sig(1, 2));
        assert!(!new0b);
        assert_eq!(id0b, id0);
        assert!(Arc::ptr_eq(&v1, &v1b));
        // Canonical outer ids are stable across appends.
        let outer = CallStack::single(Frame::new("m1", "f.rs", 1));
        let before = v1.outer_of_stack(&outer).unwrap();
        let (v2, _, _) = v1.append(sig(7, 8));
        assert_eq!(v2.outer_of_stack(&outer), Some(before));
        assert_eq!(v2.epoch(), 2);
    }

    /// Outer positions are addressable by stable site key: the same outer
    /// stack rendered at shifted lines (a recompiled peer's signature)
    /// resolves to the canonical id even though the stacks differ.
    #[test]
    fn outer_keys_survive_line_shifts() {
        let mut h = History::new();
        h.add(sig(1, 2));
        let snap = HistorySnapshot::build(h, 1);
        let local = CallStack::single(Frame::new("m1", "f.rs", 1));
        let id = snap.outer_of_stack(&local).expect("interned");
        let shifted = CallStack::single(Frame::new("m1", "f.rs", 901));
        assert_eq!(snap.outer_of_stack(&shifted), None);
        assert_eq!(snap.outer_of_key(shifted.site_key()), Some(id));
        assert_eq!(snap.outer_of_key(SiteKey::new(42)), None);
        // Appends keep key lookups stable.
        let (v2, _, _) = snap.append(sig(7, 8));
        assert_eq!(v2.outer_of_key(shifted.site_key()), Some(id));
    }

    #[test]
    fn footprint_counts_history_outers_and_index() {
        let empty = HistorySnapshot::build(History::new(), 1);
        let mut h = History::new();
        for i in 0..32 {
            h.add(sig(i * 10, i * 10 + 5));
        }
        let full = HistorySnapshot::build(h, 1);
        assert!(full.memory_footprint_bytes() > empty.memory_footprint_bytes());
    }
}
