//! The shared, immutable, epoch-versioned history snapshot.
//!
//! PR 2 sharded the engine by lock id but replicated the history (and its
//! [`SignatureIndex`]) into every shard, so memory grew with the shard
//! count. This module replaces the replicas with **one** shared snapshot:
//!
//! * A [`HistorySnapshot`] is immutable. It bundles the [`History`], a
//!   canonical interning table for the signatures' *outer* positions, and
//!   the inverted [`SignatureIndex`] over that canonical namespace.
//! * Every engine shard holds an `Arc<HistorySnapshot>`. Reading it on the
//!   request path is lock-free with respect to the other shards — no
//!   history lock exists, only the shard's own mutex that the substrate
//!   already holds.
//! * A detection builds a *new* snapshot ([`append`](HistorySnapshot::append)
//!   — copy, append, bump the epoch) and the `Arc` is swapped into every
//!   shard under the all-shard lock. Signature ids are globally consistent
//!   **by construction**: there is exactly one history, so there is nothing
//!   to keep in lockstep.
//!
//! The canonical outer-position namespace decouples the shared snapshot
//! from the per-shard [`PositionTable`]s (which own the thread queues and
//! are deliberately shard-local): each shard lazily links its own interned
//! positions to the canonical ids — at intern time for positions created
//! after the signature, and at snapshot-install time for positions that
//! already existed. See `Dimmunix::install_snapshot` in `engine.rs`.

use crate::avoidance::SignatureIndex;
use crate::callstack::CallStack;
use crate::history::History;
use crate::position::{PositionId, PositionTable};
use crate::signature::Signature;
use crate::SignatureId;
use std::sync::Arc;

/// An immutable, epoch-versioned view of the deadlock history, shared by
/// every engine shard in a process.
///
/// ```
/// use dimmunix_core::{History, HistorySnapshot};
/// let snap = HistorySnapshot::build(History::new(), 1);
/// assert_eq!(snap.epoch(), 0);
/// assert!(snap.is_empty());
/// ```
#[derive(Debug)]
pub struct HistorySnapshot {
    /// Monotonic version: 0 for a bulk-built snapshot, +1 per appended
    /// signature. Observability only — correctness never compares epochs.
    epoch: u64,
    /// The signatures themselves (the process's antibodies).
    history: History,
    /// Canonical interning of the signatures' outer stacks. Its
    /// [`PositionId`]s are the *shared* coordinate system: shard-local
    /// position tables link into it, never the other way around. Ids are
    /// stable under [`append`](HistorySnapshot::append) (the table only
    /// grows), which is what lets shards cache links across epochs.
    outers: PositionTable,
    /// Inverted avoidance index, keyed by canonical outer ids.
    index: SignatureIndex,
}

impl HistorySnapshot {
    /// Bulk-builds a snapshot from a complete history (engine start-up,
    /// vendor-shipped antibodies, synthetic benchmark histories).
    ///
    /// This is the deferred-index bulk-load path: every outer stack of every
    /// signature is interned first, and the inverted index is constructed in
    /// one pass at the end — instead of the signature-by-signature
    /// resolve-and-index loop the engine used to run on every restart.
    pub fn build(history: History, stack_depth: usize) -> Arc<Self> {
        let mut outers = PositionTable::new(stack_depth);
        let resolved: Vec<Vec<PositionId>> = history
            .iter()
            .map(|(_, sig)| sig.outer_stacks().map(|o| outers.intern(o)).collect())
            .collect();
        let mut index = SignatureIndex::new();
        for (i, outs) in resolved.into_iter().enumerate() {
            index.insert(SignatureId::new(i), outs);
        }
        Arc::new(HistorySnapshot {
            epoch: 0,
            history,
            outers,
            index,
        })
    }

    /// Returns a snapshot extended by `sig`, together with the signature's
    /// id and whether it was new. A duplicate (same bug) returns the
    /// existing snapshot unchanged; a new signature yields a fresh snapshot
    /// with the epoch bumped. The current snapshot is never mutated —
    /// readers holding the old `Arc` keep a consistent view.
    pub fn append(self: &Arc<Self>, sig: Signature) -> (Arc<Self>, SignatureId, bool) {
        if let Some(existing) = self.history.find(&sig) {
            return (Arc::clone(self), existing, false);
        }
        let mut history = self.history.clone();
        let mut outers = self.outers.clone();
        let mut index = self.index.clone();
        let (id, added) = history.add(sig);
        debug_assert!(added, "find() said the signature was absent");
        let outs: Vec<PositionId> = history
            .get(id)
            .expect("just appended")
            .outer_stacks()
            .map(|o| outers.intern(o))
            .collect();
        index.insert(id, outs);
        (
            Arc::new(HistorySnapshot {
                epoch: self.epoch + 1,
                history,
                outers,
                index,
            }),
            id,
            true,
        )
    }

    /// The snapshot's version: 0 at bulk build, +1 per appended signature.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The signatures.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The inverted avoidance index (canonical outer id → signature ids).
    pub fn index(&self) -> &SignatureIndex {
        &self.index
    }

    /// The canonical outer-position table.
    pub fn outer_table(&self) -> &PositionTable {
        &self.outers
    }

    /// Number of canonical outer positions (distinct outer stacks).
    pub fn outer_len(&self) -> usize {
        self.outers.len()
    }

    /// The canonical id of an outer stack, if any signature mentions it.
    /// The stack is truncated to the snapshot's interning depth first.
    pub fn outer_of_stack(&self, stack: &CallStack) -> Option<PositionId> {
        self.outers.lookup(stack)
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if the history holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Estimated resident memory of the snapshot in bytes. Because the
    /// snapshot is shared, memory-overhead accounting must charge this
    /// **once per process**, not once per shard.
    pub fn memory_footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.history.memory_footprint_bytes()
            + self.outers.memory_footprint_bytes()
            + self.index.memory_footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{SignatureKind, SignaturePair};
    use crate::Frame;

    fn sig(a: u32, b: u32) -> Signature {
        Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new("m1", "f.rs", a)),
                    CallStack::single(Frame::new("m2", "f.rs", a + 1)),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new("m3", "f.rs", b)),
                    CallStack::single(Frame::new("m4", "f.rs", b + 1)),
                ),
            ],
        )
    }

    #[test]
    fn build_indexes_every_outer_stack() {
        let mut h = History::new();
        h.add(sig(1, 2));
        h.add(sig(3, 4));
        let snap = HistorySnapshot::build(h, 1);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.outer_len(), 4);
        assert_eq!(snap.index().len(), 2);
        let outer = CallStack::single(Frame::new("m1", "f.rs", 1));
        let id = snap.outer_of_stack(&outer).expect("outer interned");
        assert_eq!(snap.index().signatures_at(id), &[SignatureId::new(0)]);
    }

    #[test]
    fn append_is_copy_on_write_and_bumps_epoch() {
        let base = HistorySnapshot::build(History::new(), 1);
        let (v1, id0, new0) = base.append(sig(1, 2));
        assert!(new0);
        assert_eq!(id0, SignatureId::new(0));
        assert_eq!(v1.epoch(), 1);
        // The old snapshot is untouched.
        assert!(base.is_empty());
        assert_eq!(base.epoch(), 0);
        // Duplicates return the same snapshot (no epoch churn).
        let (v1b, id0b, new0b) = v1.append(sig(1, 2));
        assert!(!new0b);
        assert_eq!(id0b, id0);
        assert!(Arc::ptr_eq(&v1, &v1b));
        // Canonical outer ids are stable across appends.
        let outer = CallStack::single(Frame::new("m1", "f.rs", 1));
        let before = v1.outer_of_stack(&outer).unwrap();
        let (v2, _, _) = v1.append(sig(7, 8));
        assert_eq!(v2.outer_of_stack(&outer), Some(before));
        assert_eq!(v2.epoch(), 2);
    }

    #[test]
    fn footprint_counts_history_outers_and_index() {
        let empty = HistorySnapshot::build(History::new(), 1);
        let mut h = History::new();
        for i in 0..32 {
            h.add(sig(i * 10, i * 10 + 5));
        }
        let full = HistorySnapshot::build(h, 1);
        assert!(full.memory_footprint_bytes() > empty.memory_footprint_bytes());
    }
}
