//! Signature-instantiation checking — the avoidance module.
//!
//! §2.2: for a signature with outer call stacks `CS1 … CSn` to be
//! instantiated, there must exist *distinct* threads `t1 … tn` that hold, or
//! are allowed by Dimmunix to wait for, locks acquired at those call stacks.
//! Before approving a request, the engine "pretends" the requesting owner
//! already occupies its requesting position and asks whether any history
//! signature could then be instantiated; if so, the owner must yield.
//!
//! The functions in this module are pure with respect to the engine: they
//! only read the position table (which carries the per-position owner
//! queues) and the history, which makes the matching logic easy to unit-test
//! and property-test in isolation.
//!
//! ## Two implementations
//!
//! [`find_instantiation`] is the straightforward reference: it walks the
//! *entire* history on every request and re-resolves every outer stack
//! through [`PositionTable::lookup`]. That is O(|history| × arity) per
//! acquisition — fine for unit tests, unacceptable on the hot path of a
//! platform-wide deployment.
//!
//! Both implementations here are **mode-agnostic**: they reason about
//! position occupancy only. The engine's live check
//! (`sharded::find_instantiation_merged`, shared by the monolithic and
//! sharded request paths) layers access-mode awareness on top — for a
//! shared (rwlock-read) request it excludes candidate threads whose only
//! occupancy of a slot is their own shared hold of the requested lock
//! (crowd-mates cannot produce the mutual wait a signature predicts). For
//! exclusive requests the live check and these references coincide.
//!
//! [`SignatureIndex`] is what the engine actually uses: an inverted index
//! from interned [`PositionId`]s to the signatures whose outer positions
//! include them, with each signature's outer stacks resolved to position ids
//! *once*, at insertion time. A request then only examines the signatures
//! indexed at the requesting position — O(signatures-at-this-position), which
//! is zero for the overwhelming majority of positions (deadlock histories are
//! small and touch few sites). The index lives once per process inside the
//! shared [`HistorySnapshot`](crate::HistorySnapshot), keyed by the
//! snapshot's canonical outer-position ids; engine shards link their own
//! interned positions to those ids (`Position::history_ref`). The linear
//! reference is retained so equivalence can be property-checked
//! (`tests/proptests.rs`).

use crate::history::History;
use crate::position::{PositionId, PositionTable};
use crate::pvec::PersistentVec;
use crate::signature::Signature;
use crate::{OwnerId, SignatureId};
use std::sync::Arc;

/// Result of a successful instantiation check: the matched signature and the
/// *other* threads (blockers) that cover its remaining outer positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instantiation {
    /// The signature from the history that could be instantiated.
    pub signature: SignatureId,
    /// Threads other than the requester that cover outer positions.
    pub blockers: Vec<OwnerId>,
}

/// Checks whether approving `owner` at `position` would make any history
/// signature instantiable, pretending the owner already occupies that
/// position. Returns the first matching signature (lowest id — i.e. oldest
/// antibody) together with the blocking threads.
///
/// This is the **linear-scan reference implementation**: it examines every
/// signature in the history on every call. The engine's hot path uses
/// [`SignatureIndex::find_instantiation`] instead; this function is kept as
/// the oracle the indexed implementation is property-tested against.
pub fn find_instantiation(
    history: &History,
    positions: &PositionTable,
    owner: impl Into<OwnerId>,
    position: PositionId,
) -> Option<Instantiation> {
    let owner = owner.into();
    for (id, sig) in history.iter() {
        if let Some(blockers) = signature_instantiable(sig, positions, owner, position) {
            return Some(Instantiation {
                signature: id,
                blockers,
            });
        }
    }
    None
}

/// Inverted avoidance index: for each interned position, the history
/// signatures whose outer positions include it.
///
/// Maintained by the shared [`HistorySnapshot`](crate::HistorySnapshot) as
/// signatures enter the history (each outer stack is interned and resolved
/// exactly once, into the snapshot's canonical outer table); the
/// per-request check then touches only `signatures_at(position)` instead of
/// the whole history, and never calls [`PositionTable::lookup`] again.
///
/// Invariants:
/// * every per-position list is kept sorted ascending by id (sorted
///   insertion), so the "oldest antibody wins" tie-break of the linear scan
///   is preserved regardless of insertion or eviction order;
/// * `outer_positions_of(sig)` keeps one entry per signature pair
///   (duplicates included), mirroring the arity-sensitive matching of
///   [`signature_instantiable`];
/// * signature ids may be **sparse**: eviction retires ids without
///   renumbering ([`remove`](SignatureIndex::remove) leaves a gap), and
///   insertion tolerates arriving ids beyond the current end (intermediate
///   slots read as unindexed). [`compact`](SignatureIndex::compact) rebuilds
///   the per-position lists from the live entries.
///
/// Both internal tables are structurally-shared persistent vectors, so
/// cloning the index into the next [`HistorySnapshot`](crate::HistorySnapshot)
/// is O(1) and an insert/remove path-copies O(log₃₂ n) nodes.
#[derive(Debug, Clone, Default)]
pub struct SignatureIndex {
    /// PositionId index -> ids of signatures with that outer position.
    by_position: PersistentVec<Arc<Vec<SignatureId>>>,
    /// SignatureId index -> resolved outer positions (one per pair);
    /// `None` marks an id gap (never indexed, or evicted).
    outer_positions: PersistentVec<Option<Arc<Vec<PositionId>>>>,
    /// Number of indexed (live) signatures; `outer_positions` may be longer.
    live: usize,
}

impl SignatureIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed (live) signatures.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no signature is currently indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Indexes `sig` under its resolved outer positions. Ids may arrive in
    /// any order and with gaps (eviction retires ids without renumbering);
    /// re-inserting an already-indexed id is a no-op.
    pub fn insert(&mut self, sig: SignatureId, outer: Vec<PositionId>) {
        if matches!(self.outer_positions.get(sig.index()), Some(Some(_))) {
            return;
        }
        let mut seen = outer.clone();
        seen.sort_unstable();
        seen.dedup();
        for pid in seen {
            self.reserve_position(pid);
            let ids = self.by_position.get(pid.index()).expect("just reserved");
            let updated = match ids.binary_search(&sig) {
                Err(at) => {
                    let mut list = (**ids).clone();
                    list.insert(at, sig);
                    Some(list)
                }
                Ok(_) => None,
            };
            if let Some(list) = updated {
                self.by_position = self.by_position.set(pid.index(), Arc::new(list));
            }
        }
        while self.outer_positions.len() < sig.index() {
            self.outer_positions = self.outer_positions.push(None);
        }
        let entry = Some(Arc::new(outer));
        if sig.index() == self.outer_positions.len() {
            self.outer_positions = self.outer_positions.push(entry);
        } else {
            self.outer_positions = self.outer_positions.set(sig.index(), entry);
        }
        self.live += 1;
    }

    /// Grows `by_position` so `pid` has a (possibly empty) slot.
    fn reserve_position(&mut self, pid: PositionId) {
        while self.by_position.len() <= pid.index() {
            self.by_position = self.by_position.push(Arc::new(Vec::new()));
        }
    }

    /// Removes `sig` from the index (generation-based eviction), leaving an
    /// id gap: later inserts of higher ids are unaffected and lookups of the
    /// removed id read as unindexed. Returns whether the id was indexed.
    pub fn remove(&mut self, sig: SignatureId) -> bool {
        let Some(Some(outer)) = self.outer_positions.get(sig.index()) else {
            return false;
        };
        let mut seen: Vec<PositionId> = (**outer).clone();
        seen.sort_unstable();
        seen.dedup();
        for pid in seen {
            if let Some(ids) = self.by_position.get(pid.index()) {
                if let Ok(at) = ids.binary_search(&sig) {
                    let mut list = (**ids).clone();
                    list.remove(at);
                    self.by_position = self.by_position.set(pid.index(), Arc::new(list));
                }
            }
        }
        self.outer_positions = self.outer_positions.set(sig.index(), None);
        self.live -= 1;
        true
    }

    /// Rebuilds the per-position lists from the live entries, dropping the
    /// tombstoned per-position slots eviction leaves behind. Lookups after a
    /// compaction agree exactly with a freshly bulk-built index over the
    /// same live signatures (pinned by the gap-tolerance oracle proptest).
    pub fn compact(&mut self) {
        let positions = self
            .outer_positions
            .iter()
            .flatten()
            .flat_map(|outer| outer.iter())
            .map(|pid| pid.index() + 1)
            .max()
            .unwrap_or(0);
        let mut lists: Vec<Vec<SignatureId>> = vec![Vec::new(); positions];
        for (i, entry) in self.outer_positions.iter().enumerate() {
            let Some(outer) = entry else { continue };
            let sig = SignatureId::new(i);
            let mut seen: Vec<PositionId> = (**outer).clone();
            seen.sort_unstable();
            seen.dedup();
            for pid in seen {
                // Ascending i keeps each list sorted by construction.
                lists[pid.index()].push(sig);
            }
        }
        self.by_position = lists.into_iter().map(Arc::new).collect();
    }

    /// Signatures whose outer positions include `pos`, ascending by id.
    pub fn signatures_at(&self, pos: PositionId) -> &[SignatureId] {
        self.by_position
            .get(pos.index())
            .map(|ids| ids.as_slice())
            .unwrap_or(&[])
    }

    /// The resolved outer positions of `sig` (one per signature pair);
    /// empty for id gaps.
    pub fn outer_positions_of(&self, sig: SignatureId) -> &[PositionId] {
        match self.outer_positions.get(sig.index()) {
            Some(Some(pids)) => pids.as_slice(),
            _ => &[],
        }
    }

    /// Indexed equivalent of [`find_instantiation`]: only signatures whose
    /// outer positions include `position` are examined, and their outer
    /// stacks are never re-resolved.
    pub fn find_instantiation(
        &self,
        positions: &PositionTable,
        owner: impl Into<OwnerId>,
        position: PositionId,
    ) -> Option<Instantiation> {
        let owner = owner.into();
        for &sig in self.signatures_at(position) {
            let outer = self.outer_positions_of(sig);
            if let Some(blockers) = instantiable_at(outer, positions, owner, position) {
                return Some(Instantiation {
                    signature: sig,
                    blockers,
                });
            }
        }
        None
    }

    /// Estimated resident memory of the index in bytes.
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        total += self.by_position.len() * std::mem::size_of::<Arc<Vec<SignatureId>>>();
        for ids in self.by_position.iter() {
            total += ids.capacity() * std::mem::size_of::<SignatureId>();
        }
        total += self.outer_positions.len() * std::mem::size_of::<Option<Arc<Vec<PositionId>>>>();
        for pids in self.outer_positions.iter().flatten() {
            total += pids.capacity() * std::mem::size_of::<PositionId>();
        }
        total
    }
}

/// Checks a single signature. Returns the blockers (distinct threads other
/// than `owner` covering the remaining outer positions) if instantiation is
/// possible, `None` otherwise.
///
/// The requester's pretended `(owner, position)` must itself be part of the
/// instantiation: the request is only held back when *this* acquisition is
/// the one that would complete the pattern. Pre-existing instantiations that
/// do not involve the requester (e.g. the deadlocked threads of the very
/// first occurrence, still blocked in the RAG) never penalize unrelated
/// threads.
pub fn signature_instantiable(
    sig: &Signature,
    positions: &PositionTable,
    owner: impl Into<OwnerId>,
    position: PositionId,
) -> Option<Vec<OwnerId>> {
    let owner = owner.into();
    // Resolve each outer stack to an interned position. If an outer stack was
    // never interned, no owner can possibly occupy it, so the signature
    // cannot be instantiated at all.
    let mut outer_positions = Vec::with_capacity(sig.arity());
    for outer in sig.outer_stacks() {
        match positions.lookup(outer) {
            Some(pid) => outer_positions.push(pid),
            None => return None,
        }
    }
    instantiable_at(&outer_positions, positions, owner, position)
}

/// Core of the instantiation check, on already-resolved outer positions:
/// searches for an injective assignment of distinct threads to the outer
/// positions with the requester pre-assigned to `position`.
fn instantiable_at(
    outer_positions: &[PositionId],
    positions: &PositionTable,
    owner: OwnerId,
    position: PositionId,
) -> Option<Vec<OwnerId>> {
    // The requesting position must occur among the signature's outer
    // positions, otherwise this acquisition cannot complete an instantiation.
    if !outer_positions.contains(&position) {
        return None;
    }

    // Candidate threads per outer position: the threads in that position's
    // queue (they hold or were allowed to acquire locks there). The
    // requester's own slot is pre-assigned below.
    let candidates: Vec<Vec<OwnerId>> = outer_positions
        .iter()
        .map(|pid| {
            positions
                .get(*pid)
                .map(|p| p.queue().distinct_owners())
                .unwrap_or_default()
        })
        .collect();

    instantiable_with_candidates(outer_positions, &candidates, owner, position)
}

/// Instantiation search on pre-computed per-slot candidate threads.
///
/// `candidates[k]` must be the sorted, de-duplicated set of threads covering
/// `outer_positions[k]`. The sharded engine computes these sets as the union
/// of every shard's local queue at that slot (queue entries are distributed
/// across shards, one sub-queue per shard that granted a lock there), which
/// makes this search — pre-assigning the requester to each occurrence of its
/// position, then looking for an injective assignment of distinct threads to
/// the remaining slots — identical to the monolithic engine's.
pub(crate) fn instantiable_with_candidates(
    outer_positions: &[PositionId],
    candidates: &[Vec<OwnerId>],
    owner: OwnerId,
    position: PositionId,
) -> Option<Vec<OwnerId>> {
    for (slot, pid) in outer_positions.iter().enumerate() {
        if *pid != position {
            continue;
        }
        if let Some(assignment) = assign(candidates, owner, slot) {
            let mut blockers: Vec<OwnerId> = assignment
                .into_iter()
                .flatten()
                .filter(|x| *x != owner)
                .collect();
            blockers.sort_unstable();
            blockers.dedup();
            return Some(blockers);
        }
    }
    None
}

/// Finds an injective assignment of distinct owners to every slot, with the
/// requester `owner` pre-assigned to slot `pre_slot`, or `None` if no such
/// assignment exists.
///
/// This is bipartite maximum matching (Kuhn's augmenting-path algorithm),
/// polynomial in slots × candidate-list entries. Naive backtracking is
/// factorial precisely on *failing* searches — a high-arity starvation
/// signature with one uncoverable slot would make every avoidance check at
/// a popular position explore every permutation of its candidate crowd
/// before concluding "no instantiation".
fn assign(
    candidates: &[Vec<OwnerId>],
    owner: OwnerId,
    pre_slot: usize,
) -> Option<Vec<Option<OwnerId>>> {
    // Index the candidate owners; the requester is excluded outright (it
    // is fixed to `pre_slot` and cannot cover another slot).
    let mut owners: Vec<OwnerId> = candidates
        .iter()
        .flatten()
        .copied()
        .filter(|c| *c != owner)
        .collect();
    owners.sort_unstable();
    owners.dedup();
    // matched_slot[k]: the slot owner k currently covers, if any.
    let mut matched_slot: Vec<Option<usize>> = vec![None; owners.len()];
    for slot in 0..candidates.len() {
        if slot == pre_slot {
            continue;
        }
        let mut visited = vec![false; owners.len()];
        if !augment(
            candidates,
            &owners,
            slot,
            pre_slot,
            &mut visited,
            &mut matched_slot,
        ) {
            return None;
        }
    }
    let mut assignment: Vec<Option<OwnerId>> = vec![None; candidates.len()];
    assignment[pre_slot] = Some(owner);
    for (k, slot) in matched_slot.into_iter().enumerate() {
        if let Some(slot) = slot {
            assignment[slot] = Some(owners[k]);
        }
    }
    Some(assignment)
}

/// Tries to cover `slot` with one of its candidates, re-routing owners
/// already matched elsewhere along an augmenting path.
fn augment(
    candidates: &[Vec<OwnerId>],
    owners: &[OwnerId],
    slot: usize,
    pre_slot: usize,
    visited: &mut [bool],
    matched_slot: &mut [Option<usize>],
) -> bool {
    for cand in &candidates[slot] {
        let Ok(k) = owners.binary_search(cand) else {
            continue; // the requester, excluded from the owner index
        };
        if visited[k] {
            continue;
        }
        visited[k] = true;
        let free = match matched_slot[k] {
            None => true,
            Some(other) => {
                other != pre_slot
                    && augment(candidates, owners, other, pre_slot, visited, matched_slot)
            }
        };
        if free {
            matched_slot[k] = Some(slot);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callstack::{CallStack, Frame};
    use crate::signature::{SignatureKind, SignaturePair};

    fn stack(tag: u32) -> CallStack {
        CallStack::single(Frame::new(format!("m{tag}"), "f.rs", tag))
    }

    fn owner(i: u64) -> OwnerId {
        OwnerId::thread(i)
    }

    fn two_pos_signature(a: u32, b: u32) -> Signature {
        Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(stack(a), stack(100 + a)),
                SignaturePair::new(stack(b), stack(100 + b)),
            ],
        )
    }

    fn setup() -> (History, PositionTable) {
        let mut history = History::new();
        history.add(two_pos_signature(1, 2));
        let mut positions = PositionTable::new(1);
        positions.intern(&stack(1));
        positions.intern(&stack(2));
        (history, positions)
    }

    #[test]
    fn empty_queues_mean_no_instantiation() {
        let (history, positions) = setup();
        let p1 = positions.lookup(&stack(1)).unwrap();
        assert!(find_instantiation(&history, &positions, owner(1), p1).is_none());
    }

    #[test]
    fn pretend_plus_occupied_queue_instantiates() {
        let (history, mut positions) = setup();
        let p1 = positions.lookup(&stack(1)).unwrap();
        let p2 = positions.lookup(&stack(2)).unwrap();
        // Thread 7 holds a lock acquired at position 1.
        positions.get_mut(p1).unwrap().queue_mut().push(owner(7));
        // Thread 8 now requests at position 2: instantiation possible.
        let inst = find_instantiation(&history, &positions, owner(8), p2).expect("match");
        assert_eq!(inst.signature, SignatureId::new(0));
        assert_eq!(inst.blockers, vec![owner(7)]);
    }

    #[test]
    fn same_thread_cannot_cover_both_positions_via_pretend() {
        let (history, mut positions) = setup();
        let p1 = positions.lookup(&stack(1)).unwrap();
        let p2 = positions.lookup(&stack(2)).unwrap();
        // Thread 7 already occupies position 1 and now requests position 2:
        // instantiation needs two distinct threads, so this must not match.
        positions.get_mut(p1).unwrap().queue_mut().push(owner(7));
        assert!(find_instantiation(&history, &positions, owner(7), p2).is_none());
    }

    #[test]
    fn duplicate_outer_positions_require_two_distinct_owners() {
        let mut history = History::new();
        // Both deadlocked threads acquired their lock at the same location
        // (self-deadlock pattern through a shared helper).
        history.add(Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(stack(5), stack(105)),
                SignaturePair::new(stack(5), stack(106)),
            ],
        ));
        let mut positions = PositionTable::new(1);
        let p5 = positions.intern(&stack(5));
        // Only the requester occupies p5 -> not instantiable.
        assert!(find_instantiation(&history, &positions, owner(1), p5).is_none());
        // A second, distinct owner occupies p5 -> instantiable.
        positions.get_mut(p5).unwrap().queue_mut().push(owner(2));
        let inst = find_instantiation(&history, &positions, owner(1), p5).expect("match");
        assert_eq!(inst.blockers, vec![owner(2)]);
    }

    #[test]
    fn unknown_outer_stack_disables_signature() {
        let (mut history, positions) = setup();
        // Add a signature whose outer stacks were never interned.
        history.add(two_pos_signature(50, 51));
        let p1 = positions.lookup(&stack(1)).unwrap();
        assert!(find_instantiation(&history, &positions, owner(3), p1).is_none());
    }

    #[test]
    fn oldest_matching_signature_wins() {
        let mut history = History::new();
        history.add(two_pos_signature(1, 2));
        history.add(two_pos_signature(1, 3));
        let mut positions = PositionTable::new(1);
        let p1 = positions.intern(&stack(1));
        let p2 = positions.intern(&stack(2));
        let p3 = positions.intern(&stack(3));
        positions.get_mut(p2).unwrap().queue_mut().push(owner(9));
        positions.get_mut(p3).unwrap().queue_mut().push(owner(9));
        let _ = p1;
        let inst = find_instantiation(&history, &positions, owner(4), p1).expect("match");
        assert_eq!(inst.signature, SignatureId::new(0));
    }

    /// Builds an index the way the engine does: intern every outer stack and
    /// insert the signature under the resolved ids.
    fn build_index(history: &History, positions: &mut PositionTable) -> SignatureIndex {
        let mut idx = SignatureIndex::new();
        for (id, sig) in history.iter() {
            let outer: Vec<_> = sig.outer_stacks().map(|o| positions.intern(o)).collect();
            idx.insert(id, outer);
        }
        idx
    }

    #[test]
    fn index_agrees_with_linear_scan_on_basic_scenarios() {
        let (history, mut positions) = setup();
        let idx = build_index(&history, &mut positions);
        let p1 = positions.lookup(&stack(1)).unwrap();
        let p2 = positions.lookup(&stack(2)).unwrap();
        // Empty queues: both report no instantiation.
        for (t, p) in [(1u64, p1), (2, p2)] {
            let owner = owner(t);
            assert_eq!(
                idx.find_instantiation(&positions, owner, p),
                find_instantiation(&history, &positions, owner, p)
            );
        }
        // Occupied queue: both report the same signature and blockers.
        positions.get_mut(p1).unwrap().queue_mut().push(owner(7));
        let linear = find_instantiation(&history, &positions, owner(8), p2);
        let indexed = idx.find_instantiation(&positions, owner(8), p2);
        assert!(linear.is_some());
        assert_eq!(indexed, linear);
    }

    #[test]
    fn index_only_examines_signatures_at_the_position() {
        let mut history = History::new();
        history.add(two_pos_signature(1, 2));
        history.add(two_pos_signature(3, 4));
        history.add(two_pos_signature(5, 6));
        let mut positions = PositionTable::new(1);
        let idx = build_index(&history, &mut positions);
        let unrelated = positions.intern(&stack(99));
        assert!(idx.signatures_at(unrelated).is_empty());
        let p3 = positions.lookup(&stack(3)).unwrap();
        assert_eq!(idx.signatures_at(p3), &[SignatureId::new(1)]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.outer_positions_of(SignatureId::new(1)).len(), 2);
    }

    #[test]
    fn index_preserves_oldest_antibody_tie_break() {
        let mut history = History::new();
        history.add(two_pos_signature(1, 2));
        history.add(two_pos_signature(1, 3));
        let mut positions = PositionTable::new(1);
        let idx = build_index(&history, &mut positions);
        let p1 = positions.lookup(&stack(1)).unwrap();
        let p2 = positions.lookup(&stack(2)).unwrap();
        let p3 = positions.lookup(&stack(3)).unwrap();
        // Both signatures are instantiable from p1; the older must win, as in
        // the linear scan.
        assert_eq!(
            idx.signatures_at(p1),
            &[SignatureId::new(0), SignatureId::new(1)]
        );
        for (p, t) in [(p2, 9u64), (p3, 9)] {
            positions.get_mut(p).unwrap().queue_mut().push(owner(t));
        }
        let inst = idx
            .find_instantiation(&positions, owner(4), p1)
            .expect("match");
        assert_eq!(inst.signature, SignatureId::new(0));
        assert_eq!(
            Some(inst),
            find_instantiation(&history, &positions, owner(4), p1)
        );
    }

    #[test]
    fn index_reinsertion_is_idempotent() {
        let mut idx = SignatureIndex::new();
        let pid = PositionId::new(0);
        idx.insert(SignatureId::new(0), vec![pid, pid]);
        idx.insert(SignatureId::new(0), vec![pid]);
        assert_eq!(idx.len(), 1);
        // Duplicate outer positions index the signature once but keep both
        // slots in the arity-sensitive outer list.
        assert_eq!(idx.signatures_at(pid), &[SignatureId::new(0)]);
        assert_eq!(idx.outer_positions_of(SignatureId::new(0)).len(), 2);
        assert!(idx.memory_footprint_bytes() > 0);
    }

    #[test]
    fn three_way_signature_matching() {
        let mut history = History::new();
        history.add(Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(stack(1), stack(101)),
                SignaturePair::new(stack(2), stack(102)),
                SignaturePair::new(stack(3), stack(103)),
            ],
        ));
        let mut positions = PositionTable::new(1);
        let p1 = positions.intern(&stack(1));
        let p2 = positions.intern(&stack(2));
        let p3 = positions.intern(&stack(3));
        positions.get_mut(p1).unwrap().queue_mut().push(owner(11));
        positions.get_mut(p2).unwrap().queue_mut().push(owner(12));
        // Only two of three covered -> no instantiation.
        assert!(find_instantiation(&history, &positions, owner(11), p1).is_none());
        // Third position covered by the requester -> instantiation.
        let inst = find_instantiation(&history, &positions, owner(13), p3).expect("match");
        assert_eq!(inst.blockers, vec![owner(11), owner(12)]);
    }
}
