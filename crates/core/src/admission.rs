//! Lock-free admission summary.
//!
//! The sharded engine's fast path still serializes every acquisition on the
//! home-shard mutex, and one avoidance park degrades *every* request in the
//! process to the ordered all-shard path. This module is the atomic summary
//! that lets the runtime admit the overwhelmingly common case — a thread
//! holding nothing, acquiring at a position no signature mentions, with no
//! parked owner naming it as a blocker — with **zero shard locks**: a
//! seqlock-style epoch read over a few cache lines.
//!
//! ## What the summary may prove
//!
//! An [`AdmissionSummary`] conservatively over-approximates two facts about
//! the engine state:
//!
//! - **"this site is in no signature"** — a Bloom bitset over the
//!   [`SiteKey`]s of every outer position the history has ever contained.
//!   Bits are only ever set (never cleared), so a *clear* probe proves the
//!   site never appeared in any signature: the avoidance check at this
//!   position is vacuous, and a grant here cannot occupy a slot another
//!   thread's instantiation check would look at.
//! - **"no parked owner waits on me"** — striped reference counts over the
//!   blocker lists of all live yield records. A zero stripe proves no yield
//!   edge points at this owner. Combined with the caller's guarantee that
//!   it holds no lock (so no request edge points at it either), the owner
//!   has **no in-edge in the wait-for relation**, and no deadlock cycle can
//!   run through it — granting is exactly what the monolithic oracle would
//!   decide.
//!
//! The converse direction is *not* proven: a set Bloom bit or a non-zero
//! stripe may be a collision or a stale blocker snapshot. Any doubt routes
//! the request to the locked engine path, which remains the
//! property-tested oracle.
//!
//! ## What the summary may NOT prove
//!
//! A fast-admitted hold is **invisible to the engine** until the owner's
//! next slow-path request publishes it (see the runtime's
//! publish-on-slow-path). If a signature naming the admitted site is
//! inserted *after* the epoch-validated read, the in-section owner does not
//! occupy the new signature's avoidance slot, so another thread may be
//! admitted where strict slot accounting would have parked it. This is
//! fail-safe, not unsound: avoidance in Dimmunix is best-effort by design
//! (the paper's own avoidance races with detection), and the detection
//! backstop still fires on the real cycle because every multi-hold owner is
//! fully published before its closing request. The seqlock epoch narrows
//! the window to installs that overlap the read itself.
//!
//! ## Memory ordering
//!
//! Writers (history installs absorbing new outer positions into the Bloom
//! set) run under the engine's all-shard lock order, so there is at most
//! one writer at a time; the epoch is bumped to odd before mutating and
//! back to even after (`AcqRel`), and readers reject any read that saw an
//! odd epoch or different epochs before/after. Yield-record bookkeeping
//! (blocker stripes, park counts) is *not* epoch-fenced: each component
//! read is individually conservative — stripe increments only happen for
//! owners that hold or occupy something (never a fast-path candidate), and
//! a stale decrement can only send the reader to the slow path. All data
//! loads use `Acquire`, all stores `Release`, so a reader that observes the
//! second (even, equal) epoch load also observes every Bloom bit the
//! writer published before it.

use crate::callstack::SiteKey;
use crate::rag::YieldRecord;
use crate::sharded::MAX_SHARDS;
use crate::snapshot::HistorySnapshot;
use crate::OwnerId;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of 64-bit words in the Bloom bitset (4096 bits).
const BLOOM_WORDS: usize = 64;
const BLOOM_BITS: u64 = (BLOOM_WORDS * 64) as u64;
/// Number of blocker reference-count stripes.
const BLOCKER_STRIPES: usize = 256;

/// Outcome of a lock-free admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The epoch-validated read proved the request irrelevant to every
    /// signature and every parked owner: acquire without consulting the
    /// engine. `degraded` is true when the admission succeeded while some
    /// owner was parked elsewhere in the process — the scoped-degradation
    /// win the global `parked` flag used to forfeit.
    Admit {
        /// True if some owner was parked somewhere at admission time.
        degraded: bool,
    },
    /// Doubt (Bloom hit, blocker stripe hit, or a racing history install):
    /// take the locked engine path.
    Fallback,
}

/// Process-wide atomic summary backing the lock-free admission path.
///
/// One instance is shared by every shard engine of a runtime (attached via
/// [`Dimmunix::attach_admission_summary`]); the engines keep it current as
/// a side effect of their (locked) state transitions, and the runtime reads
/// it without locks. See the module docs for the exact guarantees.
///
/// [`Dimmunix::attach_admission_summary`]: crate::engine::Dimmunix::attach_admission_summary
pub struct AdmissionSummary {
    /// Seqlock epoch: odd while a history install is being absorbed.
    epoch: AtomicU64,
    /// Set-only Bloom bitset over the site keys of all history outer
    /// positions, past and present.
    bloom: [AtomicU64; BLOOM_WORDS],
    /// Striped refcounts of owners named in live yield records' blockers.
    blockers: [AtomicU32; BLOCKER_STRIPES],
    /// Owners currently parked by avoidance, per shard.
    parked_per_shard: [AtomicU32; MAX_SHARDS],
    /// Owners currently parked by avoidance, process-wide.
    parked_total: AtomicU64,
    /// Outer-table prefix already folded into the Bloom set (outer ids are
    /// append-only, so absorption is incremental and idempotent).
    absorbed_outers: AtomicU64,
    // Metric counters (see `Stats` for their rendered form).
    fast_admits: AtomicU64,
    slow_fallbacks: AtomicU64,
    degradation_scope_hits: AtomicU64,
    fast_acquires: AtomicU64,
    fast_releases: AtomicU64,
    fast_cancels: AtomicU64,
    published: AtomicU64,
}

impl Default for AdmissionSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl AdmissionSummary {
    /// Creates an empty summary (empty Bloom set, no parked owners).
    pub fn new() -> Self {
        AdmissionSummary {
            epoch: AtomicU64::new(0),
            bloom: std::array::from_fn(|_| AtomicU64::new(0)),
            blockers: std::array::from_fn(|_| AtomicU32::new(0)),
            parked_per_shard: std::array::from_fn(|_| AtomicU32::new(0)),
            parked_total: AtomicU64::new(0),
            absorbed_outers: AtomicU64::new(0),
            fast_admits: AtomicU64::new(0),
            slow_fallbacks: AtomicU64::new(0),
            degradation_scope_hits: AtomicU64::new(0),
            fast_acquires: AtomicU64::new(0),
            fast_releases: AtomicU64::new(0),
            fast_cancels: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    fn bloom_slots(key: SiteKey) -> [(usize, u64); 2] {
        // Two probes derived from the (already well-mixed FNV) site key:
        // the key itself and a Fibonacci remix of it.
        let h1 = key.raw();
        let h2 = key
            .raw()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(32);
        [h1, h2].map(|h| {
            let bit = h % BLOOM_BITS;
            ((bit / 64) as usize, 1u64 << (bit % 64))
        })
    }

    fn blocker_stripe(owner: OwnerId) -> usize {
        // Keep thread and task identity spaces apart before striping.
        let raw = match owner {
            OwnerId::Thread(t) => t.index() << 1,
            OwnerId::Task(t) => (t.index() << 1) | 1,
        };
        (raw.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % BLOCKER_STRIPES
    }

    /// True if `key` *may* be the site of a history outer position. A
    /// `false` answer is definitive: no signature ever mentioned the site.
    pub fn site_may_be_in_history(&self, key: SiteKey) -> bool {
        Self::bloom_slots(key)
            .iter()
            .all(|&(word, mask)| self.bloom[word].load(Ordering::Acquire) & mask != 0)
    }

    /// True if `owner` *may* be named as a blocker by a live yield record.
    /// A `false` answer is definitive at the instant of the load: no yield
    /// edge points at the owner.
    pub fn is_blocker(&self, owner: OwnerId) -> bool {
        self.blockers[Self::blocker_stripe(owner)].load(Ordering::Acquire) != 0
    }

    /// Owners currently parked by avoidance, process-wide.
    pub fn parked_total(&self) -> u64 {
        self.parked_total.load(Ordering::Acquire)
    }

    /// Owners currently parked by avoidance on `shard`.
    pub fn parked_on_shard(&self, shard: usize) -> u64 {
        self.parked_per_shard
            .get(shard)
            .map(|c| c.load(Ordering::Acquire) as u64)
            .unwrap_or(0)
    }

    /// The epoch-validated lock-free admission check: admits iff a
    /// consistent read proves `key` is in no signature and no parked owner
    /// waits on `owner`. Counts [`Stats::fast_admits`],
    /// [`Stats::slow_fallbacks`], and [`Stats::degradation_scope_hits`] as
    /// a side effect.
    ///
    /// The caller must guarantee that `owner` holds no lock and occupies no
    /// position queue (the runtime's `holds_mask == 0`, no fast-held lock,
    /// no outstanding request); that is what upgrades "no yield edge" into
    /// "no in-edge at all, no cycle can run through this owner".
    ///
    /// [`Stats::fast_admits`]: crate::Stats::fast_admits
    /// [`Stats::slow_fallbacks`]: crate::Stats::slow_fallbacks
    /// [`Stats::degradation_scope_hits`]: crate::Stats::degradation_scope_hits
    pub fn try_admit(&self, key: SiteKey, owner: OwnerId) -> Admission {
        for _ in 0..2 {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                // A history install is absorbing; retry once, then fall back.
                continue;
            }
            if self.site_may_be_in_history(key) || self.is_blocker(owner) {
                self.slow_fallbacks.fetch_add(1, Ordering::Relaxed);
                return Admission::Fallback;
            }
            let degraded = self.parked_total() > 0;
            let after = self.epoch.load(Ordering::Acquire);
            if before == after {
                self.fast_admits.fetch_add(1, Ordering::Relaxed);
                if degraded {
                    self.degradation_scope_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Admission::Admit { degraded };
            }
        }
        self.slow_fallbacks.fetch_add(1, Ordering::Relaxed);
        Admission::Fallback
    }

    /// Folds any not-yet-absorbed outer positions of `snapshot` into the
    /// Bloom set. Idempotent and incremental: outer ids are append-only, so
    /// a broadcast install over N shards does the scan once and N-1 O(1)
    /// skips. Must not run concurrently with itself (callers hold the
    /// engine's all-shard lock order, or are single-threaded).
    pub fn absorb_snapshot(&self, snapshot: &HistorySnapshot) {
        let len = snapshot.outer_len() as u64;
        let start = self.absorbed_outers.load(Ordering::Acquire);
        if start >= len {
            return;
        }
        self.epoch.fetch_add(1, Ordering::AcqRel); // odd: writer active
        let outers = snapshot.outer_table();
        for id in start..len {
            if let Some(stack) = outers.stack(crate::position::PositionId::new(id as u32)) {
                for (word, mask) in Self::bloom_slots(stack.site_key()) {
                    self.bloom[word].fetch_or(mask, Ordering::Release);
                }
            }
        }
        self.absorbed_outers.store(len, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel); // even: quiescent
    }

    /// Records that an owner parked on `shard` with `record`'s blockers.
    pub(crate) fn note_yield(&self, record: &YieldRecord, shard: usize) {
        for b in &record.blockers {
            self.blockers[Self::blocker_stripe(*b)].fetch_add(1, Ordering::Release);
        }
        if let Some(c) = self.parked_per_shard.get(shard) {
            c.fetch_add(1, Ordering::Release);
        }
        self.parked_total.fetch_add(1, Ordering::Release);
    }

    /// Reverses [`note_yield`](Self::note_yield) for a cleared record.
    pub(crate) fn note_yield_cleared(&self, record: &YieldRecord, shard: usize) {
        for b in &record.blockers {
            self.blockers[Self::blocker_stripe(*b)].fetch_sub(1, Ordering::Release);
        }
        if let Some(c) = self.parked_per_shard.get(shard) {
            c.fetch_sub(1, Ordering::Release);
        }
        self.parked_total.fetch_sub(1, Ordering::Release);
    }

    /// Counts an engine-invisible acquisition completed on the fast path.
    pub fn note_fast_acquire(&self) {
        self.fast_acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an engine-invisible release completed on the fast path.
    pub fn note_fast_release(&self) {
        self.fast_releases.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cancelled fast-path admission (e.g. a failed `try_lock`).
    pub fn note_fast_cancel(&self) {
        self.fast_cancels.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a fast-held lock published into the engine by a slow-path
    /// request (its request/grant/acquisition are then counted by the
    /// engine, so aggregation subtracts `published` once from each).
    pub fn note_published(&self) {
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Fast-path admissions granted without any shard lock.
    pub fn fast_admits(&self) -> u64 {
        self.fast_admits.load(Ordering::Relaxed)
    }

    /// Fast-path-eligible attempts that failed validation and fell back.
    pub fn slow_fallbacks(&self) -> u64 {
        self.slow_fallbacks.load(Ordering::Relaxed)
    }

    /// Fast admissions that succeeded while some owner was parked elsewhere
    /// (requests the old global `parked` flag would have degraded).
    pub fn degradation_scope_hits(&self) -> u64 {
        self.degradation_scope_hits.load(Ordering::Relaxed)
    }

    /// Engine-invisible acquisitions completed on the fast path.
    pub fn fast_acquires(&self) -> u64 {
        self.fast_acquires.load(Ordering::Relaxed)
    }

    /// Engine-invisible releases completed on the fast path.
    pub fn fast_releases(&self) -> u64 {
        self.fast_releases.load(Ordering::Relaxed)
    }

    /// Cancelled fast-path admissions.
    pub fn fast_cancels(&self) -> u64 {
        self.fast_cancels.load(Ordering::Relaxed)
    }

    /// Fast-held locks later published into the engine by a slow-path
    /// request.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for AdmissionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionSummary")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("parked_total", &self.parked_total())
            .field(
                "absorbed_outers",
                &self.absorbed_outers.load(Ordering::Relaxed),
            )
            .field("fast_admits", &self.fast_admits())
            .field("slow_fallbacks", &self.slow_fallbacks())
            .field("degradation_scope_hits", &self.degradation_scope_hits())
            .field("published", &self.published())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockId;
    use crate::SignatureId;

    fn record(blockers: Vec<OwnerId>) -> YieldRecord {
        YieldRecord {
            signature: SignatureId::new(0),
            position: crate::position::PositionId::new(0),
            lock: LockId::new(0),
            blockers,
        }
    }

    #[test]
    fn empty_summary_admits_everyone() {
        let s = AdmissionSummary::new();
        assert_eq!(
            s.try_admit(SiteKey::new(42), OwnerId::thread(1)),
            Admission::Admit { degraded: false }
        );
        assert_eq!(s.fast_admits(), 1);
        assert_eq!(s.slow_fallbacks(), 0);
    }

    #[test]
    fn blocker_refcounts_gate_and_release() {
        let s = AdmissionSummary::new();
        let t1 = OwnerId::thread(1);
        let rec = record(vec![t1]);
        s.note_yield(&rec, 0);
        assert!(s.is_blocker(t1));
        assert_eq!(s.parked_total(), 1);
        assert_eq!(s.parked_on_shard(0), 1);
        assert_eq!(s.try_admit(SiteKey::new(7), t1), Admission::Fallback);
        assert_eq!(s.slow_fallbacks(), 1);
        // A *different* owner is still admitted — scoped degradation.
        match s.try_admit(SiteKey::new(7), OwnerId::thread(999)) {
            Admission::Admit { degraded } => assert!(degraded),
            other => panic!("expected scoped admit, got {other:?}"),
        }
        assert_eq!(s.degradation_scope_hits(), 1);
        s.note_yield_cleared(&rec, 0);
        assert!(!s.is_blocker(t1));
        assert_eq!(s.parked_total(), 0);
    }

    #[test]
    fn thread_and_task_spaces_do_not_collide_via_identity() {
        let s = AdmissionSummary::new();
        let rec = record(vec![OwnerId::thread(5)]);
        s.note_yield(&rec, 0);
        // The stripe is a hash, so a task *may* collide, but the identical
        // raw index must not collide by construction of the pre-mix.
        assert_ne!(
            AdmissionSummary::blocker_stripe(OwnerId::thread(5)),
            AdmissionSummary::blocker_stripe(OwnerId::task(5)),
        );
        s.note_yield_cleared(&rec, 0);
    }

    #[test]
    fn absorbed_sites_fall_back_and_absorption_is_idempotent() {
        use crate::history::History;
        use crate::signature::{Signature, SignatureKind, SignaturePair};
        use crate::{CallStack, Frame};

        let stack = CallStack::single(Frame::new("m1", "f.rs", 1));
        let inner = CallStack::single(Frame::new("m2", "f.rs", 2));
        let sig = Signature::new(
            SignatureKind::Deadlock,
            vec![SignaturePair::new(stack.clone(), inner)],
        );
        let mut history = History::new();
        history.add(sig);
        let snap = HistorySnapshot::build(history, 1);

        let s = AdmissionSummary::new();
        assert!(!s.site_may_be_in_history(stack.site_key()));
        s.absorb_snapshot(&snap);
        assert!(s.site_may_be_in_history(stack.site_key()));
        assert_eq!(
            s.try_admit(stack.site_key(), OwnerId::thread(1)),
            Admission::Fallback
        );
        let epoch_after = s.epoch.load(Ordering::Relaxed);
        s.absorb_snapshot(&snap); // no new outers: O(1) skip, no epoch bump
        assert_eq!(s.epoch.load(Ordering::Relaxed), epoch_after);
        assert_eq!(epoch_after % 2, 0, "epoch must end even");
    }
}
