//! Runtime counters kept by the engine.
//!
//! These back the evaluation harness: synchronization throughput (Table 1 and
//! the §5 microbenchmark), avoidance activity, and memory accounting.

use std::fmt;

/// Monotonic counters describing one engine instance's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Calls to `request` (one per monitorenter attempt).
    pub requests: u64,
    /// Requests approved immediately or after retries.
    pub grants: u64,
    /// Recursive (reentrant) acquisitions granted on the fast path.
    pub reentrant_grants: u64,
    /// `acquired` notifications.
    pub acquisitions: u64,
    /// `released` notifications that actually released the monitor.
    pub releases: u64,
    /// `acquired` notifications that deepened an already-held monitor
    /// (recursive re-entries). These increment `acquisitions` but their
    /// matching exits do not increment `releases`, so at quiescence the
    /// reentrant balance identity holds:
    /// `acquisitions - nested_reentries == releases` (`>=` while owners are
    /// mid-critical-section or were force-released by `unregister_owner`).
    /// See [`Stats::reentrant_balance`].
    pub nested_reentries: u64,
    /// Requests answered with a yield (the thread had to park).
    pub yields: u64,
    /// Distinct times a real deadlock cycle was detected.
    pub deadlocks_detected: u64,
    /// New deadlock signatures added to the history.
    pub new_deadlock_signatures: u64,
    /// Avoidance-induced deadlocks (starvation) detected.
    pub starvations_detected: u64,
    /// New starvation signatures added to the history.
    pub new_starvation_signatures: u64,
    /// Instantiation checks performed by the avoidance module.
    pub instantiation_checks: u64,
    /// Candidate signatures actually examined across all instantiation
    /// checks. With the inverted avoidance index this stays near zero on
    /// deadlock-free workloads (only signatures indexed at the requesting
    /// position are touched); a linear scan would grow it by |history| per
    /// check.
    pub signatures_examined: u64,
    /// Wake-ups issued on the release path (threads resumed from signature
    /// condition variables).
    pub wakeups: u64,
    /// Antibodies retired by generation-based eviction at `max_signatures`
    /// (never matched within the configured eviction window). Zero under
    /// the paper-faithful `refuse_at_capacity` configuration.
    pub signatures_evicted: u64,
    /// New antibodies refused because the history was at `max_signatures`
    /// under the paper-faithful `refuse_at_capacity` configuration. Zero
    /// under the default eviction configuration.
    pub history_full_refusals: u64,
    /// Acquisitions admitted by the lock-free admission path (an
    /// epoch-validated read over the
    /// [`AdmissionSummary`](crate::AdmissionSummary), no shard lock taken).
    /// Always zero in the core engines — the runtime layer folds the
    /// summary's counters into its aggregate view.
    pub fast_admits: u64,
    /// Fast-path-eligible attempts that failed the lock-free validation
    /// (Bloom hit, blocker-stripe hit, or a racing history install) and
    /// fell back to the locked engine path. Zero in the core engines.
    pub slow_fallbacks: u64,
    /// Fast admissions granted *while some owner was parked* elsewhere in
    /// the process — requests the old global `parked` flag would have
    /// degraded to the all-shard path but scoped degradation kept fast.
    /// Zero in the core engines.
    pub degradation_scope_hits: u64,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total synchronizations completed (acquire/release pairs observed).
    pub fn synchronizations(&self) -> u64 {
        self.acquisitions
    }

    /// The reentrant balance: top-level acquisitions not yet matched by a
    /// release (`acquisitions - nested_reentries - releases`). Zero at
    /// quiescence when every owner released what it acquired; positive while
    /// monitors are held (or after `unregister_owner` force-released holds
    /// without a `released` notification). The engine debug-asserts this
    /// never goes negative.
    pub fn reentrant_balance(&self) -> i64 {
        (self.acquisitions - self.nested_reentries) as i64 - self.releases as i64
    }

    /// Fraction of requests that had to yield (a rough false-positive proxy:
    /// on deadlock-free runs every yield is conservative serialization).
    pub fn yield_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.yields as f64 / self.requests as f64
        }
    }

    /// Rolls a collection of counters (per-shard, or per-process) up into
    /// one aggregate view. The sharded engine keeps one `Stats` per shard so
    /// the hot path never contends on a shared counter; observers read the
    /// sum.
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a Stats>) -> Stats {
        let mut total = Stats::new();
        for s in stats {
            total.merge(s);
        }
        total
    }

    /// Adds another set of counters to this one (used to aggregate
    /// per-process stats into platform-wide numbers).
    pub fn merge(&mut self, other: &Stats) {
        self.requests += other.requests;
        self.grants += other.grants;
        self.reentrant_grants += other.reentrant_grants;
        self.acquisitions += other.acquisitions;
        self.releases += other.releases;
        self.nested_reentries += other.nested_reentries;
        self.yields += other.yields;
        self.deadlocks_detected += other.deadlocks_detected;
        self.new_deadlock_signatures += other.new_deadlock_signatures;
        self.starvations_detected += other.starvations_detected;
        self.new_starvation_signatures += other.new_starvation_signatures;
        self.instantiation_checks += other.instantiation_checks;
        self.signatures_examined += other.signatures_examined;
        self.wakeups += other.wakeups;
        self.signatures_evicted += other.signatures_evicted;
        self.history_full_refusals += other.history_full_refusals;
        self.fast_admits += other.fast_admits;
        self.slow_fallbacks += other.slow_fallbacks;
        self.degradation_scope_hits += other.degradation_scope_hits;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} grants={} reentrant={} acquisitions={} releases={} reentries={} \
             yields={} deadlocks={} (new sigs {}) starvations={} (new sigs {}) checks={} \
             examined={} wakeups={} evicted={} refusals={} fast_admits={} slow_fallbacks={} \
             degradation_scope_hits={}",
            self.requests,
            self.grants,
            self.reentrant_grants,
            self.acquisitions,
            self.releases,
            self.nested_reentries,
            self.yields,
            self.deadlocks_detected,
            self.new_deadlock_signatures,
            self.starvations_detected,
            self.new_starvation_signatures,
            self.instantiation_checks,
            self.signatures_examined,
            self.wakeups,
            self.signatures_evicted,
            self.history_full_refusals,
            self.fast_admits,
            self.slow_fallbacks,
            self.degradation_scope_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_counters() {
        let mut a = Stats {
            requests: 1,
            grants: 2,
            reentrant_grants: 3,
            acquisitions: 4,
            releases: 5,
            nested_reentries: 1,
            yields: 6,
            deadlocks_detected: 7,
            new_deadlock_signatures: 8,
            starvations_detected: 9,
            new_starvation_signatures: 10,
            instantiation_checks: 11,
            signatures_examined: 13,
            wakeups: 12,
            signatures_evicted: 14,
            history_full_refusals: 15,
            fast_admits: 16,
            slow_fallbacks: 17,
            degradation_scope_hits: 18,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.requests, 2);
        assert_eq!(a.wakeups, 24);
        assert_eq!(a.signatures_examined, 26);
        assert_eq!(a.synchronizations(), 8);
        assert_eq!(a.nested_reentries, 2);
        assert_eq!(a.signatures_evicted, 28);
        assert_eq!(a.history_full_refusals, 30);
        assert_eq!(a.fast_admits, 32);
        assert_eq!(a.slow_fallbacks, 34);
        assert_eq!(a.degradation_scope_hits, 36);
    }

    #[test]
    fn reentrant_balance_tracks_outstanding_holds() {
        let s = Stats {
            acquisitions: 10,
            nested_reentries: 3,
            releases: 7,
            ..Stats::new()
        };
        // 10 acquisitions, 3 of which were recursive re-entries whose exits
        // never reach `releases`: at quiescence 10 - 3 == 7.
        assert_eq!(s.reentrant_balance(), 0);
        let held = Stats {
            acquisitions: 5,
            nested_reentries: 1,
            releases: 2,
            ..Stats::new()
        };
        assert_eq!(held.reentrant_balance(), 2);
    }

    #[test]
    fn yield_rate_handles_zero_requests() {
        assert_eq!(Stats::new().yield_rate(), 0.0);
        let s = Stats {
            requests: 10,
            yields: 5,
            ..Stats::new()
        };
        assert!((s.yield_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(Stats::new().to_string().contains("requests=0"));
    }
}
