//! # dimmunix-core — deadlock immunity engine
//!
//! This crate is a from-scratch Rust implementation of the Dimmunix deadlock
//! immunity core, as deployed platform-wide inside Android's Dalvik VM in
//! *"Platform-wide Deadlock Immunity for Mobile Phones"* (Jula, Rensch,
//! Candea; HotDep 2011). Dimmunix lets a process develop *antibodies*
//! (deadlock signatures) for every deadlock it encounters: the first
//! occurrence is detected and recorded in a persistent history; every later
//! execution avoids re-instantiating the signature, so the same deadlock bug
//! never bites twice.
//!
//! The crate contains only the engine — the paper's "Dimmunix core"
//! (§4) — as a deterministic, single-threaded state machine driven through
//! three hook points:
//!
//! * [`Dimmunix::request`] — before a monitor acquisition (detection +
//!   avoidance decision),
//! * [`Dimmunix::acquired`] — right after the acquisition,
//! * [`Dimmunix::released`] — right before the release (wakes threads parked
//!   on signatures).
//!
//! Substrates integrate it the way the paper integrates with the Dalvik VM:
//! `dimmunix-rt` wraps real `parking_lot` mutexes into `ImmuneMutex` /
//! `ImmuneMonitor` types (Rust has no lock interposition point, so wrapper
//! types play the role of the modified `lockMonitor`/`unlockMonitor`
//! routines), and `dalvik-sim` is a deterministic VM simulator whose
//! `monitorenter`/`monitorexit`/`wait` opcodes call the same hooks.
//!
//! ## Quick start
//!
//! ```
//! use dimmunix_core::{CallStack, Config, Dimmunix, Frame, LockId, RequestOutcome, ThreadId};
//!
//! let mut engine = Dimmunix::new(Config::default());
//! let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
//! let (la, lb) = (LockId::new(1), LockId::new(2));
//! let site = |m: &str, line| CallStack::single(Frame::new(m, "app.rs", line));
//!
//! // t1 takes A then asks for B; t2 takes B then asks for A -> deadlock.
//! assert!(engine.request(t1, la, &site("t1.outer", 10)).is_granted());
//! engine.acquired(t1, la);
//! assert!(engine.request(t2, lb, &site("t2.outer", 20)).is_granted());
//! engine.acquired(t2, lb);
//! assert!(engine.request(t1, lb, &site("t1.inner", 11)).is_granted());
//! let outcome = engine.request(t2, la, &site("t2.inner", 21));
//! assert!(matches!(outcome, RequestOutcome::DeadlockDetected { .. }));
//! // The signature is now in the history; a fresh run of the same program
//! // through the same engine state would be steered away from the deadlock.
//! assert_eq!(engine.history().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod avoidance;
mod callstack;
mod config;
mod detection;
mod engine;
mod error;
mod events;
mod history;
mod ids;
pub mod json;
mod position;
mod pvec;
mod rag;
mod sharded;
mod signature;
mod snapshot;
mod stats;

pub use admission::{Admission, AdmissionSummary};
pub use avoidance::{find_instantiation, signature_instantiable, Instantiation, SignatureIndex};
pub use callstack::{CallStack, Frame, SiteKey};
pub use config::{
    Config, ConfigBuilder, DEFAULT_EVICTION_WINDOW, DEFAULT_LOG_SEGMENT_RECORDS,
    DEFAULT_MAX_SIGNATURES, DEFAULT_STACK_DEPTH,
};
pub use detection::{classify_cycle, DetectedCycle};
pub use engine::{Dimmunix, RequestOutcome};
pub use error::{DimmunixError, Result};
pub use events::{Event, EventKind, EventLog};
pub use history::{
    signature_from_json_value, signature_from_log_record, signature_to_log_record, History,
    HistoryLog, LogReplay, RecoveryReport,
};
pub use ids::{LockId, LogicalTime, OwnerId, ProcessId, SignatureId, SiteId, TaskId, ThreadId};
pub use position::{OwnerQueue, Position, PositionId, PositionTable, StackInterner, ThreadQueue};
pub use pvec::{PersistentMap, PersistentVec};
pub use rag::{
    find_cycle_with, AccessMode, CycleStep, HeldEntry, LockOwner, Rag, WaitEdge, YieldRecord,
};
pub use sharded::{
    broadcast_signature, fast_path_eligible, holds_mask_with, request_cross_shard,
    stale_shard_after, stale_shard_consumed, try_request_local, LocalDecision, ShardRouter,
    ShardedDimmunix, MAX_SHARDS,
};
pub use signature::{Signature, SignatureKind, SignaturePair};
pub use snapshot::{HistorySnapshot, OuterTable};
pub use stats::Stats;

#[cfg(test)]
mod engine_tests {
    use super::*;

    fn site(m: &str, line: u32) -> CallStack {
        CallStack::single(Frame::new(m, "app.rs", line))
    }

    fn t(i: u64) -> OwnerId {
        OwnerId::thread(i)
    }
    fn l(i: u64) -> LockId {
        LockId::new(i)
    }

    /// Drives the canonical AB/BA deadlock to detection and returns the
    /// engine (with one signature in its history).
    fn detect_ab_ba() -> Dimmunix {
        let mut e = Dimmunix::new(Config::builder().event_log_capacity(256).build());
        assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
        e.acquired(t(1), l(1));
        assert!(e.request(t(2), l(2), &site("t2.outer", 20)).is_granted());
        e.acquired(t(2), l(2));
        assert!(e.request(t(1), l(2), &site("t1.inner", 11)).is_granted());
        let outcome = e.request(t(2), l(1), &site("t2.inner", 21));
        assert!(matches!(outcome, RequestOutcome::DeadlockDetected { .. }));
        e
    }

    #[test]
    fn detects_ab_ba_deadlock_once() {
        let e = detect_ab_ba();
        assert_eq!(e.history().len(), 1);
        assert_eq!(e.stats().deadlocks_detected, 1);
        assert_eq!(e.stats().new_deadlock_signatures, 1);
        let sig = e.history().get(SignatureId::new(0)).unwrap();
        assert_eq!(sig.kind(), SignatureKind::Deadlock);
        assert_eq!(sig.arity(), 2);
    }

    /// Replays the same interleaving against an engine that already carries
    /// the signature: the second thread must yield instead of deadlocking,
    /// and after the first thread finishes, the parked thread proceeds.
    #[test]
    fn avoids_known_deadlock_on_replay() {
        let trained = detect_ab_ba();
        let mut e = Dimmunix::with_history(Config::default(), trained.history().clone());

        // Same schedule as the deadlocking run.
        assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
        e.acquired(t(1), l(1));
        // t2 wants B at its outer position: granting would cover both outer
        // positions of the signature, so it must yield.
        let outcome = e.request(t(2), l(2), &site("t2.outer", 20));
        let parked_on = match outcome {
            RequestOutcome::Yield { signature } => signature,
            other => panic!("expected yield, got {other:?}"),
        };
        assert_eq!(e.stats().yields, 1);

        // t1 proceeds through its critical sections unhindered.
        assert!(e.request(t(1), l(2), &site("t1.inner", 11)).is_granted());
        e.acquired(t(1), l(2));
        assert!(e.released(t(1), l(2)).is_empty());
        // Releasing A (acquired at a history position) wakes the signature.
        let wake = e.released(t(1), l(1));
        assert!(wake.contains(&parked_on));

        // t2 retries and is now granted; no deadlock, no new signature.
        assert!(e.request(t(2), l(2), &site("t2.outer", 20)).is_granted());
        e.acquired(t(2), l(2));
        assert!(e.request(t(2), l(1), &site("t2.inner", 21)).is_granted());
        e.acquired(t(2), l(1));
        e.released(t(2), l(1));
        e.released(t(2), l(2));
        assert_eq!(e.stats().deadlocks_detected, 0);
        assert_eq!(e.history().len(), 1);
    }

    #[test]
    fn reentrant_acquisitions_take_fast_path() {
        let mut e = Dimmunix::default();
        assert!(e.request(t(1), l(1), &site("outer", 1)).is_granted());
        e.acquired(t(1), l(1));
        let again = e.request(t(1), l(1), &site("inner", 2));
        assert_eq!(again, RequestOutcome::GrantedReentrant);
        e.acquired(t(1), l(1));
        assert_eq!(e.stats().reentrant_grants, 1);
        // Inner release does not give up the monitor or wake anyone.
        assert!(e.released(t(1), l(1)).is_empty());
        assert_eq!(e.rag().owner(l(1)), Some(t(1)));
        assert!(e.released(t(1), l(1)).is_empty());
        assert_eq!(e.rag().owner(l(1)), None);
    }

    #[test]
    fn disabled_engine_is_pass_through() {
        let mut e = Dimmunix::new(Config::disabled());
        for round in 0..3u64 {
            assert!(e.request(t(1), l(1), &site("a", 1)).is_granted());
            e.acquired(t(1), l(1));
            assert!(e.request(t(2), l(2), &site("b", 2)).is_granted());
            e.acquired(t(2), l(2));
            assert!(e.request(t(1), l(2), &site("c", 3)).is_granted());
            assert!(e.request(t(2), l(1), &site("d", 4)).is_granted());
            // No detection happens; clean up for the next round.
            e.released(t(1), l(1));
            e.released(t(2), l(2));
            let _ = round;
        }
        assert!(e.history().is_empty());
        assert_eq!(e.stats().deadlocks_detected, 0);
    }

    #[test]
    fn starvation_is_detected_and_thread_released() {
        // Train the engine with the AB/BA signature, then create the
        // avoidance-induced deadlock of §2.2: the blocker (t1) ends up
        // waiting on a lock held by the parked thread (t2).
        let trained = detect_ab_ba();
        let mut e = Dimmunix::with_history(Config::default(), trained.history().clone());

        // t2 takes an unrelated lock C first.
        assert!(e.request(t(2), l(3), &site("t2.helper", 30)).is_granted());
        e.acquired(t(2), l(3));
        // t1 acquires A at the history position.
        assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
        e.acquired(t(1), l(1));
        // t2 asks for B at the history position -> instantiation -> parked.
        let outcome = e.request(t(2), l(2), &site("t2.outer", 20));
        assert!(matches!(outcome, RequestOutcome::Yield { .. }));
        // t1 now asks for C, which t2 holds: parking t2 has created a cycle
        // through the yield edge. The engine must classify this as
        // starvation, record a starvation signature and schedule a wake-up
        // for the parked thread rather than reporting a real deadlock.
        let outcome = e.request(t(1), l(3), &site("t1.helper", 12));
        assert!(
            outcome.is_granted() || matches!(outcome, RequestOutcome::Yield { .. }),
            "starvation must not be reported as a deadlock, got {outcome:?}"
        );
        assert_eq!(e.stats().deadlocks_detected, 0);
        assert!(e.stats().starvations_detected >= 1);
        let wakeups = e.take_pending_wakeups();
        assert!(!wakeups.is_empty(), "parked thread must be resumed");
        // The parked thread retries and is now allowed to proceed (the
        // starvation check sees the same cycle and refuses to park again).
        let retry = e.request(t(2), l(2), &site("t2.outer", 20));
        assert!(retry.is_granted(), "retry after starvation, got {retry:?}");
    }

    #[test]
    fn starvation_detected_at_yield_time() {
        // Opposite ordering: the blocker is already waiting on a lock the
        // requester holds when the yield decision is about to be taken.
        let trained = detect_ab_ba();
        let mut e = Dimmunix::with_history(Config::default(), trained.history().clone());

        // t2 holds C; t1 holds A (history position) and then blocks on C.
        assert!(e.request(t(2), l(3), &site("t2.helper", 30)).is_granted());
        e.acquired(t(2), l(3));
        assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
        e.acquired(t(1), l(1));
        assert!(e.request(t(1), l(3), &site("t1.helper", 12)).is_granted());
        // t1 is now blocked on C (granted but not acquired). t2 requests B at
        // the history position: parking t2 would starve t1 forever, so the
        // engine must let t2 through and record a starvation signature.
        let outcome = e.request(t(2), l(2), &site("t2.outer", 20));
        assert!(outcome.is_granted(), "expected grant, got {outcome:?}");
        assert!(e.stats().starvations_detected >= 1);
        assert!(e
            .history()
            .iter()
            .any(|(_, s)| s.kind() == SignatureKind::Starvation));
    }

    #[test]
    fn unregister_thread_releases_locks_and_wakes() {
        let trained = detect_ab_ba();
        let mut e = Dimmunix::with_history(Config::default(), trained.history().clone());
        assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
        e.acquired(t(1), l(1));
        let outcome = e.request(t(2), l(2), &site("t2.outer", 20));
        assert!(matches!(outcome, RequestOutcome::Yield { .. }));
        // t1 dies while holding A; the parked thread must be woken.
        let wake = e.unregister_owner(t(1));
        assert!(!wake.is_empty());
        assert!(e.request(t(2), l(2), &site("t2.outer", 20)).is_granted());
    }

    #[test]
    fn cancel_request_undoes_queue_entry() {
        let trained = detect_ab_ba();
        let mut e = Dimmunix::with_history(Config::default(), trained.history().clone());
        assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
        e.cancel_request(t(1), l(1));
        // Because t1 backed out, t2 requesting at the other history position
        // must not see an instantiation.
        assert!(e.request(t(2), l(2), &site("t2.outer", 20)).is_granted());
    }

    #[test]
    fn history_persists_across_engine_restarts() {
        let dir = std::env::temp_dir().join(format!("dimmunix-engine-{}", std::process::id()));
        let path = dir.join("history.dimmu");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(&path);

        let cfg = Config::builder().history_path(&path).build();
        {
            let mut e = Dimmunix::new(cfg.clone());
            assert!(e.request(t(1), l(1), &site("t1.outer", 10)).is_granted());
            e.acquired(t(1), l(1));
            assert!(e.request(t(2), l(2), &site("t2.outer", 20)).is_granted());
            e.acquired(t(2), l(2));
            assert!(e.request(t(1), l(2), &site("t1.inner", 11)).is_granted());
            let outcome = e.request(t(2), l(1), &site("t2.inner", 21));
            assert!(matches!(outcome, RequestOutcome::DeadlockDetected { .. }));
        }
        // "Reboot": a new engine loads the persisted antibody.
        let e2 = Dimmunix::new(cfg);
        assert_eq!(e2.history().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Detections append one record each; killing the process mid-append
    /// (simulated by truncating the log inside the final record) must
    /// restore exactly the committed prefix on replay, and the next
    /// detection must append cleanly after tail repair.
    #[test]
    fn kill_during_detection_replays_committed_prefix() {
        let dir = std::env::temp_dir().join(format!("dimmunix-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("history.log");
        let cfg = Config::builder().history_path(&path).build();

        // Three distinct AB/BA deadlocks -> three appended records.
        let mut e = Dimmunix::new(cfg.clone());
        for k in 0..3u64 {
            let (ta, tb) = (t(10 * k + 1), t(10 * k + 2));
            let (la, lb) = (l(10 * k + 1), l(10 * k + 2));
            assert!(e
                .request(ta, la, &site("outer.a", 100 * k as u32))
                .is_granted());
            e.acquired(ta, la);
            assert!(e
                .request(tb, lb, &site("outer.b", 100 * k as u32 + 1))
                .is_granted());
            e.acquired(tb, lb);
            assert!(e
                .request(ta, lb, &site("inner.a", 100 * k as u32 + 2))
                .is_granted());
            let outcome = e.request(tb, la, &site("inner.b", 100 * k as u32 + 3));
            assert!(matches!(outcome, RequestOutcome::DeadlockDetected { .. }));
            e.unregister_owner(ta);
            e.unregister_owner(tb);
        }
        assert_eq!(e.history().len(), 3);
        let full = e.history().clone();
        drop(e);

        // The "kill": the third append was cut short.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

        // Replay restores an identical history for the committed prefix.
        let e2 = Dimmunix::new(cfg.clone());
        assert_eq!(e2.history().len(), 2);
        for (id, sig) in e2.history().iter() {
            assert!(full.get(id).unwrap().same_bug(sig), "replayed {id} differs");
        }
        drop(e2);

        // The next detection appends cleanly onto the repaired log.
        let mut e3 = Dimmunix::new(cfg.clone());
        assert!(e3.request(t(91), l(91), &site("late.a", 900)).is_granted());
        e3.acquired(t(91), l(91));
        assert!(e3.request(t(92), l(92), &site("late.b", 901)).is_granted());
        e3.acquired(t(92), l(92));
        assert!(e3.request(t(91), l(92), &site("late.c", 902)).is_granted());
        assert!(matches!(
            e3.request(t(92), l(91), &site("late.d", 903)),
            RequestOutcome::DeadlockDetected { .. }
        ));
        assert_eq!(e3.history().len(), 3);
        let replay = HistoryLog::new(&path).replay().unwrap();
        assert!(!replay.truncated_tail, "repair must leave a clean log");
        assert_eq!(replay.history.len(), 3);
        for (id, sig) in e3.history().iter() {
            assert!(replay.history.get(id).unwrap().same_bug(sig));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A log with interior corruption cannot be appended to (those records
    /// would be unreadable forever): the engine must quarantine it and
    /// start a fresh log that replays cleanly after the next detection.
    #[test]
    fn corrupt_log_is_quarantined_and_a_fresh_log_started() {
        let dir = std::env::temp_dir().join(format!("dimmunix-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.log");
        std::fs::write(&path, "garbage, not a record\n{\"also\": \"wrong\"}\n").unwrap();
        let cfg = Config::builder().history_path(&path).build();

        let mut e = Dimmunix::new(cfg.clone());
        assert!(e.history().is_empty(), "corrupt history must not half-load");
        assert!(
            dir.join("history.corrupt").exists(),
            "the unreadable log must be preserved for diagnosis"
        );
        // A detection appends to a brand-new log...
        assert!(e.request(t(1), l(1), &site("q.a", 1)).is_granted());
        e.acquired(t(1), l(1));
        assert!(e.request(t(2), l(2), &site("q.b", 2)).is_granted());
        e.acquired(t(2), l(2));
        assert!(e.request(t(1), l(2), &site("q.c", 3)).is_granted());
        assert!(matches!(
            e.request(t(2), l(1), &site("q.d", 4)),
            RequestOutcome::DeadlockDetected { .. }
        ));
        // ...which the next start-up replays in full.
        let e2 = Dimmunix::new(cfg);
        assert_eq!(e2.history().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_log_records_decisions_when_enabled() {
        let e = detect_ab_ba();
        assert!(e.events().is_enabled());
        assert!(e
            .events()
            .iter()
            .any(|ev| matches!(ev.kind, EventKind::DeadlockDetected { .. })));
        assert!(e
            .events()
            .iter()
            .any(|ev| matches!(ev.kind, EventKind::Grant { .. })));
    }

    #[test]
    fn memory_footprint_increases_with_history() {
        let empty = Dimmunix::default().memory_footprint_bytes();
        let trained = detect_ab_ba();
        assert!(trained.memory_footprint_bytes() > empty);
    }

    #[test]
    fn max_signatures_evicts_stale_antibodies_by_default() {
        fn ab(n: u32) -> Signature {
            Signature::new(
                SignatureKind::Deadlock,
                vec![SignaturePair::new(
                    site("evict.a", n * 10),
                    site("evict.b", n * 10 + 1),
                )],
            )
        }
        let mut e = Dimmunix::new(
            Config::builder()
                .max_signatures(2)
                .eviction_window(2)
                .build(),
        );
        // s0 born at epoch 1, s1 at epoch 2.
        let (s0, new0) = e.add_signature(ab(0));
        assert!(new0);
        let (_s1, new1) = e.add_signature(ab(1));
        assert!(new1);
        // At capacity but both antibodies are within the window: the history
        // overflows softly rather than evicting a recent antibody.
        let (_s2, new2) = e.add_signature(ab(2));
        assert!(new2);
        assert_eq!(e.history().len(), 3, "soft overflow when nothing is stale");
        assert_eq!(e.stats().signatures_evicted, 0);
        // By now s0 and s1 have aged out of the window; the next insert
        // retires both (oldest first) before appending.
        let (_s3, new3) = e.add_signature(ab(3));
        assert!(new3);
        assert_eq!(e.history().len(), 2);
        assert_eq!(e.stats().signatures_evicted, 2);
        assert!(e.history().get(s0).is_none(), "s0 was retired");
        assert_eq!(e.stats().history_full_refusals, 0);
    }

    #[test]
    fn max_signatures_refuses_under_paper_faithful_flag() {
        fn ab(n: u32) -> Signature {
            Signature::new(
                SignatureKind::Deadlock,
                vec![SignaturePair::new(
                    site("refuse.a", n * 10),
                    site("refuse.b", n * 10 + 1),
                )],
            )
        }
        let mut e = Dimmunix::new(
            Config::builder()
                .max_signatures(1)
                .refuse_at_capacity(true)
                .build(),
        );
        let (s0, new0) = e.add_signature(ab(0));
        assert!(new0);
        // A duplicate is never a refusal: it resolves to the existing id.
        assert!(matches!(e.try_add_signature(ab(0)), Ok((id, false)) if id == s0));
        // A distinct antibody at capacity is refused with a structured error.
        assert!(matches!(
            e.try_add_signature(ab(1)),
            Err(DimmunixError::HistoryFull { capacity: 1 })
        ));
        assert_eq!(e.history().len(), 1);
        assert_eq!(e.stats().history_full_refusals, 1);
        assert_eq!(e.stats().signatures_evicted, 0);
        // The infallible detection-path wrapper degrades to "not new".
        let (_, added) = e.add_signature(ab(2));
        assert!(!added);
        assert_eq!(e.stats().history_full_refusals, 2);
    }

    #[test]
    fn acquired_without_request_is_tolerated() {
        let mut e = Dimmunix::default();
        // A substrate bug (or native code) acquired a monitor the engine was
        // never told about; the engine must keep functioning.
        e.acquired(t(9), l(9));
        assert_eq!(e.rag().owner(l(9)), Some(t(9)));
        assert!(e.released(t(9), l(9)).is_empty());
        assert_eq!(e.rag().owner(l(9)), None);
    }

    /// Tentpole regression: a cycle through a **non-first** member of a
    /// reader crowd is detected at its first occurrence, and the learned
    /// signature's template position is the acquisition site of the reader
    /// actually on the cycle (not the first reader's).
    #[test]
    fn rwlock_cycle_through_second_reader_detected_with_its_own_site() {
        trait Hooks {
            fn req(
                &mut self,
                t: OwnerId,
                l: LockId,
                s: &CallStack,
                m: AccessMode,
            ) -> RequestOutcome;
            fn acq(&mut self, t: OwnerId, l: LockId);
        }
        impl Hooks for Dimmunix {
            fn req(
                &mut self,
                t: OwnerId,
                l: LockId,
                s: &CallStack,
                m: AccessMode,
            ) -> RequestOutcome {
                self.request_mode(t, l, s, m)
            }
            fn acq(&mut self, t: OwnerId, l: LockId) {
                self.acquired(t, l);
            }
        }
        impl Hooks for ShardedDimmunix {
            fn req(
                &mut self,
                t: OwnerId,
                l: LockId,
                s: &CallStack,
                m: AccessMode,
            ) -> RequestOutcome {
                self.request_mode(t, l, s, m)
            }
            fn acq(&mut self, t: OwnerId, l: LockId) {
                self.acquired(t, l);
            }
        }
        fn run(engine: &mut dyn Hooks) -> RequestOutcome {
            let (r1, r2, w) = (OwnerId::thread(1), OwnerId::thread(2), OwnerId::thread(3));
            let (la, lb) = (LockId::new(1), LockId::new(2));
            let site = |m: &str, line| CallStack::single(Frame::new(m, "app.rs", line));
            // r1 and r2 read-share A at *distinct* sites.
            assert!(engine
                .req(r1, la, &site("r1.read_a", 10), AccessMode::Shared)
                .is_granted());
            engine.acq(r1, la);
            assert!(engine
                .req(r2, la, &site("r2.read_a", 20), AccessMode::Shared)
                .is_granted());
            engine.acq(r2, la);
            // The writer owns B and requests A: waits on BOTH readers.
            assert!(engine
                .req(w, lb, &site("w.write_b", 30), AccessMode::Exclusive)
                .is_granted());
            engine.acq(w, lb);
            assert!(engine
                .req(w, la, &site("w.write_a", 31), AccessMode::Exclusive)
                .is_granted());
            // (the substrate would block here; the request edge stays)
            // r2 requests B: closes the cycle r2 -> w -> r2.
            engine.req(r2, lb, &site("r2.read_b", 21), AccessMode::Shared)
        }

        let mut e = Dimmunix::default();
        let outcome = run(&mut e);
        match &outcome {
            RequestOutcome::DeadlockDetected { owners, .. } => {
                assert!(owners.contains(&t(2)) && owners.contains(&t(3)));
                assert!(!owners.contains(&t(1)), "r1 is not on the cycle");
            }
            other => panic!("expected first-occurrence detection, got {other:?}"),
        }
        assert_eq!(e.history().len(), 1);
        let sig = e.history().get(SignatureId::new(0)).unwrap();
        let outers: Vec<String> = sig.outer_stacks().map(|s| s.to_compact()).collect();
        // Template positions come from the owners on the cycle: r2's own
        // read site and the writer's B site — never r1's site.
        assert!(
            outers.contains(&site("r2.read_a", 20).to_compact()),
            "{outers:?}"
        );
        assert!(
            outers.contains(&site("w.write_b", 30).to_compact()),
            "{outers:?}"
        );
        assert!(
            !outers.contains(&site("r1.read_a", 10).to_compact()),
            "{outers:?}"
        );

        // The sharded engine reaches the identical verdict and history.
        for shards in [1usize, 2, 3, 8] {
            let mut s = ShardedDimmunix::new(Config::default(), shards);
            let sharded_outcome = run(&mut s);
            assert_eq!(sharded_outcome, outcome, "shards {shards}");
            assert_eq!(s.history().len(), 1, "shards {shards}");
            assert!(
                s.history()
                    .get(SignatureId::new(0))
                    .unwrap()
                    .same_bug(e.history().get(SignatureId::new(0)).unwrap()),
                "shards {shards}"
            );
        }
    }

    /// Tentpole regression: a reader that released its own hold carries no
    /// stale ownership, so its next request cannot close a cycle against
    /// the crowd it left (the old representative model's false positive).
    #[test]
    fn departed_reader_is_not_part_of_any_cycle() {
        let mut e = Dimmunix::default();
        let (r1, r2, w) = (t(1), t(2), t(3));
        let (la, lb) = (l(1), l(2));
        // r1 in first, r2 joins, r1 leaves: owners(A) = {r2}.
        assert!(e
            .request_mode(r1, la, &site("r1.read_a", 10), AccessMode::Shared)
            .is_granted());
        e.acquired(r1, la);
        assert!(e
            .request_mode(r2, la, &site("r2.read_a", 20), AccessMode::Shared)
            .is_granted());
        e.acquired(r2, la);
        e.released(r1, la);
        assert_eq!(e.rag().owner(la), Some(r2));
        // w owns B, requests A (waits on r2 alone).
        assert!(e
            .request_mode(w, lb, &site("w.write_b", 30), AccessMode::Exclusive)
            .is_granted());
        e.acquired(w, lb);
        assert!(e
            .request_mode(w, la, &site("w.write_a", 31), AccessMode::Exclusive)
            .is_granted());
        // r1 requests B: r1 -> w -> r2, no edge back to r1 — must be a
        // clean grant, not a (spurious) detection.
        let outcome = e.request_mode(r1, lb, &site("r1.write_b", 11), AccessMode::Exclusive);
        assert!(outcome.is_granted(), "got {outcome:?}");
        assert_eq!(e.stats().deadlocks_detected, 0);
        assert!(e.history().is_empty());
    }

    /// Avoidance treats joining an existing reader crowd as compatible: a
    /// shared request whose only would-be blocker is a shared co-holder of
    /// the same lock is granted, while an exclusive request over the same
    /// occupancy still yields.
    #[test]
    fn crowd_join_is_compatible_for_avoidance() {
        // Antibody whose outer positions are the two read sites.
        let sig = Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(site("r.read_1", 10), site("r.inner_1", 11)),
                SignaturePair::new(site("r.read_2", 20), site("r.inner_2", 21)),
            ],
        );
        let mut history = History::new();
        history.add(sig);

        let mut e = Dimmunix::with_history(Config::default(), history.clone());
        let (r2, r3, t5) = (t(2), t(3), t(5));
        let (la, lb) = (l(1), l(2));
        // r2 read-holds A at the second history site.
        assert!(e
            .request_mode(r2, la, &site("r.read_2", 20), AccessMode::Shared)
            .is_granted());
        e.acquired(r2, la);
        // r3 joins A's crowd at the first history site: r2 is a crowd-mate,
        // not a blocker — the request must be granted, not parked.
        let outcome = e.request_mode(r3, la, &site("r.read_1", 10), AccessMode::Shared);
        assert!(outcome.is_granted(), "crowd join was refused: {outcome:?}");
        e.acquired(r3, la);
        // An exclusive request for a *different* lock at the same site sees
        // the same occupancy as a genuine instantiation and must yield.
        let outcome = e.request_mode(t5, lb, &site("r.read_1", 10), AccessMode::Exclusive);
        assert!(
            matches!(outcome, RequestOutcome::Yield { .. }),
            "exclusive request must still be parked: {outcome:?}"
        );
    }

    #[test]
    fn three_thread_cycle_is_detected() {
        let mut e = Dimmunix::default();
        for i in 1..=3u64 {
            assert!(e
                .request(t(i), l(i), &site(&format!("outer{i}"), i as u32))
                .is_granted());
            e.acquired(t(i), l(i));
        }
        assert!(e.request(t(1), l(2), &site("r1", 11)).is_granted());
        assert!(e.request(t(2), l(3), &site("r2", 12)).is_granted());
        let outcome = e.request(t(3), l(1), &site("r3", 13));
        match outcome {
            RequestOutcome::DeadlockDetected { owners, .. } => assert_eq!(owners.len(), 3),
            other => panic!("expected detection, got {other:?}"),
        }
        let sig = e.history().get(SignatureId::new(0)).unwrap();
        assert_eq!(sig.arity(), 3);
    }
}
