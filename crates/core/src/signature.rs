//! Deadlock and starvation signatures.
//!
//! A deadlock signature (§2.1) approximates the execution flow that led to a
//! deadlock: for each deadlocked thread it records the call stack the thread
//! had when it acquired the lock it holds in the cycle (the *outer* stack)
//! and the call stack it had at the moment of the deadlock (the *inner*
//! stack). Only outer stacks matter for avoidance; inner stacks are retained
//! for diagnosis. A deadlock bug is identified by its set of outer and inner
//! positions; occurrences at different positions are different bugs.

use crate::callstack::CallStack;
use std::fmt;

/// One (outer, inner) call-stack pair of a signature: the contribution of one
/// deadlocked thread.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignaturePair {
    /// Call stack at the acquisition of the lock held in the cycle.
    pub outer: CallStack,
    /// Call stack at the moment of the deadlock (the blocked request).
    pub inner: CallStack,
}

impl SignaturePair {
    /// Creates a pair from its outer and inner stacks.
    pub fn new(outer: CallStack, inner: CallStack) -> Self {
        SignaturePair { outer, inner }
    }
}

impl fmt::Display for SignaturePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outer [{}] / inner [{}]",
            self.outer.to_compact(),
            self.inner.to_compact()
        )
    }
}

/// Whether a signature records a real deadlock or an avoidance-induced
/// deadlock (starvation, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignatureKind {
    /// A mutual-exclusion deadlock detected as a RAG cycle.
    Deadlock,
    /// A starvation condition created by Dimmunix's own avoidance decisions.
    Starvation,
}

impl fmt::Display for SignatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureKind::Deadlock => write!(f, "deadlock"),
            SignatureKind::Starvation => write!(f, "starvation"),
        }
    }
}

/// A persistent antibody: the signature of one previously observed deadlock
/// or starvation.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, Signature, SignatureKind, SignaturePair};
/// let sig = Signature::new(
///     SignatureKind::Deadlock,
///     vec![
///         SignaturePair::new(
///             CallStack::single(Frame::new("Nms.enqueue", "nms.java", 310)),
///             CallStack::single(Frame::new("Nms.cancel", "nms.java", 402)),
///         ),
///         SignaturePair::new(
///             CallStack::single(Frame::new("SbS.handleMessage", "sbs.java", 120)),
///             CallStack::single(Frame::new("SbS.expand", "sbs.java", 88)),
///         ),
///     ],
/// );
/// assert_eq!(sig.arity(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    kind: SignatureKind,
    pairs: Vec<SignaturePair>,
}

impl Signature {
    /// Creates a signature. Pairs are kept in a canonical (sorted) order so
    /// that the same deadlock observed from different threads' perspectives
    /// produces an identical signature, which is what history deduplication
    /// relies on.
    pub fn new(kind: SignatureKind, mut pairs: Vec<SignaturePair>) -> Self {
        pairs.sort();
        Signature { kind, pairs }
    }

    /// The signature kind.
    pub fn kind(&self) -> SignatureKind {
        self.kind
    }

    /// The (outer, inner) pairs, in canonical order.
    pub fn pairs(&self) -> &[SignaturePair] {
        &self.pairs
    }

    /// Number of threads involved in the recorded deadlock.
    pub fn arity(&self) -> usize {
        self.pairs.len()
    }

    /// Outer call stacks only — the part relevant for avoidance.
    pub fn outer_stacks(&self) -> impl Iterator<Item = &CallStack> {
        self.pairs.iter().map(|p| &p.outer)
    }

    /// Inner call stacks only — kept for diagnosis.
    pub fn inner_stacks(&self) -> impl Iterator<Item = &CallStack> {
        self.pairs.iter().map(|p| &p.inner)
    }

    /// True if two signatures describe the same bug: same kind and the same
    /// multiset of (outer, inner) position pairs.
    pub fn same_bug(&self, other: &Signature) -> bool {
        self.kind == other.kind && self.pairs == other.pairs
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} signature ({} threads):", self.kind, self.arity())?;
        for (i, p) in self.pairs.iter().enumerate() {
            writeln!(f, "  thread#{i}: {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn pair(o: u32, i: u32) -> SignaturePair {
        SignaturePair::new(
            CallStack::single(Frame::new("outer", "o.rs", o)),
            CallStack::single(Frame::new("inner", "i.rs", i)),
        )
    }

    #[test]
    fn pair_order_does_not_matter() {
        let a = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 4)]);
        let b = Signature::new(SignatureKind::Deadlock, vec![pair(3, 4), pair(1, 2)]);
        assert_eq!(a, b);
        assert!(a.same_bug(&b));
    }

    #[test]
    fn different_positions_are_different_bugs() {
        let a = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 4)]);
        let b = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 5)]);
        assert!(!a.same_bug(&b));
    }

    #[test]
    fn kind_distinguishes_bugs() {
        let a = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2)]);
        let b = Signature::new(SignatureKind::Starvation, vec![pair(1, 2)]);
        assert!(!a.same_bug(&b));
    }

    #[test]
    fn accessors_expose_outer_and_inner() {
        let s = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 4)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.outer_stacks().count(), 2);
        assert_eq!(s.inner_stacks().count(), 2);
        assert!(format!("{s}").contains("deadlock"));
    }

    #[test]
    fn display_mentions_kind() {
        assert_eq!(SignatureKind::Deadlock.to_string(), "deadlock");
        assert_eq!(SignatureKind::Starvation.to_string(), "starvation");
    }
}
