//! Deadlock and starvation signatures.
//!
//! A deadlock signature (§2.1) approximates the execution flow that led to a
//! deadlock: for each deadlocked thread it records the call stack the thread
//! had when it acquired the lock it holds in the cycle (the *outer* stack)
//! and the call stack it had at the moment of the deadlock (the *inner*
//! stack). Only outer stacks matter for avoidance; inner stacks are retained
//! for diagnosis. A deadlock bug is identified by its set of outer and inner
//! positions; occurrences at different positions are different bugs.

use crate::callstack::{fnv1a, CallStack, SiteKey};
use std::fmt;

/// One (outer, inner) call-stack pair of a signature: the contribution of one
/// deadlocked thread.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignaturePair {
    /// Call stack at the acquisition of the lock held in the cycle.
    pub outer: CallStack,
    /// Call stack at the moment of the deadlock (the blocked request).
    pub inner: CallStack,
}

impl SignaturePair {
    /// Creates a pair from its outer and inner stacks.
    pub fn new(outer: CallStack, inner: CallStack) -> Self {
        SignaturePair { outer, inner }
    }
}

impl fmt::Display for SignaturePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outer [{}] / inner [{}]",
            self.outer.to_compact(),
            self.inner.to_compact()
        )
    }
}

/// Whether a signature records a real deadlock or an avoidance-induced
/// deadlock (starvation, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignatureKind {
    /// A mutual-exclusion deadlock detected as a RAG cycle.
    Deadlock,
    /// A starvation condition created by Dimmunix's own avoidance decisions.
    Starvation,
}

impl fmt::Display for SignatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureKind::Deadlock => write!(f, "deadlock"),
            SignatureKind::Starvation => write!(f, "starvation"),
        }
    }
}

/// A persistent antibody: the signature of one previously observed deadlock
/// or starvation.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, Signature, SignatureKind, SignaturePair};
/// let sig = Signature::new(
///     SignatureKind::Deadlock,
///     vec![
///         SignaturePair::new(
///             CallStack::single(Frame::new("Nms.enqueue", "nms.java", 310)),
///             CallStack::single(Frame::new("Nms.cancel", "nms.java", 402)),
///         ),
///         SignaturePair::new(
///             CallStack::single(Frame::new("SbS.handleMessage", "sbs.java", 120)),
///             CallStack::single(Frame::new("SbS.expand", "sbs.java", 88)),
///         ),
///     ],
/// );
/// assert_eq!(sig.arity(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    kind: SignatureKind,
    pairs: Vec<SignaturePair>,
}

impl Signature {
    /// Creates a signature. Pairs are kept in a canonical (sorted) order so
    /// that the same deadlock observed from different threads' perspectives
    /// produces an identical signature, which is what history deduplication
    /// relies on.
    pub fn new(kind: SignatureKind, mut pairs: Vec<SignaturePair>) -> Self {
        pairs.sort();
        Signature { kind, pairs }
    }

    /// The signature kind.
    pub fn kind(&self) -> SignatureKind {
        self.kind
    }

    /// The (outer, inner) pairs, in canonical order.
    pub fn pairs(&self) -> &[SignaturePair] {
        &self.pairs
    }

    /// Number of threads involved in the recorded deadlock.
    pub fn arity(&self) -> usize {
        self.pairs.len()
    }

    /// Outer call stacks only — the part relevant for avoidance.
    pub fn outer_stacks(&self) -> impl Iterator<Item = &CallStack> {
        self.pairs.iter().map(|p| &p.outer)
    }

    /// Inner call stacks only — kept for diagnosis.
    pub fn inner_stacks(&self) -> impl Iterator<Item = &CallStack> {
        self.pairs.iter().map(|p| &p.inner)
    }

    /// True if two signatures describe the same bug: same kind and the same
    /// multiset of (outer, inner) position pairs.
    pub fn same_bug(&self, other: &Signature) -> bool {
        self.kind == other.kind && self.pairs == other.pairs
    }

    /// The stable site keys of the outer stacks, in pair order — the part
    /// of the signature foreign-antibody screening matches on.
    pub fn outer_site_keys(&self) -> impl Iterator<Item = SiteKey> + '_ {
        self.pairs.iter().map(|p| p.outer.site_key())
    }

    /// Stable content fingerprint of the signature: an FNV-1a hash over the
    /// kind and the **sorted** multiset of per-pair `(outer, inner)`
    /// [`SiteKey`]s.
    ///
    /// Unlike the history's in-process dedup fingerprint (which hashes the
    /// exact stacks and is never persisted), this fingerprint is built
    /// entirely from normalized site keys, so the same bug detected by two
    /// differently compiled binaries of the same program — absolute line
    /// numbers shifted, pair order therefore possibly different — hashes to
    /// the same value. It is the join key of antibody-pack merge in
    /// `dimmunix-exchange`.
    pub fn stable_fingerprint(&self) -> u64 {
        let mut keyed: Vec<(u64, u64)> = self
            .pairs
            .iter()
            .map(|p| (p.outer.site_key().raw(), p.inner.site_key().raw()))
            .collect();
        // The canonical pair order (`Signature::new` sorts by stack
        // content) depends on absolute lines, so re-sort by key.
        keyed.sort_unstable();
        let mut hash = fnv1a(
            0xcbf2_9ce4_8422_2325,
            &[match self.kind {
                SignatureKind::Deadlock => 0u8,
                SignatureKind::Starvation => 1u8,
            }],
        );
        for (outer, inner) in keyed {
            hash = fnv1a(hash, &outer.to_le_bytes());
            hash = fnv1a(hash, &inner.to_le_bytes());
        }
        hash
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} signature ({} threads):", self.kind, self.arity())?;
        for (i, p) in self.pairs.iter().enumerate() {
            writeln!(f, "  thread#{i}: {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn pair(o: u32, i: u32) -> SignaturePair {
        SignaturePair::new(
            CallStack::single(Frame::new("outer", "o.rs", o)),
            CallStack::single(Frame::new("inner", "i.rs", i)),
        )
    }

    #[test]
    fn pair_order_does_not_matter() {
        let a = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 4)]);
        let b = Signature::new(SignatureKind::Deadlock, vec![pair(3, 4), pair(1, 2)]);
        assert_eq!(a, b);
        assert!(a.same_bug(&b));
    }

    #[test]
    fn different_positions_are_different_bugs() {
        let a = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 4)]);
        let b = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 5)]);
        assert!(!a.same_bug(&b));
    }

    #[test]
    fn kind_distinguishes_bugs() {
        let a = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2)]);
        let b = Signature::new(SignatureKind::Starvation, vec![pair(1, 2)]);
        assert!(!a.same_bug(&b));
    }

    #[test]
    fn accessors_expose_outer_and_inner() {
        let s = Signature::new(SignatureKind::Deadlock, vec![pair(1, 2), pair(3, 4)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.outer_stacks().count(), 2);
        assert_eq!(s.inner_stacks().count(), 2);
        assert!(format!("{s}").contains("deadlock"));
    }

    /// The exchange join key: the same bug re-rendered at shifted line
    /// numbers (and therefore with a different canonical pair order) must
    /// keep its stable fingerprint, while genuinely different bugs differ.
    #[test]
    fn stable_fingerprint_survives_recompilation() {
        let render = |delta: u32| {
            Signature::new(
                SignatureKind::Deadlock,
                vec![
                    SignaturePair::new(
                        CallStack::single(Frame::new("a.outer", "a.rs", 10 + delta)),
                        CallStack::single(Frame::new("a.inner", "a.rs", 11 + delta)),
                    ),
                    SignaturePair::new(
                        CallStack::single(Frame::new("b.outer", "b.rs", 20 + delta)),
                        CallStack::single(Frame::new("b.inner", "b.rs", 21 + delta)),
                    ),
                ],
            )
        };
        let fp = render(0).stable_fingerprint();
        for delta in [3, 77, 1000] {
            assert_eq!(render(delta).stable_fingerprint(), fp, "shift {delta}");
        }
        // Different method names are a different bug; so is the kind.
        let other = Signature::new(
            SignatureKind::Deadlock,
            vec![SignaturePair::new(
                CallStack::single(Frame::new("x.outer", "a.rs", 10)),
                CallStack::single(Frame::new("a.inner", "a.rs", 11)),
            )],
        );
        assert_ne!(other.stable_fingerprint(), fp);
        let starved = Signature::new(SignatureKind::Starvation, render(0).pairs().to_vec());
        assert_ne!(starved.stable_fingerprint(), fp);
        // Outer keys are exposed per pair for screening.
        assert_eq!(render(0).outer_site_keys().count(), 2);
    }

    #[test]
    fn display_mentions_kind() {
        assert_eq!(SignatureKind::Deadlock.to_string(), "deadlock");
        assert_eq!(SignatureKind::Starvation.to_string(), "starvation");
    }
}
