//! The persistent deadlock history.
//!
//! The history is the set of antibodies a process has developed: every
//! signature that was ever detected (deadlock or starvation). It is persisted
//! across process restarts — on the phone, across reboots — which is what
//! turns a one-time hang into permanent immunity (§2.1, §5 case study).
//!
//! Three codecs are provided:
//! * a line-oriented text format close in spirit to the original Dimmunix
//!   history files,
//! * a self-contained JSON format convenient for tooling (hand-rolled: the
//!   build environment has no crates.io access, so `serde` is unavailable),
//!   and
//! * an **append-only log** ([`HistoryLog`]): one self-delimiting JSON
//!   record per detected signature, appended as the engine runs and
//!   replayed at start-up. Appending a ~200-byte record is what a detection
//!   costs on disk, instead of rewriting the whole store; a crash can at
//!   worst leave a partial final record, which replay detects and
//!   [`recover`](HistoryLog::recover) truncates away.
//!
//! Position-indexed queries over the history (the avoidance and release hot
//! paths) live in [`SignatureIndex`](crate::SignatureIndex), which lives
//! once per process inside the shared
//! [`HistorySnapshot`](crate::HistorySnapshot); `History` itself stays a
//! plain signature store.

use crate::callstack::CallStack;
use crate::error::{DimmunixError, Result};
use crate::json::{self, JsonValue};
use crate::pvec::{PersistentMap, PersistentVec};
use crate::signature::{Signature, SignatureKind, SignaturePair};
use crate::SignatureId;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A persistent collection of deadlock/starvation signatures.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, History, Signature, SignatureKind, SignaturePair};
/// let mut h = History::new();
/// let sig = Signature::new(SignatureKind::Deadlock, vec![SignaturePair::new(
///     CallStack::single(Frame::new("a", "a.rs", 1)),
///     CallStack::single(Frame::new("b", "b.rs", 2)),
/// )]);
/// let (id, added) = h.add(sig.clone());
/// assert!(added);
/// let (id2, added2) = h.add(sig);
/// assert_eq!(id, id2);
/// assert!(!added2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct History {
    /// One slot per id ever assigned, in id order. Retired (evicted)
    /// signatures stay in place as dead slots so ids never shift; every
    /// reader filters on [`Slot::live`]. Backed by a structurally-shared
    /// persistent vector so cloning the history for the next
    /// [`HistorySnapshot`](crate::HistorySnapshot) is O(1) and adding a
    /// signature path-copies O(log₃₂ n) nodes instead of the whole store.
    slots: PersistentVec<Slot>,
    /// Dedup index: signature fingerprint -> indices of signatures with
    /// that fingerprint. `add`/`find` hash the candidate and compare
    /// (`same_bug`) only within its bucket, so bulk log replay of `n`
    /// records costs O(n) signature comparisons instead of the O(n²) a
    /// linear scan per record used to cost. Buckets keep retired ids (the
    /// liveness check happens per hit); a re-detected evicted bug gets a
    /// fresh id in the same bucket.
    by_fingerprint: PersistentMap<u64, Vec<u32>>,
    /// Live (non-retired) slot count; `len()` reports this.
    live: usize,
}

/// One id's worth of history: the signature, whether it is still live, and
/// the epoch it last matched (for generation-based eviction).
#[derive(Debug, Clone)]
struct Slot {
    sig: Arc<Signature>,
    live: bool,
    /// Snapshot epoch at which this signature last matched an avoidance
    /// check (or was born / re-detected). Shared via `Arc` across every
    /// snapshot generation that contains the slot, so a match observed
    /// through one snapshot is visible to eviction decisions taken on a
    /// later one without rebuilding anything.
    last_matched: Arc<AtomicU64>,
}

/// Deterministic fingerprint of a signature, collision-safe for dedup use:
/// `same_bug` compares the kind and the canonically ordered pair list, and
/// the fingerprint hashes exactly those, so equal bugs always share a
/// fingerprint (collisions between different bugs only cost an extra
/// `same_bug` comparison).
fn fingerprint(sig: &Signature) -> u64 {
    // `DefaultHasher::new()` is keyed with fixed constants, so the
    // fingerprint is stable within a process run (it is never persisted).
    let mut h = DefaultHasher::new();
    sig.kind().hash(&mut h);
    for pair in sig.pairs() {
        pair.hash(&mut h);
    }
    h.finish()
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Number of live (non-retired) signatures.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the history holds no live signatures.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of id slots ever assigned, including retired ones. New ids
    /// are allocated past this point, so ids are never reused even after
    /// eviction.
    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }

    /// Adds a signature unless an identical one (same bug) is already live.
    /// Returns the signature's id and whether it was newly inserted.
    pub fn add(&mut self, sig: Signature) -> (SignatureId, bool) {
        let fp = fingerprint(&sig);
        // One traversal serves both the duplicate check and the bucket
        // fetch — `append` runs on every detection, so the map walk is the
        // hot part of this path.
        let mut bucket = match self.by_fingerprint.get(&fp) {
            Some(bucket) => {
                if let Some(existing) = self.find_in_bucket(bucket, &sig) {
                    return (existing, false);
                }
                bucket.clone()
            }
            None => Vec::new(),
        };
        let id = SignatureId::new(self.slots.len());
        bucket.push(id.index() as u32);
        self.by_fingerprint = self.by_fingerprint.insert(fp, bucket).0;
        self.slots = self.slots.push(Slot {
            sig: Arc::new(sig),
            live: true,
            last_matched: Arc::new(AtomicU64::new(0)),
        });
        self.live += 1;
        (id, true)
    }

    /// Finds the id of a live signature describing the same bug, if present.
    pub fn find(&self, sig: &Signature) -> Option<SignatureId> {
        self.find_by_fingerprint(fingerprint(sig), sig)
    }

    fn find_by_fingerprint(&self, fp: u64, sig: &Signature) -> Option<SignatureId> {
        self.by_fingerprint
            .get(&fp)
            .and_then(|bucket| self.find_in_bucket(bucket, sig))
    }

    fn find_in_bucket(&self, bucket: &[u32], sig: &Signature) -> Option<SignatureId> {
        bucket
            .iter()
            .find(|idx| {
                let slot = self
                    .slots
                    .get(**idx as usize)
                    .expect("fingerprint buckets only hold assigned ids");
                slot.live && slot.sig.same_bug(sig)
            })
            .map(|idx| SignatureId::new(*idx as usize))
    }

    /// Retires the signature with the given id (generation-based eviction).
    /// The id slot stays allocated — ids are never reused — but every query
    /// (`len`, `get`, `find`, `iter`, the codecs) stops seeing it. Returns
    /// whether the id was live.
    pub fn retire(&mut self, id: SignatureId) -> bool {
        match self.slots.get(id.index()) {
            Some(slot) if slot.live => {
                let retired = Slot {
                    live: false,
                    ..slot.clone()
                };
                self.slots = self.slots.set(id.index(), retired);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// True if `id` names a live (non-retired) signature.
    pub fn is_live(&self, id: SignatureId) -> bool {
        self.slots.get(id.index()).is_some_and(|s| s.live)
    }

    /// Records that the signature matched (was instantiated against, found
    /// as a duplicate, or born) at the given snapshot epoch. Works through
    /// a shared interior-mutable cell, so it is callable on the immutable
    /// Arc-shared snapshot from the avoidance hot path; monotonic
    /// (`fetch_max`), so concurrent shards cannot move activity backwards.
    pub fn note_matched(&self, id: SignatureId, epoch: u64) {
        if let Some(slot) = self.slots.get(id.index()) {
            slot.last_matched.fetch_max(epoch, Ordering::Relaxed);
        }
    }

    /// The epoch at which the live signature `id` last matched, if any.
    pub fn last_matched(&self, id: SignatureId) -> Option<u64> {
        self.slots
            .get(id.index())
            .filter(|s| s.live)
            .map(|s| s.last_matched.load(Ordering::Relaxed))
    }

    /// Iterates `(id, last-matched epoch)` over live signatures — the
    /// input to generation-based eviction candidate selection.
    pub fn activity_iter(&self) -> impl Iterator<Item = (SignatureId, u64)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(i, s)| (SignatureId::new(i), s.last_matched.load(Ordering::Relaxed)))
    }

    /// Dedup-index diagnostics: `(bucket count, largest bucket)`. The
    /// largest bucket bounds the `same_bug` comparisons one `add`/`find`
    /// performs; replay-cost tests assert it stays O(1) for histories of
    /// distinct bugs.
    pub fn dedup_buckets(&self) -> (usize, usize) {
        (
            self.by_fingerprint.len(),
            self.by_fingerprint
                .values()
                .map(Vec::len)
                .max()
                .unwrap_or(0),
        )
    }

    /// Returns the live signature with the given id (retired ids read as
    /// absent).
    pub fn get(&self, id: SignatureId) -> Option<&Signature> {
        self.slots
            .get(id.index())
            .filter(|s| s.live)
            .map(|s| &*s.sig)
    }

    /// Iterates over live `(id, signature)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SignatureId, &Signature)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(i, s)| (SignatureId::new(i), &*s.sig))
    }

    /// Ids of signatures whose outer stacks include `stack`. Used on the
    /// release path: when a lock acquired at a history position is released,
    /// every thread parked on a signature containing that position must be
    /// woken (§4).
    pub fn signatures_with_outer(&self, stack: &CallStack) -> Vec<SignatureId> {
        // Cold path: the engine answers this query from its position-keyed
        // `SignatureIndex`; this stack-keyed form exists for tooling and
        // substrates that hold a bare history.
        self.iter()
            .filter(|(_, s)| s.outer_stacks().any(|o| o == stack))
            .map(|(id, _)| id)
            .collect()
    }

    /// Merges another history into this one, deduplicating; returns the
    /// number of newly added signatures. Useful when a vendor ships
    /// pre-seeded antibodies with an application update.
    pub fn merge(&mut self, other: &History) -> usize {
        let mut added = 0;
        for (_, sig) in other.iter() {
            if self.add(sig.clone()).1 {
                added += 1;
            }
        }
        added
    }

    /// Estimated resident memory of the history in bytes (memory-overhead
    /// accounting for Table 1).
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        total += self.by_fingerprint.len()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>());
        total += self
            .by_fingerprint
            .values()
            .map(|b| b.capacity() * std::mem::size_of::<u32>())
            .sum::<usize>();
        for slot in self.slots.iter() {
            total += std::mem::size_of::<Slot>();
            if !slot.live {
                continue;
            }
            let sig = &*slot.sig;
            total += std::mem::size_of::<Signature>();
            for p in sig.pairs() {
                for s in [&p.outer, &p.inner] {
                    total += std::mem::size_of::<CallStack>();
                    for f in s.frames() {
                        total += std::mem::size_of_val(f) + f.method().len() + f.file().len();
                    }
                }
            }
        }
        total
    }

    // ------------------------------------------------------------------
    // Text codec
    // ------------------------------------------------------------------

    /// Serializes the history into the line-oriented text format.
    ///
    /// Format, one signature per block:
    /// ```text
    /// #sig <kind> <arity>
    /// <outer compact stack>
    /// <inner compact stack>
    /// ...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (_, sig) in self.iter() {
            let kind = match sig.kind() {
                SignatureKind::Deadlock => "deadlock",
                SignatureKind::Starvation => "starvation",
            };
            out.push_str(&format!("#sig {kind} {}\n", sig.arity()));
            for pair in sig.pairs() {
                out.push_str(&pair.outer.to_compact());
                out.push('\n');
                out.push_str(&pair.inner.to_compact());
                out.push('\n');
            }
        }
        out
    }

    /// Parses the text format produced by [`to_text`].
    ///
    /// ```
    /// use dimmunix_core::History;
    /// let text = "\
    /// #sig deadlock 2
    /// Nms.enqueue@nms.java:310
    /// Nms.cancel@nms.java:402
    /// SbS.handleMessage@sbs.java:120
    /// SbS.expand@sbs.java:88
    /// ";
    /// let history = History::from_text(text)?;
    /// assert_eq!(history.len(), 1);
    /// assert_eq!(History::from_text(&history.to_text())?.len(), 1);
    /// # Ok::<(), dimmunix_core::DimmunixError>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`DimmunixError::Parse`] for malformed input.
    ///
    /// [`to_text`]: History::to_text
    pub fn from_text(text: &str) -> Result<History> {
        let mut history = History::new();
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i].trim();
            if line.is_empty() {
                i += 1;
                continue;
            }
            let rest = line.strip_prefix("#sig ").ok_or(DimmunixError::Parse {
                line: i + 1,
                message: format!("expected `#sig`, found `{line}`"),
            })?;
            let mut parts = rest.split_whitespace();
            let kind = match parts.next() {
                Some("deadlock") => SignatureKind::Deadlock,
                Some("starvation") => SignatureKind::Starvation,
                other => {
                    return Err(DimmunixError::Parse {
                        line: i + 1,
                        message: format!("unknown signature kind {other:?}"),
                    })
                }
            };
            let arity: usize =
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimmunixError::Parse {
                        line: i + 1,
                        message: "missing or invalid arity".into(),
                    })?;
            i += 1;
            let mut pairs = Vec::with_capacity(arity);
            for _ in 0..arity {
                if i >= lines.len() {
                    return Err(DimmunixError::Parse {
                        line: i,
                        message: "truncated signature block".into(),
                    });
                }
                let outer_line = lines.get(i).ok_or(DimmunixError::Parse {
                    line: i,
                    message: "missing outer stack line".into(),
                })?;
                let inner_line = lines.get(i + 1).ok_or(DimmunixError::Parse {
                    line: i + 1,
                    message: "missing inner stack line".into(),
                })?;
                let outer =
                    CallStack::parse_compact(outer_line).map_err(|m| DimmunixError::Parse {
                        line: i + 1,
                        message: m,
                    })?;
                let inner =
                    CallStack::parse_compact(inner_line).map_err(|m| DimmunixError::Parse {
                        line: i + 2,
                        message: m,
                    })?;
                pairs.push(SignaturePair::new(outer, inner));
                i += 2;
            }
            history.add(Signature::new(kind, pairs));
        }
        Ok(history)
    }

    // ------------------------------------------------------------------
    // File persistence
    // ------------------------------------------------------------------

    /// Writes the history to `path` in the text format, atomically
    /// (write-then-rename) so a crash cannot corrupt the antibody store.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_text(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a text-format history from `path`; an absent file yields an
    /// empty history (a fresh phone has no antibodies yet).
    ///
    /// # Errors
    /// Propagates filesystem errors other than "not found" and parse errors.
    pub fn load_text(path: impl AsRef<Path>) -> Result<History> {
        match fs::read_to_string(path.as_ref()) {
            Ok(text) => History::from_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(History::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Serializes the history as pretty JSON. Stacks are encoded in the same
    /// compact `method@file:line;…` form the text codec uses, so the two
    /// codecs share one stack grammar.
    ///
    /// # Errors
    /// Never fails; the signature is kept for API stability.
    pub fn to_json(&self) -> Result<String> {
        let mut out = String::from("{\n  \"signatures\": [");
        for (i, (_, sig)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"kind\": ");
            json::write_escaped(&mut out, &sig.kind().to_string());
            out.push_str(",\n      \"pairs\": [");
            for (j, pair) in sig.pairs().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\"outer\": ");
                json::write_escaped(&mut out, &pair.outer.to_compact());
                out.push_str(", \"inner\": ");
                json::write_escaped(&mut out, &pair.inner.to_compact());
                out.push('}');
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}");
        Ok(out)
    }

    /// Parses a JSON history produced by [`to_json`](History::to_json).
    ///
    /// ```
    /// use dimmunix_core::History;
    /// let json = r#"{"signatures": [{"kind": "deadlock", "pairs": [
    ///     {"outer": "a@a.rs:1", "inner": "b@b.rs:2"},
    ///     {"outer": "c@c.rs:3", "inner": "d@d.rs:4"}
    /// ]}]}"#;
    /// let history = History::from_json(json)?;
    /// assert_eq!(history.len(), 1);
    /// let roundtrip = History::from_json(&history.to_json()?)?;
    /// assert_eq!(roundtrip.len(), 1);
    /// # Ok::<(), dimmunix_core::DimmunixError>(())
    /// ```
    ///
    /// # Errors
    /// Returns a parse error for malformed JSON.
    pub fn from_json(text: &str) -> Result<History> {
        let parse_err = |message: String| DimmunixError::Parse { line: 0, message };
        let doc = json::parse(text).map_err(|e| parse_err(format!("json decode: {e}")))?;
        let sigs = doc
            .get("signatures")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| parse_err("missing `signatures` array".into()))?;
        let mut history = History::new();
        for sig in sigs {
            history.add(signature_from_json_value(sig)?);
        }
        Ok(history)
    }

    /// Replays an append-only signature log (the format written by
    /// [`HistoryLog`]): one single-line JSON record per signature, in
    /// detection order. A record counts as committed only once its
    /// terminating newline is on disk; a partial final record — what a
    /// crash in the middle of an append leaves behind — is tolerated and
    /// reported through [`LogReplay::truncated_tail`]. A malformed record
    /// anywhere *before* the tail is genuine corruption and is an error.
    ///
    /// ```
    /// use dimmunix_core::History;
    /// let log = concat!(
    ///     r#"{"kind": "deadlock", "pairs": [{"outer": "a@a.rs:1", "inner": "b@b.rs:2"},"#,
    ///     r#" {"outer": "c@c.rs:3", "inner": "d@d.rs:4"}]}"#,
    ///     "\n",
    ///     r#"{"kind": "starva"#, // the crash ate the rest of this record
    /// );
    /// let replay = History::replay_log_text(log)?;
    /// assert_eq!(replay.history.len(), 1);
    /// assert_eq!(replay.records, 1);
    /// assert!(replay.truncated_tail);
    /// # Ok::<(), dimmunix_core::DimmunixError>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`DimmunixError::Parse`] for a malformed non-tail record.
    pub fn replay_log_text(text: &str) -> Result<LogReplay> {
        let mut history = History::new();
        let mut records = 0usize;
        let mut truncated_tail = false;
        let mut valid_len = 0usize;

        // Lines with their byte offsets, so the valid prefix length can be
        // reported for tail repair.
        let mut offset = 0usize;
        let mut lines: Vec<(usize, usize, &str)> = Vec::new(); // (line_no, offset, line)
        for (line_no, line) in text.split_inclusive('\n').enumerate() {
            lines.push((line_no + 1, offset, line));
            offset += line.len();
        }
        let last_content = lines
            .iter()
            .rposition(|(_, _, l)| !l.trim().is_empty())
            .unwrap_or(0);

        for (i, (line_no, start, line)) in lines.iter().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                valid_len = start + line.len();
                continue;
            }
            match signature_from_log_record(trimmed) {
                // A record is committed once its terminating newline is on
                // disk (appends write record + newline in one call). A
                // complete-looking record without the terminator is treated
                // exactly like a partial one, so replay and tail repair
                // always agree on the committed prefix.
                Ok(sig) if line.ends_with('\n') => {
                    history.add(sig);
                    records += 1;
                    valid_len = start + line.len();
                }
                Ok(_) => {
                    truncated_tail = true;
                }
                Err(e) if i == last_content => {
                    // Partial final record: the append was interrupted.
                    let _ = e;
                    truncated_tail = true;
                    break;
                }
                Err(e) => {
                    return Err(DimmunixError::Parse {
                        line: *line_no,
                        message: format!("corrupt log record: {e}"),
                    })
                }
            }
        }

        Ok(LogReplay {
            history,
            records,
            truncated_tail,
            valid_len,
        })
    }
}

/// Outcome of replaying an append-only signature log (see
/// [`History::replay_log_text`] and [`HistoryLog::replay`]).
#[derive(Debug, Clone)]
pub struct LogReplay {
    /// The signatures reconstructed from the well-formed prefix of the log
    /// (duplicates are merged, exactly as live detections are).
    pub history: History,
    /// Number of well-formed records applied.
    pub records: usize,
    /// True if the log ended in a partial record (a crash interrupted an
    /// append) that was discarded. [`HistoryLog::recover`] truncates the
    /// file back to the well-formed prefix in that case.
    pub truncated_tail: bool,
    /// Byte length of the well-formed, newline-terminated prefix; the file
    /// length appends may safely resume from.
    pub valid_len: usize,
}

/// Diagnostics of the history-log recovery an engine performed at
/// construction (see [`Dimmunix::recovery_report`]). Before this report
/// existed, a truncated or quarantined log made the engine start silently
/// empty — operationally indistinguishable from a phone that had simply
/// never deadlocked. Substrates surface the report so operators can tell
/// "no antibodies" apart from "antibodies lost to corruption".
///
/// [`Dimmunix::recovery_report`]: crate::Dimmunix::recovery_report
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Well-formed log records replayed into the starting history.
    pub replayed: usize,
    /// True if the log ended in a crash-partial record that recovery
    /// truncated away (the record's detection never committed).
    pub truncated_tail: bool,
    /// Raw records abandoned because the log was interior-corrupt and had
    /// to be quarantined (counted best-effort from the quarantined file;
    /// some of them may themselves be the corruption).
    pub quarantined_records: usize,
    /// Where the corrupt log was moved, if a quarantine happened.
    pub quarantine_path: Option<std::path::PathBuf>,
}

impl RecoveryReport {
    /// True if recovery was entirely clean: every record replayed, no tail
    /// repair, no quarantine.
    pub fn is_clean(&self) -> bool {
        !self.truncated_tail && self.quarantined_records == 0 && self.quarantine_path.is_none()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replayed {} record(s)", self.replayed)?;
        if self.truncated_tail {
            write!(f, ", truncated a crash-partial tail record")?;
        }
        // Report dropped records even when the quarantine rename itself
        // failed — that is the worst case to stay silent about.
        if self.quarantined_records > 0 || self.quarantine_path.is_some() {
            write!(
                f,
                ", abandoned {} unreadable record(s)",
                self.quarantined_records
            )?;
            match &self.quarantine_path {
                Some(path) => write!(f, " (quarantined to {})", path.display())?,
                None => write!(f, " (quarantine failed; corrupt log left in place)")?,
            }
        }
        Ok(())
    }
}

/// Encodes one signature as a single-line, self-delimiting JSON log record.
///
/// The record is the element format of [`History::to_json`]'s `signatures`
/// array, flattened to one line — JSON strings escape raw newlines, so a
/// newline always terminates a record and the log is self-delimiting.
///
/// Since the exchange layer exists, each record also carries the
/// signature's stable content fingerprint
/// ([`Signature::stable_fingerprint`]) as an `fp` field: 16 lowercase hex
/// digits derived from normalized site keys, not absolute lines. Legacy
/// records without the field replay unchanged (the fingerprint is a pure
/// function of the stacks and is recomputed); a record *with* the field
/// must agree with the recomputation, which makes a tampered or bit-rotted
/// record detectable instead of silently importing a wrong antibody.
pub fn signature_to_log_record(sig: &Signature) -> String {
    let mut out = String::from("{\"kind\": ");
    json::write_escaped(&mut out, &sig.kind().to_string());
    out.push_str(", \"pairs\": [");
    for (j, pair) in sig.pairs().iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"outer\": ");
        json::write_escaped(&mut out, &pair.outer.to_compact());
        out.push_str(", \"inner\": ");
        json::write_escaped(&mut out, &pair.inner.to_compact());
        out.push('}');
    }
    out.push_str("], \"fp\": ");
    json::write_escaped(&mut out, &format!("{:016x}", sig.stable_fingerprint()));
    out.push('}');
    out
}

/// Parses one log record produced by [`signature_to_log_record`].
///
/// # Errors
/// Returns [`DimmunixError::Parse`] for malformed records.
pub fn signature_from_log_record(line: &str) -> Result<Signature> {
    let parse_err = |message: String| DimmunixError::Parse { line: 0, message };
    let value = json::parse(line).map_err(parse_err)?;
    signature_from_json_value(&value)
}

/// Decodes one signature object (`{"kind": …, "pairs": […]}`), shared by the
/// JSON history codec, the log record codec, and the antibody-pack codec in
/// `dimmunix-exchange`.
///
/// # Errors
/// Returns [`DimmunixError::Parse`] for malformed objects or records whose
/// declared `fp` disagrees with the recomputed fingerprint.
pub fn signature_from_json_value(sig: &JsonValue) -> Result<Signature> {
    let parse_err = |message: String| DimmunixError::Parse { line: 0, message };
    let kind = match sig.get("kind").and_then(JsonValue::as_str) {
        Some("deadlock") => SignatureKind::Deadlock,
        Some("starvation") => SignatureKind::Starvation,
        other => return Err(parse_err(format!("unknown signature kind {other:?}"))),
    };
    let raw_pairs = sig
        .get("pairs")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| parse_err("missing `pairs` array".into()))?;
    let mut pairs = Vec::with_capacity(raw_pairs.len());
    for p in raw_pairs {
        let stack = |key: &str| -> Result<CallStack> {
            let compact = p
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| parse_err(format!("pair is missing `{key}`")))?;
            CallStack::parse_compact(compact).map_err(parse_err)
        };
        pairs.push(SignaturePair::new(stack("outer")?, stack("inner")?));
    }
    let parsed = Signature::new(kind, pairs);
    // Optional stable-fingerprint field (absent in legacy records): when
    // present it must match the recomputation from the stacks, so a record
    // whose content and declared identity disagree is rejected as corrupt
    // rather than replayed into the history.
    if let Some(declared) = sig.get("fp").and_then(JsonValue::as_str) {
        let declared = u64::from_str_radix(declared, 16)
            .map_err(|_| parse_err("non-hex `fp` field".into()))?;
        let actual = parsed.stable_fingerprint();
        if declared != actual {
            return Err(parse_err(format!(
                "fingerprint mismatch: record declares {declared:016x}, content hashes to {actual:016x}"
            )));
        }
    }
    Ok(parsed)
}

/// Handle on an append-only signature log file — the engine's persistent
/// antibody store.
///
/// A detection appends **one record** ([`append`](HistoryLog::append));
/// start-up replays the whole file ([`recover`](HistoryLog::recover),
/// which also truncates a crash-partial tail so later appends land on a
/// clean record boundary). [`compact`](HistoryLog::compact) is the offline
/// maintenance entry point: it deduplicates and rewrites the log
/// atomically.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, HistoryLog, Signature, SignatureKind, SignaturePair};
/// let path = std::env::temp_dir().join(format!("dimmunix-doc-{}.log", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
/// let log = HistoryLog::new(&path);
/// let sig = Signature::new(SignatureKind::Deadlock, vec![SignaturePair::new(
///     CallStack::single(Frame::new("a", "a.rs", 1)),
///     CallStack::single(Frame::new("b", "b.rs", 2)),
/// )]);
/// log.append(&sig)?;
/// log.append(&sig)?; // the log itself is dumb — duplicates merge on replay
/// let replay = log.replay()?;
/// assert_eq!(replay.records, 2);
/// assert_eq!(replay.history.len(), 1);
/// assert!(!replay.truncated_tail);
/// assert_eq!(log.compact()?.history.len(), 1); // rewrites 1 deduped record
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), dimmunix_core::DimmunixError>(())
/// ```
///
/// ## Segmentation
///
/// With [`with_segment_records`](HistoryLog::with_segment_records) the log
/// rolls to a new fixed-size segment once the active one reaches the
/// configured record count: segment 0 is `<path>` itself (so an unsegmented
/// log is just a one-segment log, byte-for-byte) and segment *N* is
/// `<path>.segN`. Appends only ever touch the last segment; replay walks the
/// segments in order and merges them through the fingerprint dedup, so a
/// crash-partial tail is only legal in the **last** segment — a mid-chain
/// torn record means interior corruption and quarantines the whole chain,
/// exactly as a torn interior record did in the single-file case.
#[derive(Debug, Clone)]
pub struct HistoryLog {
    path: std::path::PathBuf,
    sync: bool,
    /// Records per segment before appends roll to the next one;
    /// `usize::MAX` (the constructor default) keeps the log single-file.
    segment_records: usize,
}

impl HistoryLog {
    /// Creates a handle on the log at `path` (the file need not exist yet).
    /// Appends are fsynced by default; see [`with_sync`](HistoryLog::with_sync).
    /// The log is unsegmented until
    /// [`with_segment_records`](HistoryLog::with_segment_records) caps the
    /// segment size.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        HistoryLog {
            path: path.into(),
            sync: true,
            segment_records: usize::MAX,
        }
    }

    /// Caps each segment at `records` log records; appends roll to a fresh
    /// `<path>.segN` file past that. `0` is treated as unlimited
    /// (single-file). Replay and recovery do not depend on this setting —
    /// they always walk whatever segment chain exists on disk.
    pub fn with_segment_records(mut self, records: usize) -> Self {
        self.segment_records = if records == 0 { usize::MAX } else { records };
        self
    }

    /// Sets whether each append fsyncs the file. `true` (the default) makes
    /// an antibody durable the moment the detection returns — the
    /// paper-faithful choice, since the whole point is surviving the reboot
    /// that follows a freeze. `false` trades that durability for cheaper
    /// appends (the OS flushes eventually).
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    /// The log's base path (segment 0).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of segment `i`: the base path for segment 0, `<path>.segN`
    /// otherwise. The suffix is appended to the full file name (not swapped
    /// in with `set_extension`) so sibling logs sharing a stem cannot
    /// collide.
    fn segment_path(&self, i: usize) -> PathBuf {
        if i == 0 {
            return self.path.clone();
        }
        let mut name = self.path.clone().into_os_string();
        name.push(format!(".seg{i}"));
        PathBuf::from(name)
    }

    /// The contiguous chain of segment files present on disk, in replay
    /// order. An absent base file means an empty chain (stray higher
    /// segments without their predecessors are ignored, as replaying them
    /// out of context would resurrect records with no provenance).
    fn segments(&self) -> Vec<PathBuf> {
        let mut segs = Vec::new();
        loop {
            let seg = self.segment_path(segs.len());
            if !seg.exists() {
                break;
            }
            segs.push(seg);
        }
        segs
    }

    /// Raw (newline-separated, non-empty) record count of one segment file;
    /// 0 if unreadable.
    fn raw_records_in(path: &Path) -> usize {
        fs::read_to_string(path)
            .map(|text| text.lines().filter(|l| !l.trim().is_empty()).count())
            .unwrap_or(0)
    }

    /// The segment the next append should land in: the last existing
    /// segment, or the one after it if that segment is already at the
    /// configured capacity.
    fn active_segment(&self) -> PathBuf {
        let segs = self.segments();
        match segs.last() {
            None => self.path.clone(),
            Some(last) if Self::raw_records_in(last) >= self.segment_records => {
                self.segment_path(segs.len())
            }
            Some(last) => last.clone(),
        }
    }

    /// Appends one signature record (creating the file and its parent
    /// directories on first use, and rolling to a fresh segment when the
    /// active one is at capacity). This is the per-detection disk cost: one
    /// small record, not a rewrite of the store.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn append(&self, sig: &Signature) -> Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let target = self.active_segment();
        let created = !target.exists();
        let mut record = signature_to_log_record(sig);
        record.push('\n');
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&target)?;
        f.write_all(record.as_bytes())?;
        if self.sync {
            f.sync_all()?;
            if created {
                // A new file's directory entry is not durable until the
                // directory itself is synced; without this, the very first
                // antibody could vanish in the reboot that follows the
                // freeze — the one write the log exists for.
                self.sync_parent_dir()?;
            }
        }
        Ok(())
    }

    /// Fsyncs the log's parent directory so a freshly created or renamed
    /// directory entry survives a crash. POSIX-only; a no-op elsewhere
    /// (directories cannot be opened for syncing on other platforms).
    fn sync_parent_dir(&self) -> Result<()> {
        #[cfg(unix)]
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::File::open(parent)?.sync_all()?;
            }
        }
        Ok(())
    }

    /// Replays the log — every segment in order — without modifying it. A
    /// missing file is an empty history (a phone that has not deadlocked
    /// yet). Records deduplicate across segment boundaries through the same
    /// fingerprint index live detections use; `valid_len` and
    /// `truncated_tail` describe the **last** segment, the only one appends
    /// resume into.
    ///
    /// # Errors
    /// Propagates filesystem errors (other than "not found"), reports
    /// corrupt non-tail records as parse errors, and treats a torn tail in
    /// any segment but the last as interior corruption (nothing may
    /// legally be appended after it).
    pub fn replay(&self) -> Result<LogReplay> {
        let segs = self.segments();
        let mut history = History::new();
        let mut records = 0usize;
        let mut truncated_tail = false;
        let mut valid_len = 0usize;
        for (i, seg) in segs.iter().enumerate() {
            let text = fs::read_to_string(seg)?;
            let replay = History::replay_log_text(&text)?;
            let last = i + 1 == segs.len();
            if replay.truncated_tail && !last {
                return Err(DimmunixError::Parse {
                    line: 0,
                    message: format!(
                        "segment {} ends in a partial record but is not the last segment",
                        seg.display()
                    ),
                });
            }
            records += replay.records;
            history.merge(&replay.history);
            if last {
                truncated_tail = replay.truncated_tail;
                valid_len = replay.valid_len;
            }
        }
        Ok(LogReplay {
            history,
            records,
            truncated_tail,
            valid_len,
        })
    }

    /// Replays the log and, if it ends in a crash-partial record, truncates
    /// the file back to the well-formed prefix so the next append lands on
    /// a record boundary. This is the engine's start-up path.
    ///
    /// # Errors
    /// Propagates filesystem and parse errors as in [`replay`](HistoryLog::replay).
    pub fn recover(&self) -> Result<LogReplay> {
        let replay = self.replay()?;
        if replay.truncated_tail {
            // Only the last segment can legally carry a torn tail (replay
            // rejects interior ones), so that is the file to repair.
            let last = self
                .segments()
                .last()
                .cloned()
                .unwrap_or_else(|| self.path.clone());
            let f = fs::OpenOptions::new().write(true).open(last)?;
            f.set_len(replay.valid_len as u64)?;
            if self.sync {
                f.sync_all()?;
            }
        }
        Ok(replay)
    }

    /// Best-effort count of raw (newline-separated, non-empty) records
    /// across all segments, regardless of whether they parse — used to size
    /// [`RecoveryReport::quarantined_records`] when a corrupt log is set
    /// aside. Returns 0 if nothing can be read.
    pub fn raw_record_count(&self) -> usize {
        self.segments()
            .iter()
            .map(|seg| Self::raw_records_in(seg))
            .sum()
    }

    /// Moves a log that failed to replay aside (segment 0 to
    /// `<path>.corrupt`, segment *N* to `<path>.corrupt.segN`, replacing any
    /// previous quarantine) so the engine can start a fresh, replayable log
    /// while preserving the bytes for diagnosis. Without this, appends after
    /// interior corruption would land behind records that every future
    /// replay rejects — antibodies written but never readable again. The
    /// whole chain moves together: leaving higher segments behind would
    /// splice their records onto the fresh log with no provenance. Returns
    /// the quarantine base path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn quarantine(&self) -> Result<std::path::PathBuf> {
        let segs = self.segments();
        let target = self.path.with_extension("corrupt");
        for (i, seg) in segs.iter().enumerate() {
            let dest = if i == 0 {
                target.clone()
            } else {
                let mut name = target.clone().into_os_string();
                name.push(format!(".seg{i}"));
                PathBuf::from(name)
            };
            fs::rename(seg, &dest)?;
        }
        if segs.is_empty() {
            // Preserve the single-file contract: quarantining a missing log
            // is a filesystem error, not a silent success.
            fs::rename(&self.path, &target)?;
        }
        Ok(target)
    }

    /// Rewrites the log to contain exactly `history`, one record per
    /// signature, atomically (write-then-rename). Used by compaction and by
    /// [`Dimmunix::save_history`](crate::Dimmunix::save_history).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn rewrite(&self, history: &History) -> Result<()> {
        // Record the chain before the rename below extends or shrinks it.
        let old_segments = self.segments();
        let tmp = self.path.with_extension("tmp");
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        {
            let mut f = fs::File::create(&tmp)?;
            for (_, sig) in history.iter() {
                let mut record = signature_to_log_record(sig);
                record.push('\n');
                f.write_all(record.as_bytes())?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        // The rename changed the directory entry; make that durable too.
        self.sync_parent_dir()?;
        // The rewrite coalesced every record into segment 0; higher
        // segments are now stale duplicates and must not replay twice.
        for seg in old_segments.iter().skip(1) {
            fs::remove_file(seg)?;
        }
        Ok(())
    }

    /// Offline compaction: replays the segment chain (tolerating a partial
    /// tail in the last segment), deduplicates, and rewrites everything into
    /// a single fresh segment atomically. Returns the replay the compacted
    /// log was built from.
    ///
    /// # Errors
    /// Propagates filesystem and parse errors.
    pub fn compact(&self) -> Result<LogReplay> {
        let replay = self.replay()?;
        self.rewrite(&replay.history)?;
        Ok(replay)
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "history with {} signature(s)", self.len())?;
        for (id, sig) in self.iter() {
            write!(f, "\n[{id}] {sig}")?;
        }
        Ok(())
    }
}

impl FromIterator<Signature> for History {
    fn from_iter<T: IntoIterator<Item = Signature>>(iter: T) -> Self {
        let mut h = History::new();
        for sig in iter {
            h.add(sig);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn sig(kind: SignatureKind, a: u32, b: u32) -> Signature {
        Signature::new(
            kind,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new("m1", "f1.rs", a)),
                    CallStack::single(Frame::new("m2", "f2.rs", a + 1)),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new("m3", "f3.rs", b)),
                    CallStack::single(Frame::new("m4", "f4.rs", b + 1)),
                ),
            ],
        )
    }

    #[test]
    fn add_deduplicates_same_bug() {
        let mut h = History::new();
        let (id1, added1) = h.add(sig(SignatureKind::Deadlock, 1, 2));
        let (id2, added2) = h.add(sig(SignatureKind::Deadlock, 1, 2));
        assert!(added1);
        assert!(!added2);
        assert_eq!(id1, id2);
        assert_eq!(h.len(), 1);
        let (_, added3) = h.add(sig(SignatureKind::Deadlock, 1, 3));
        assert!(added3);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn text_roundtrip_preserves_signatures() {
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        h.add(sig(SignatureKind::Starvation, 5, 9));
        let text = h.to_text();
        let parsed = History::from_text(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        for (id, s) in h.iter() {
            assert!(parsed.get(id).unwrap().same_bug(s));
        }
    }

    #[test]
    fn json_roundtrip_preserves_signatures() {
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        let json = h.to_json().unwrap();
        let parsed = History::from_json(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed
            .get(SignatureId::new(0))
            .unwrap()
            .same_bug(h.get(SignatureId::new(0)).unwrap()));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(History::from_text("nonsense").is_err());
        assert!(History::from_text("#sig deadlock x").is_err());
        assert!(History::from_text("#sig weird 2").is_err());
        // truncated block
        assert!(History::from_text("#sig deadlock 2\na@f:1\nb@f:2\n").is_err());
    }

    #[test]
    fn empty_text_is_empty_history() {
        assert!(History::from_text("").unwrap().is_empty());
        assert!(History::from_text("\n\n").unwrap().is_empty());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("dimmunix-hist-{}", std::process::id()));
        let path = dir.join("history.dimmu");
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 10, 20));
        h.save_text(&path).unwrap();
        let loaded = History::load_text(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        let missing = History::load_text(dir.join("nope.dimmu")).unwrap();
        assert!(missing.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn signatures_with_outer_finds_matching() {
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        let outer = CallStack::single(Frame::new("m1", "f1.rs", 1));
        assert_eq!(h.signatures_with_outer(&outer).len(), 1);
        let unrelated = CallStack::single(Frame::new("zzz", "f.rs", 1));
        assert!(h.signatures_with_outer(&unrelated).is_empty());
    }

    #[test]
    fn merge_deduplicates() {
        let mut a = History::new();
        a.add(sig(SignatureKind::Deadlock, 1, 2));
        let mut b = History::new();
        b.add(sig(SignatureKind::Deadlock, 1, 2));
        b.add(sig(SignatureKind::Deadlock, 7, 8));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn memory_footprint_is_positive_and_grows() {
        let mut h = History::new();
        let base = h.memory_footprint_bytes();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        assert!(h.memory_footprint_bytes() > base);
    }

    #[test]
    fn log_record_roundtrip() {
        let original = sig(SignatureKind::Starvation, 3, 4);
        let record = signature_to_log_record(&original);
        assert!(!record.contains('\n'), "records must be single-line");
        let parsed = signature_from_log_record(&record).unwrap();
        assert!(parsed.same_bug(&original));
    }

    /// Legacy-id fallback: records written before the `fp` field existed
    /// (the checked-in corpus, old `HistoryLog` chains) carry only
    /// `kind`/`pairs` and must keep replaying byte-for-byte.
    #[test]
    fn legacy_records_without_fingerprint_still_parse() {
        let legacy =
            r#"{"kind": "deadlock", "pairs": [{"outer": "a@a.rs:1", "inner": "b@b.rs:2"}]}"#;
        let parsed = signature_from_log_record(legacy).unwrap();
        assert_eq!(parsed.kind(), SignatureKind::Deadlock);
        assert_eq!(parsed.arity(), 1);
        // The modern record for the same signature declares the fingerprint
        // and parses back to the same bug.
        let modern = signature_to_log_record(&parsed);
        assert!(modern.contains("\"fp\""));
        assert!(signature_from_log_record(&modern)
            .unwrap()
            .same_bug(&parsed));
    }

    /// A record whose declared fingerprint disagrees with its content is
    /// corruption (or tampering) and must be rejected, not replayed.
    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let good = signature_to_log_record(&sig(SignatureKind::Deadlock, 1, 2));
        let tampered = {
            let fp_at = good.find("\"fp\": ").expect("record carries fp") + 8;
            let mut t = good.clone();
            // Flip one hex digit of the declared fingerprint.
            let old = t.as_bytes()[fp_at];
            t.replace_range(fp_at..fp_at + 1, if old == b'0' { "1" } else { "0" });
            t
        };
        assert!(signature_from_log_record(&good).is_ok());
        let err = signature_from_log_record(&tampered).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        assert!(signature_from_log_record(
            r#"{"kind": "deadlock", "pairs": [], "fp": "zznothex"}"#
        )
        .is_err());
    }

    #[test]
    fn log_append_replay_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"));
        // Missing file: empty history, clean tail.
        let replay = log.replay().unwrap();
        assert!(replay.history.is_empty());
        assert!(!replay.truncated_tail);
        for i in 0..4 {
            log.append(&sig(SignatureKind::Deadlock, i * 10, i * 10 + 1))
                .unwrap();
        }
        let replay = log.replay().unwrap();
        assert_eq!(replay.records, 4);
        assert_eq!(replay.history.len(), 4);
        assert!(!replay.truncated_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_recovery_repairs_the_file() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-trunc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"));
        for i in 0..3 {
            log.append(&sig(SignatureKind::Deadlock, i * 10, i * 10 + 1))
                .unwrap();
        }
        // Simulate a crash mid-append: chop the file in the middle of the
        // final record.
        let full = fs::read(log.path()).unwrap();
        fs::write(log.path(), &full[..full.len() - 17]).unwrap();

        let replay = log.recover().unwrap();
        assert_eq!(replay.records, 2, "the partial record must be dropped");
        assert!(replay.truncated_tail);
        // Recovery truncated the partial record away, so the next append
        // lands on a record boundary and a fresh replay is clean.
        log.append(&sig(SignatureKind::Starvation, 90, 91)).unwrap();
        let replay = log.replay().unwrap();
        assert_eq!(replay.records, 3);
        assert!(!replay.truncated_tail);
        assert_eq!(replay.history.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unterminated_final_record_is_not_committed() {
        // Appends write record + newline in one call; if the crash lands
        // exactly between record and terminator, the record is *not*
        // replayed (commit == durable newline), and recovery truncates it.
        let mut text = String::new();
        text.push_str(&signature_to_log_record(&sig(
            SignatureKind::Deadlock,
            1,
            2,
        )));
        text.push('\n');
        let clean_len = text.len();
        text.push_str(&signature_to_log_record(&sig(
            SignatureKind::Deadlock,
            5,
            6,
        )));
        let replay = History::replay_log_text(&text).unwrap();
        assert_eq!(replay.records, 1);
        assert!(replay.truncated_tail);
        assert_eq!(replay.valid_len, clean_len);
    }

    #[test]
    fn corrupt_interior_record_is_an_error() {
        let good = signature_to_log_record(&sig(SignatureKind::Deadlock, 1, 2));
        let text = format!("not json at all\n{good}\n");
        assert!(History::replay_log_text(&text).is_err());
        // ...but garbage only in the tail is tolerated.
        let text = format!("{good}\n{{\"kind\": \"dead");
        let replay = History::replay_log_text(&text).unwrap();
        assert_eq!(replay.records, 1);
        assert!(replay.truncated_tail);
    }

    #[test]
    fn compaction_deduplicates_and_rewrites_atomically() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-compact-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log")).with_sync(false);
        for _ in 0..5 {
            log.append(&sig(SignatureKind::Deadlock, 1, 2)).unwrap();
        }
        log.append(&sig(SignatureKind::Deadlock, 7, 8)).unwrap();
        let replay = log.compact().unwrap();
        assert_eq!(replay.records, 6);
        assert_eq!(replay.history.len(), 2);
        // The rewritten log holds exactly the deduplicated records.
        let after = log.replay().unwrap();
        assert_eq!(after.records, 2);
        assert_eq!(after.history.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_appends_roll_and_replay_across_segments() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-seg-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"))
            .with_sync(false)
            .with_segment_records(2);
        for i in 0..5 {
            log.append(&sig(SignatureKind::Deadlock, i * 10, i * 10 + 1))
                .unwrap();
        }
        // 5 records at 2 per segment: seg0 full, seg1 full, seg2 holds one.
        assert!(dir.join("history.log").exists());
        assert!(dir.join("history.log.seg1").exists());
        assert!(dir.join("history.log.seg2").exists());
        assert!(!dir.join("history.log.seg3").exists());
        let replay = log.replay().unwrap();
        assert_eq!(replay.records, 5);
        assert_eq!(replay.history.len(), 5);
        assert!(!replay.truncated_tail);
        assert_eq!(log.raw_record_count(), 5);
        // A handle without the segment setting replays the same chain: the
        // on-disk layout, not the writer configuration, is authoritative.
        let reader = HistoryLog::new(dir.join("history.log"));
        assert_eq!(reader.replay().unwrap().history.len(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_dedup_spans_segment_boundaries() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-segdup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"))
            .with_sync(false)
            .with_segment_records(2);
        // The same bug recorded in three different segments plus one
        // distinct bug: replay must merge through the fingerprint index.
        for _ in 0..5 {
            log.append(&sig(SignatureKind::Deadlock, 1, 2)).unwrap();
        }
        log.append(&sig(SignatureKind::Deadlock, 7, 8)).unwrap();
        let replay = log.replay().unwrap();
        assert_eq!(replay.records, 6);
        assert_eq!(replay.history.len(), 2, "dedup must span segments");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_torn_tail_in_last_segment_recovers() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-segtail-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"))
            .with_sync(false)
            .with_segment_records(2);
        for i in 0..3 {
            log.append(&sig(SignatureKind::Deadlock, i * 10, i * 10 + 1))
                .unwrap();
        }
        // Crash mid-append in the active (last) segment.
        let seg1 = dir.join("history.log.seg1");
        let full = fs::read(&seg1).unwrap();
        fs::write(&seg1, &full[..full.len() - 17]).unwrap();

        let replay = log.recover().unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.records, 2, "the torn record must be dropped");
        // Recovery repaired *the last segment*; the next append lands on a
        // record boundary there and the chain replays clean.
        log.append(&sig(SignatureKind::Starvation, 90, 91)).unwrap();
        let replay = log.replay().unwrap();
        assert!(!replay.truncated_tail);
        assert_eq!(replay.records, 3);
        assert_eq!(replay.history.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_interior_segment_is_interior_corruption() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-segmid-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"))
            .with_sync(false)
            .with_segment_records(2);
        for i in 0..4 {
            log.append(&sig(SignatureKind::Deadlock, i * 10, i * 10 + 1))
                .unwrap();
        }
        // Tear the tail of segment 0 while segment 1 exists after it:
        // nothing may legally be appended after a torn record, so this is
        // interior corruption, not a crash tail.
        let seg0 = dir.join("history.log");
        let full = fs::read(&seg0).unwrap();
        fs::write(&seg0, &full[..full.len() - 17]).unwrap();
        assert!(matches!(log.replay(), Err(DimmunixError::Parse { .. })));
        assert!(matches!(log.recover(), Err(DimmunixError::Parse { .. })));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_quarantine_moves_the_whole_chain() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-segquar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"))
            .with_sync(false)
            .with_segment_records(2);
        for i in 0..5 {
            log.append(&sig(SignatureKind::Deadlock, i * 10, i * 10 + 1))
                .unwrap();
        }
        let target = log.quarantine().unwrap();
        assert_eq!(target, dir.join("history.corrupt"));
        // Every segment moved; none left to splice onto a fresh log.
        assert!(dir.join("history.corrupt").exists());
        assert!(dir.join("history.corrupt.seg1").exists());
        assert!(dir.join("history.corrupt.seg2").exists());
        assert!(!dir.join("history.log").exists());
        assert!(!dir.join("history.log.seg1").exists());
        assert!(!dir.join("history.log.seg2").exists());
        // The fresh chain is empty and replays clean.
        let replay = log.replay().unwrap();
        assert!(replay.history.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_compaction_coalesces_into_a_single_segment() {
        let dir = std::env::temp_dir().join(format!("dimmunix-log-segcmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = HistoryLog::new(dir.join("history.log"))
            .with_sync(false)
            .with_segment_records(2);
        for _ in 0..5 {
            log.append(&sig(SignatureKind::Deadlock, 1, 2)).unwrap();
        }
        log.append(&sig(SignatureKind::Deadlock, 7, 8)).unwrap();
        let replay = log.compact().unwrap();
        assert_eq!(replay.records, 6);
        assert_eq!(replay.history.len(), 2);
        // The chain collapsed to segment 0; stale segments are gone so no
        // record can replay twice.
        assert!(dir.join("history.log").exists());
        assert!(!dir.join("history.log.seg1").exists());
        assert!(!dir.join("history.log.seg2").exists());
        let after = log.replay().unwrap();
        assert_eq!(after.records, 2);
        assert_eq!(after.history.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    /// Bulk replay of a ~2k-record synthetic log must cost O(n): the
    /// fingerprint index keeps `add`'s dedup probe at O(largest bucket),
    /// which for distinct bugs stays a small constant instead of scanning
    /// the whole history per record (the old O(n²) behaviour).
    #[test]
    fn bulk_replay_of_2k_record_log_costs_linear_dedup_work() {
        const RECORDS: u32 = 2000;
        let mut text = String::new();
        for i in 0..RECORDS {
            // Distinct bugs, plus every 10th record duplicated (a log that
            // recorded a bug twice pre-dedup) so the dedup path is real.
            text.push_str(&signature_to_log_record(&sig(
                SignatureKind::Deadlock,
                i,
                10_000 + i,
            )));
            text.push('\n');
            if i % 10 == 0 {
                text.push_str(&signature_to_log_record(&sig(
                    SignatureKind::Deadlock,
                    i,
                    10_000 + i,
                )));
                text.push('\n');
            }
        }
        let started = std::time::Instant::now();
        let replay = History::replay_log_text(&text).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(replay.records as u32, RECORDS + RECORDS / 10);
        assert_eq!(replay.history.len() as u32, RECORDS, "duplicates merged");
        let (buckets, largest) = replay.history.dedup_buckets();
        assert_eq!(buckets as u32, RECORDS, "one bucket per distinct bug");
        assert!(
            largest <= 2,
            "a distinct-bug history must not pile up in one bucket \
             (largest bucket: {largest} -> dedup would degrade towards O(n²))"
        );
        // Generous wall-clock guard (the structural assertion above is the
        // real one): the old linear-scan dedup took seconds at this size.
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "2k-record replay took {elapsed:?}"
        );
        // The index answers point lookups too.
        assert!(replay
            .history
            .find(&sig(SignatureKind::Deadlock, 55, 10_055))
            .is_some());
        assert!(replay
            .history
            .find(&sig(SignatureKind::Starvation, 55, 10_055))
            .is_none());
    }

    #[test]
    fn collect_from_iterator() {
        let h: History = vec![
            sig(SignatureKind::Deadlock, 1, 2),
            sig(SignatureKind::Deadlock, 1, 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(h.len(), 1);
    }
}
