//! The persistent deadlock history.
//!
//! The history is the set of antibodies a process has developed: every
//! signature that was ever detected (deadlock or starvation). It is persisted
//! across process restarts — on the phone, across reboots — which is what
//! turns a one-time hang into permanent immunity (§2.1, §5 case study).
//!
//! Two codecs are provided:
//! * a line-oriented text format close in spirit to the original Dimmunix
//!   history files, and
//! * a self-contained JSON format convenient for tooling (hand-rolled: the
//!   build environment has no crates.io access, so `serde` is unavailable).
//!
//! Position-indexed queries over the history (the avoidance and release hot
//! paths) live in [`SignatureIndex`](crate::SignatureIndex), which the engine
//! keeps in lockstep with its history; `History` itself stays a plain
//! signature store.

use crate::callstack::CallStack;
use crate::error::{DimmunixError, Result};
use crate::json::{self, JsonValue};
use crate::signature::{Signature, SignatureKind, SignaturePair};
use crate::SignatureId;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A persistent collection of deadlock/starvation signatures.
///
/// ```
/// use dimmunix_core::{CallStack, Frame, History, Signature, SignatureKind, SignaturePair};
/// let mut h = History::new();
/// let sig = Signature::new(SignatureKind::Deadlock, vec![SignaturePair::new(
///     CallStack::single(Frame::new("a", "a.rs", 1)),
///     CallStack::single(Frame::new("b", "b.rs", 2)),
/// )]);
/// let (id, added) = h.add(sig.clone());
/// assert!(added);
/// let (id2, added2) = h.add(sig);
/// assert_eq!(id, id2);
/// assert!(!added2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct History {
    signatures: Vec<Signature>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History {
            signatures: Vec::new(),
        }
    }

    /// Number of stored signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True if the history holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Adds a signature unless an identical one (same bug) is already stored.
    /// Returns the signature's id and whether it was newly inserted.
    pub fn add(&mut self, sig: Signature) -> (SignatureId, bool) {
        if let Some(existing) = self.find(&sig) {
            return (existing, false);
        }
        let id = SignatureId::new(self.signatures.len());
        self.signatures.push(sig);
        (id, true)
    }

    /// Finds the id of a signature describing the same bug, if present.
    pub fn find(&self, sig: &Signature) -> Option<SignatureId> {
        self.signatures
            .iter()
            .position(|s| s.same_bug(sig))
            .map(SignatureId::new)
    }

    /// Returns the signature with the given id.
    pub fn get(&self, id: SignatureId) -> Option<&Signature> {
        self.signatures.get(id.index())
    }

    /// Iterates over `(id, signature)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SignatureId, &Signature)> {
        self.signatures
            .iter()
            .enumerate()
            .map(|(i, s)| (SignatureId::new(i), s))
    }

    /// Ids of signatures whose outer stacks include `stack`. Used on the
    /// release path: when a lock acquired at a history position is released,
    /// every thread parked on a signature containing that position must be
    /// woken (§4).
    pub fn signatures_with_outer(&self, stack: &CallStack) -> Vec<SignatureId> {
        // Cold path: the engine answers this query from its position-keyed
        // `SignatureIndex`; this stack-keyed form exists for tooling and
        // substrates that hold a bare history.
        self.iter()
            .filter(|(_, s)| s.outer_stacks().any(|o| o == stack))
            .map(|(id, _)| id)
            .collect()
    }

    /// Merges another history into this one, deduplicating; returns the
    /// number of newly added signatures. Useful when a vendor ships
    /// pre-seeded antibodies with an application update.
    pub fn merge(&mut self, other: &History) -> usize {
        let mut added = 0;
        for (_, sig) in other.iter() {
            if self.add(sig.clone()).1 {
                added += 1;
            }
        }
        added
    }

    /// Estimated resident memory of the history in bytes (memory-overhead
    /// accounting for Table 1).
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for sig in &self.signatures {
            total += std::mem::size_of::<Signature>();
            for p in sig.pairs() {
                for s in [&p.outer, &p.inner] {
                    total += std::mem::size_of::<CallStack>();
                    for f in s.frames() {
                        total += std::mem::size_of_val(f) + f.method().len() + f.file().len();
                    }
                }
            }
        }
        total
    }

    // ------------------------------------------------------------------
    // Text codec
    // ------------------------------------------------------------------

    /// Serializes the history into the line-oriented text format.
    ///
    /// Format, one signature per block:
    /// ```text
    /// #sig <kind> <arity>
    /// <outer compact stack>
    /// <inner compact stack>
    /// ...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (_, sig) in self.iter() {
            let kind = match sig.kind() {
                SignatureKind::Deadlock => "deadlock",
                SignatureKind::Starvation => "starvation",
            };
            out.push_str(&format!("#sig {kind} {}\n", sig.arity()));
            for pair in sig.pairs() {
                out.push_str(&pair.outer.to_compact());
                out.push('\n');
                out.push_str(&pair.inner.to_compact());
                out.push('\n');
            }
        }
        out
    }

    /// Parses the text format produced by [`to_text`].
    ///
    /// # Errors
    /// Returns [`DimmunixError::Parse`] for malformed input.
    ///
    /// [`to_text`]: History::to_text
    pub fn from_text(text: &str) -> Result<History> {
        let mut history = History::new();
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i].trim();
            if line.is_empty() {
                i += 1;
                continue;
            }
            let rest = line.strip_prefix("#sig ").ok_or(DimmunixError::Parse {
                line: i + 1,
                message: format!("expected `#sig`, found `{line}`"),
            })?;
            let mut parts = rest.split_whitespace();
            let kind = match parts.next() {
                Some("deadlock") => SignatureKind::Deadlock,
                Some("starvation") => SignatureKind::Starvation,
                other => {
                    return Err(DimmunixError::Parse {
                        line: i + 1,
                        message: format!("unknown signature kind {other:?}"),
                    })
                }
            };
            let arity: usize =
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(DimmunixError::Parse {
                        line: i + 1,
                        message: "missing or invalid arity".into(),
                    })?;
            i += 1;
            let mut pairs = Vec::with_capacity(arity);
            for _ in 0..arity {
                if i >= lines.len() {
                    return Err(DimmunixError::Parse {
                        line: i,
                        message: "truncated signature block".into(),
                    });
                }
                let outer_line = lines.get(i).ok_or(DimmunixError::Parse {
                    line: i,
                    message: "missing outer stack line".into(),
                })?;
                let inner_line = lines.get(i + 1).ok_or(DimmunixError::Parse {
                    line: i + 1,
                    message: "missing inner stack line".into(),
                })?;
                let outer =
                    CallStack::parse_compact(outer_line).map_err(|m| DimmunixError::Parse {
                        line: i + 1,
                        message: m,
                    })?;
                let inner =
                    CallStack::parse_compact(inner_line).map_err(|m| DimmunixError::Parse {
                        line: i + 2,
                        message: m,
                    })?;
                pairs.push(SignaturePair::new(outer, inner));
                i += 2;
            }
            history.add(Signature::new(kind, pairs));
        }
        Ok(history)
    }

    // ------------------------------------------------------------------
    // File persistence
    // ------------------------------------------------------------------

    /// Writes the history to `path` in the text format, atomically
    /// (write-then-rename) so a crash cannot corrupt the antibody store.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_text(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a text-format history from `path`; an absent file yields an
    /// empty history (a fresh phone has no antibodies yet).
    ///
    /// # Errors
    /// Propagates filesystem errors other than "not found" and parse errors.
    pub fn load_text(path: impl AsRef<Path>) -> Result<History> {
        match fs::read_to_string(path.as_ref()) {
            Ok(text) => History::from_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(History::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Serializes the history as pretty JSON. Stacks are encoded in the same
    /// compact `method@file:line;…` form the text codec uses, so the two
    /// codecs share one stack grammar.
    ///
    /// # Errors
    /// Never fails; the signature is kept for API stability.
    pub fn to_json(&self) -> Result<String> {
        let mut out = String::from("{\n  \"signatures\": [");
        for (i, (_, sig)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"kind\": ");
            json::write_escaped(&mut out, &sig.kind().to_string());
            out.push_str(",\n      \"pairs\": [");
            for (j, pair) in sig.pairs().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\"outer\": ");
                json::write_escaped(&mut out, &pair.outer.to_compact());
                out.push_str(", \"inner\": ");
                json::write_escaped(&mut out, &pair.inner.to_compact());
                out.push('}');
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}");
        Ok(out)
    }

    /// Parses a JSON history produced by [`to_json`](History::to_json).
    ///
    /// # Errors
    /// Returns a parse error for malformed JSON.
    pub fn from_json(text: &str) -> Result<History> {
        let parse_err = |message: String| DimmunixError::Parse { line: 0, message };
        let doc = json::parse(text).map_err(|e| parse_err(format!("json decode: {e}")))?;
        let sigs = doc
            .get("signatures")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| parse_err("missing `signatures` array".into()))?;
        let mut history = History::new();
        for sig in sigs {
            let kind = match sig.get("kind").and_then(JsonValue::as_str) {
                Some("deadlock") => SignatureKind::Deadlock,
                Some("starvation") => SignatureKind::Starvation,
                other => return Err(parse_err(format!("unknown signature kind {other:?}"))),
            };
            let raw_pairs = sig
                .get("pairs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| parse_err("missing `pairs` array".into()))?;
            let mut pairs = Vec::with_capacity(raw_pairs.len());
            for p in raw_pairs {
                let stack = |key: &str| -> Result<CallStack> {
                    let compact = p
                        .get(key)
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| parse_err(format!("pair is missing `{key}`")))?;
                    CallStack::parse_compact(compact).map_err(parse_err)
                };
                pairs.push(SignaturePair::new(stack("outer")?, stack("inner")?));
            }
            history.add(Signature::new(kind, pairs));
        }
        Ok(history)
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "history with {} signature(s)", self.len())?;
        for (id, sig) in self.iter() {
            write!(f, "\n[{id}] {sig}")?;
        }
        Ok(())
    }
}

impl FromIterator<Signature> for History {
    fn from_iter<T: IntoIterator<Item = Signature>>(iter: T) -> Self {
        let mut h = History::new();
        for sig in iter {
            h.add(sig);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    fn sig(kind: SignatureKind, a: u32, b: u32) -> Signature {
        Signature::new(
            kind,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new("m1", "f1.rs", a)),
                    CallStack::single(Frame::new("m2", "f2.rs", a + 1)),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new("m3", "f3.rs", b)),
                    CallStack::single(Frame::new("m4", "f4.rs", b + 1)),
                ),
            ],
        )
    }

    #[test]
    fn add_deduplicates_same_bug() {
        let mut h = History::new();
        let (id1, added1) = h.add(sig(SignatureKind::Deadlock, 1, 2));
        let (id2, added2) = h.add(sig(SignatureKind::Deadlock, 1, 2));
        assert!(added1);
        assert!(!added2);
        assert_eq!(id1, id2);
        assert_eq!(h.len(), 1);
        let (_, added3) = h.add(sig(SignatureKind::Deadlock, 1, 3));
        assert!(added3);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn text_roundtrip_preserves_signatures() {
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        h.add(sig(SignatureKind::Starvation, 5, 9));
        let text = h.to_text();
        let parsed = History::from_text(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        for (id, s) in h.iter() {
            assert!(parsed.get(id).unwrap().same_bug(s));
        }
    }

    #[test]
    fn json_roundtrip_preserves_signatures() {
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        let json = h.to_json().unwrap();
        let parsed = History::from_json(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed
            .get(SignatureId::new(0))
            .unwrap()
            .same_bug(h.get(SignatureId::new(0)).unwrap()));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(History::from_text("nonsense").is_err());
        assert!(History::from_text("#sig deadlock x").is_err());
        assert!(History::from_text("#sig weird 2").is_err());
        // truncated block
        assert!(History::from_text("#sig deadlock 2\na@f:1\nb@f:2\n").is_err());
    }

    #[test]
    fn empty_text_is_empty_history() {
        assert!(History::from_text("").unwrap().is_empty());
        assert!(History::from_text("\n\n").unwrap().is_empty());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("dimmunix-hist-{}", std::process::id()));
        let path = dir.join("history.dimmu");
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 10, 20));
        h.save_text(&path).unwrap();
        let loaded = History::load_text(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        let missing = History::load_text(dir.join("nope.dimmu")).unwrap();
        assert!(missing.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn signatures_with_outer_finds_matching() {
        let mut h = History::new();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        let outer = CallStack::single(Frame::new("m1", "f1.rs", 1));
        assert_eq!(h.signatures_with_outer(&outer).len(), 1);
        let unrelated = CallStack::single(Frame::new("zzz", "f.rs", 1));
        assert!(h.signatures_with_outer(&unrelated).is_empty());
    }

    #[test]
    fn merge_deduplicates() {
        let mut a = History::new();
        a.add(sig(SignatureKind::Deadlock, 1, 2));
        let mut b = History::new();
        b.add(sig(SignatureKind::Deadlock, 1, 2));
        b.add(sig(SignatureKind::Deadlock, 7, 8));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn memory_footprint_is_positive_and_grows() {
        let mut h = History::new();
        let base = h.memory_footprint_bytes();
        h.add(sig(SignatureKind::Deadlock, 1, 2));
        assert!(h.memory_footprint_bytes() > base);
    }

    #[test]
    fn collect_from_iterator() {
        let h: History = vec![
            sig(SignatureKind::Deadlock, 1, 2),
            sig(SignatureKind::Deadlock, 1, 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(h.len(), 1);
    }
}
