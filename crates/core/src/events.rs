//! In-memory event log.
//!
//! When enabled (see [`Config::event_log_capacity`]), the engine appends one
//! entry per significant decision. The log is a bounded ring buffer so it can
//! stay enabled on a memory-constrained device; it exists for debugging,
//! tests and the reproduction harness, not for the hot path.
//!
//! [`Config::event_log_capacity`]: crate::Config::event_log_capacity

use crate::position::PositionId;
use crate::{LockId, LogicalTime, OwnerId, SignatureId};
use std::collections::VecDeque;
use std::fmt;

/// One engine decision.
///
/// Field meanings are uniform across variants: `thread` is the acting
/// thread, `lock` the monitor involved, `position` the interned acquisition
/// site, and `signature` the history entry concerned.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A thread asked to acquire a lock.
    Request {
        thread: OwnerId,
        lock: LockId,
        position: PositionId,
    },
    /// The request was approved.
    Grant { thread: OwnerId, lock: LockId },
    /// The request was approved on the reentrant fast path.
    ReentrantGrant { thread: OwnerId, lock: LockId },
    /// The thread must park because a signature would be instantiated.
    Yield {
        thread: OwnerId,
        lock: LockId,
        signature: SignatureId,
    },
    /// The thread finished acquiring the lock.
    Acquired { thread: OwnerId, lock: LockId },
    /// The thread released the lock.
    Released { thread: OwnerId, lock: LockId },
    /// A real deadlock cycle was detected.
    DeadlockDetected {
        thread: OwnerId,
        signature: SignatureId,
        new_signature: bool,
    },
    /// An avoidance-induced deadlock (starvation) was detected.
    StarvationDetected {
        thread: OwnerId,
        signature: SignatureId,
        new_signature: bool,
    },
    /// Threads parked on the signature should be woken.
    Wakeup { signature: SignatureId },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical time at which the engine recorded the event.
    pub at: LogicalTime,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?}", self.at, self.kind)
    }
}

/// Bounded ring buffer of engine events.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl EventLog {
    /// Creates a log with the given capacity; capacity 0 disables recording.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn push(&mut self, at: LogicalTime, kind: EventKind) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event { at, kind });
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Removes and returns all retained events.
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Counts retained events matching a predicate.
    pub fn count_matching(&self, mut pred: impl FnMut(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::Grant {
            thread: OwnerId::thread(i),
            lock: LockId::new(i),
        }
    }

    #[test]
    fn capacity_zero_records_nothing() {
        let mut log = EventLog::new(0);
        log.push(LogicalTime(1), ev(1));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = EventLog::new(3);
        for i in 0..5 {
            log.push(LogicalTime(i), ev(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let first = log.iter().next().unwrap();
        assert_eq!(first.at, LogicalTime(2));
    }

    #[test]
    fn count_and_drain() {
        let mut log = EventLog::new(10);
        log.push(LogicalTime(0), ev(0));
        log.push(
            LogicalTime(1),
            EventKind::Yield {
                thread: OwnerId::thread(1),
                lock: LockId::new(2),
                signature: SignatureId::new(0),
            },
        );
        assert_eq!(
            log.count_matching(|k| matches!(k, EventKind::Yield { .. })),
            1
        );
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn display_contains_time() {
        let e = Event {
            at: LogicalTime(7),
            kind: ev(1),
        };
        assert!(e.to_string().contains("t7"));
    }
}
