//! Call stacks and stack frames.
//!
//! A deadlock signature is built from call stacks: the *outer* call stack a
//! thread had when it acquired a lock involved in the deadlock, and the
//! *inner* call stack it had at the moment of the deadlock (§2.1). A frame is
//! a program location; the top frame of an outer (inner) stack is the outer
//! (inner) *position*. Android Dimmunix truncates outer stacks to depth 1 to
//! keep `dvmGetCallStack` cheap (§3.2).

use crate::SiteId;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a state. FNV is used (rather than
/// `DefaultHasher`) because site keys are *persisted* and exchanged between
/// processes, so the hash must be stable across builds and platforms.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Stable, content-derived identity of an acquisition site.
///
/// A `SiteKey` is an FNV-1a hash over the *normalized* content of a
/// (truncated) call stack: each frame contributes its method name and file
/// verbatim, but its line number only as the offset relative to the stack's
/// **top frame** line. Absolute line numbers never enter the key, so
/// recompiling the program with code moved up or down a file (a uniform
/// line shift — the usual effect of an unrelated edit above the site)
/// yields the *same* key. That is what lets persisted antibodies outlive
/// refactors and lets antibody packs exchanged between fleets match across
/// different binaries of the same program.
///
/// The key coarsens identity exactly where absolute lines were
/// load-bearing: two depth-1 sites in the same file sharing a method name
/// collapse to one key. This is the same flavour of trade-off as the
/// paper's depth-1 stack truncation (§3.2) — coarser matching bought for
/// robustness — and it is why foreign signatures are only *screened* by
/// key and then re-anchored to a concrete local stack before activation.
///
/// ```
/// use dimmunix_core::{CallStack, Frame};
/// let v1 = CallStack::single(Frame::new("Svc.lock", "svc.rs", 100));
/// let v2 = CallStack::single(Frame::new("Svc.lock", "svc.rs", 137)); // code moved
/// assert_eq!(v1.site_key(), v2.site_key());
/// assert_ne!(
///     v1.site_key(),
///     CallStack::single(Frame::new("Other.lock", "svc.rs", 100)).site_key(),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteKey(u64);

impl SiteKey {
    /// Creates a key from its raw hash (codecs and tests).
    pub const fn new(raw: u64) -> Self {
        SiteKey(raw)
    }

    /// The raw 64-bit hash.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{:016x}", self.0)
    }
}

/// One program location: a method plus a source position.
///
/// The Dalvik implementation stores the method and bytecode pc of the frame;
/// for the Rust substrates we keep a method (or function) name, a file and a
/// line, which is exactly the information the `acquire_site!()` macro in
/// `dimmunix-rt` and the simulated frames in `dalvik-sim` can provide.
///
/// ```
/// use dimmunix_core::Frame;
/// let f = Frame::new("NotificationManagerService.enqueueNotificationWithTag", "nms.java", 310);
/// assert_eq!(f.line(), 310);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame {
    method: String,
    file: String,
    line: u32,
}

impl Frame {
    /// Creates a frame from a method name, file and line.
    pub fn new(method: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        Frame {
            method: method.into(),
            file: file.into(),
            line,
        }
    }

    /// Creates a frame from a statically assigned synchronization-site id
    /// (the compiler-id optimization proposed in §4).
    pub fn from_site(site: SiteId) -> Self {
        Frame {
            method: format!("site#{}", site.index()),
            file: String::from("<static-site>"),
            line: 0,
        }
    }

    /// The method (or function) name of this frame.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The source file of this frame.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The source line of this frame.
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.method, self.file, self.line)
    }
}

/// A captured call stack, top frame first.
///
/// Equality and hashing are structural, so two acquisitions from the same
/// program location produce equal call stacks and therefore the same interned
/// [`PositionId`](crate::position::PositionId).
///
/// ```
/// use dimmunix_core::{CallStack, Frame};
/// let cs = CallStack::from_frames(vec![
///     Frame::new("Service.lock", "service.rs", 10),
///     Frame::new("Service.handle", "service.rs", 55),
/// ]);
/// assert_eq!(cs.depth(), 2);
/// assert_eq!(cs.truncated(1).depth(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Creates an empty call stack (used for threads with no frames yet).
    pub fn new() -> Self {
        CallStack { frames: Vec::new() }
    }

    /// Creates a call stack from frames (top frame first).
    pub fn from_frames(frames: Vec<Frame>) -> Self {
        CallStack { frames }
    }

    /// Creates a depth-1 stack from a single frame.
    pub fn single(frame: Frame) -> Self {
        CallStack {
            frames: vec![frame],
        }
    }

    /// Creates a depth-1 stack for a static synchronization-site id.
    pub fn from_site(site: SiteId) -> Self {
        CallStack::single(Frame::from_site(site))
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True if the stack has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The top (innermost) frame, i.e. the paper's *position*.
    pub fn top(&self) -> Option<&Frame> {
        self.frames.first()
    }

    /// All frames, top first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Returns a copy truncated to at most `depth` frames (top frames kept).
    ///
    /// This is what Android Dimmunix does with depth 1 before interning the
    /// stack as a position.
    #[must_use]
    pub fn truncated(&self, depth: usize) -> CallStack {
        CallStack {
            frames: self.frames.iter().take(depth.max(1)).cloned().collect(),
        }
    }

    /// Pushes a frame on top of the stack (used by simulated interpreters).
    pub fn push(&mut self, frame: Frame) {
        self.frames.insert(0, frame);
    }

    /// Pops the top frame.
    pub fn pop(&mut self) -> Option<Frame> {
        if self.frames.is_empty() {
            None
        } else {
            Some(self.frames.remove(0))
        }
    }

    /// The stable content-hash identity of this stack (see [`SiteKey`]).
    ///
    /// Computed over the stack as-is; callers wanting position semantics
    /// truncate first (interning tables do this before calling). The empty
    /// stack hashes to the FNV offset basis.
    pub fn site_key(&self) -> SiteKey {
        let base = self.frames.first().map_or(0, |f| i64::from(f.line));
        let mut hash = FNV_OFFSET;
        for f in &self.frames {
            hash = fnv1a(hash, f.method.as_bytes());
            hash = fnv1a(hash, &[0]);
            hash = fnv1a(hash, f.file.as_bytes());
            hash = fnv1a(hash, &[0]);
            hash = fnv1a(hash, &(i64::from(f.line) - base).to_le_bytes());
        }
        SiteKey(hash)
    }

    /// Serializes the stack into the compact one-line textual form used by
    /// the persistent history file: `method@file:line;method@file:line;...`.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&format!("{}@{}:{}", f.method, f.file, f.line));
        }
        out
    }

    /// Parses the compact textual form produced by [`to_compact`].
    ///
    /// # Errors
    /// Returns a human-readable message for malformed input.
    ///
    /// [`to_compact`]: CallStack::to_compact
    pub fn parse_compact(s: &str) -> std::result::Result<CallStack, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(CallStack::new());
        }
        let mut frames = Vec::new();
        for part in s.split(';') {
            let (method, rest) = part
                .rsplit_once('@')
                .ok_or_else(|| format!("frame `{part}` is missing `@`"))?;
            let (file, line) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("frame `{part}` is missing `:line`"))?;
            let line: u32 = line
                .parse()
                .map_err(|_| format!("frame `{part}` has a non-numeric line"))?;
            frames.push(Frame::new(method, file, line));
        }
        Ok(CallStack { frames })
    }
}

impl fmt::Display for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frames.is_empty() {
            return write!(f, "<empty stack>");
        }
        for (i, frame) in self.frames.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  at {frame}")?;
        }
        Ok(())
    }
}

impl FromIterator<Frame> for CallStack {
    fn from_iter<T: IntoIterator<Item = Frame>>(iter: T) -> Self {
        CallStack {
            frames: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CallStack {
        CallStack::from_frames(vec![
            Frame::new("A.lock", "a.rs", 10),
            Frame::new("A.outer", "a.rs", 42),
            Frame::new("main", "main.rs", 3),
        ])
    }

    #[test]
    fn truncation_keeps_top_frames() {
        let cs = sample();
        let t = cs.truncated(1);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.top().unwrap().method(), "A.lock");
        // truncation never drops below one frame
        assert_eq!(cs.truncated(0).depth(), 1);
    }

    #[test]
    fn equal_locations_are_equal_stacks() {
        let a = CallStack::single(Frame::new("f", "x.rs", 1));
        let b = CallStack::single(Frame::new("f", "x.rs", 1));
        assert_eq!(a, b);
        let c = CallStack::single(Frame::new("f", "x.rs", 2));
        assert_ne!(a, c);
    }

    #[test]
    fn compact_roundtrip() {
        let cs = sample();
        let text = cs.to_compact();
        let parsed = CallStack::parse_compact(&text).unwrap();
        assert_eq!(cs, parsed);
    }

    #[test]
    fn compact_roundtrip_empty() {
        let cs = CallStack::new();
        assert_eq!(CallStack::parse_compact(&cs.to_compact()).unwrap(), cs);
    }

    #[test]
    fn parse_compact_rejects_garbage() {
        assert!(CallStack::parse_compact("no-at-sign").is_err());
        assert!(CallStack::parse_compact("m@file").is_err());
        assert!(CallStack::parse_compact("m@file:abc").is_err());
    }

    #[test]
    fn push_pop_behaves_like_a_stack() {
        let mut cs = CallStack::new();
        cs.push(Frame::new("outer", "x.rs", 1));
        cs.push(Frame::new("inner", "x.rs", 2));
        assert_eq!(cs.top().unwrap().method(), "inner");
        assert_eq!(cs.pop().unwrap().method(), "inner");
        assert_eq!(cs.pop().unwrap().method(), "outer");
        assert!(cs.pop().is_none());
    }

    #[test]
    fn site_id_stacks_are_stable() {
        let a = CallStack::from_site(SiteId::new(17));
        let b = CallStack::from_site(SiteId::new(17));
        assert_eq!(a, b);
        assert_eq!(a.depth(), 1);
    }

    #[test]
    fn display_is_never_empty() {
        assert!(!format!("{}", CallStack::new()).is_empty());
        assert!(!format!("{}", sample()).is_empty());
        assert!(format!("{}", sample()).contains("A.lock"));
    }

    /// The recompilation-survival contract: re-rendering the same stacks at
    /// uniformly shifted line numbers (what an edit above the site does to
    /// every frame in the file) must not change the site key.
    #[test]
    fn site_key_survives_uniform_line_shift() {
        let shifted = |delta: u32| {
            CallStack::from_frames(vec![
                Frame::new("A.lock", "a.rs", 10 + delta),
                Frame::new("A.outer", "a.rs", 42 + delta),
                Frame::new("main", "main.rs", 3 + delta),
            ])
        };
        let key = shifted(0).site_key();
        for delta in [1, 7, 100, 4096] {
            assert_eq!(shifted(delta).site_key(), key, "shift {delta}");
        }
        // A *relative* move of one frame is a different site.
        let skewed = CallStack::from_frames(vec![
            Frame::new("A.lock", "a.rs", 10),
            Frame::new("A.outer", "a.rs", 43),
            Frame::new("main", "main.rs", 3),
        ]);
        assert_ne!(skewed.site_key(), key);
    }

    #[test]
    fn site_key_distinguishes_method_and_file() {
        let base = CallStack::single(Frame::new("f", "x.rs", 1));
        assert_eq!(
            base.site_key(),
            CallStack::single(Frame::new("f", "x.rs", 99)).site_key(),
            "depth-1 keys ignore the absolute line"
        );
        assert_ne!(
            base.site_key(),
            CallStack::single(Frame::new("g", "x.rs", 1)).site_key()
        );
        assert_ne!(
            base.site_key(),
            CallStack::single(Frame::new("f", "y.rs", 1)).site_key()
        );
        // Depth matters: the truncated stack has its own key.
        let deep = CallStack::from_frames(vec![
            Frame::new("f", "x.rs", 1),
            Frame::new("caller", "x.rs", 50),
        ]);
        assert_ne!(deep.site_key(), base.site_key());
        assert_eq!(deep.truncated(1).site_key(), base.site_key());
    }

    #[test]
    fn site_key_is_deterministic_and_displayable() {
        let cs = sample();
        assert_eq!(cs.site_key(), cs.clone().site_key());
        let shown = cs.site_key().to_string();
        assert!(shown.starts_with('K') && shown.len() == 17, "{shown}");
        assert_eq!(SiteKey::new(7).raw(), 7);
        // The empty stack has a well-defined key too.
        assert_eq!(CallStack::new().site_key(), CallStack::new().site_key());
    }

    #[test]
    fn method_names_with_at_and_colon_roundtrip() {
        // rsplit-based parsing keeps methods containing '@' or ':' intact.
        let cs = CallStack::single(Frame::new("weird@method:name", "f.rs", 9));
        let parsed = CallStack::parse_compact(&cs.to_compact()).unwrap();
        assert_eq!(parsed, cs);
    }
}
