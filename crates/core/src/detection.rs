//! Deadlock detection — turning RAG cycles into signatures.
//!
//! When a request creates a cycle in the wait-for relation, the deadlock (or,
//! if parked threads are involved, the avoidance-induced starvation) is
//! materialized as a [`Signature`]: one (outer, inner) call-stack pair per
//! thread in the cycle, where the outer stack is the stack at which the
//! thread acquired the lock it contributes to the cycle and the inner stack
//! is the stack of its pending request (§2.1, §2.2).

use crate::position::{PositionId, PositionTable};
use crate::rag::{CycleStep, Rag, WaitEdge};
use crate::signature::{Signature, SignatureKind, SignaturePair};
use crate::OwnerId;

/// Classification of a detected wait-for cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedCycle {
    /// The threads participating in the cycle, in wait order.
    pub owners: Vec<OwnerId>,
    /// True if at least one participant is parked by the avoidance module, in
    /// which case the cycle is an avoidance-induced deadlock (starvation)
    /// rather than a genuine program deadlock.
    pub involves_yield: bool,
    /// The extracted signature.
    pub signature: Signature,
}

/// Builds a [`DetectedCycle`] from the steps returned by
/// [`Rag::find_cycle_from`].
///
/// For every step `i`, `steps[i].owner` waits on `steps[(i + 1) % n].owner`
/// through `steps[i].edge`. The waited-on thread's *outer* stack is **its
/// own** acquisition position of the lock on that edge — with multi-owner
/// lock nodes the waited-on thread is one owner among possibly several (a
/// reader crowd), and the signature's template position must come from the
/// owner actually on the cycle, not from an arbitrary representative — or
/// its own requesting position (for yield edges, where no specific lock is
/// held); its *inner* stack is the position of its pending request.
pub fn classify_cycle(rag: &Rag, positions: &PositionTable, steps: &[CycleStep]) -> DetectedCycle {
    let n = steps.len();
    let mut pairs = Vec::with_capacity(n);
    let mut involves_yield = false;
    let owners: Vec<OwnerId> = steps.iter().map(|s| s.owner).collect();

    for i in 0..n {
        let waited_on = steps[(i + 1) % n].owner;
        // Inner stack: the waited-on thread's own pending request (every
        // participant of a cycle has one, whether blocked or parked).
        let inner_pos = rag
            .requesting(waited_on)
            .map(|(_, p)| p)
            .or_else(|| rag.yielding(waited_on).map(|y| y.position));
        let outer_pos: Option<PositionId> = match &steps[i].edge {
            WaitEdge::Lock(lock) => rag.acq_pos_of(*lock, waited_on),
            WaitEdge::Yield(_) => {
                involves_yield = true;
                // The parked predecessor waits on `waited_on` because it
                // covers one of the signature's outer positions; the most
                // informative stable stack we have for it is the acquisition
                // position of the last lock it acquired at a history
                // position, falling back to its latest held lock.
                last_history_hold(rag, positions, waited_on)
                    .or_else(|| rag.held_locks(waited_on).last().map(|e| e.pos))
                    .or(inner_pos)
            }
        };
        let lookup = |pos: Option<PositionId>| {
            pos.and_then(|p| positions.get(p))
                .map(|p| p.stack().clone())
                .unwrap_or_default()
        };
        pairs.push(SignaturePair::new(lookup(outer_pos), lookup(inner_pos)));
    }

    // A yield edge anywhere makes the whole cycle an avoidance artifact.
    if steps.iter().any(|s| matches!(s.edge, WaitEdge::Yield(_))) {
        involves_yield = true;
    }

    let kind = if involves_yield {
        SignatureKind::Starvation
    } else {
        SignatureKind::Deadlock
    };
    DetectedCycle {
        owners,
        involves_yield,
        signature: Signature::new(kind, pairs),
    }
}

/// Latest lock held by `t` whose acquisition position is flagged as being in
/// the history.
pub(crate) fn last_history_hold(
    rag: &Rag,
    positions: &PositionTable,
    t: OwnerId,
) -> Option<PositionId> {
    rag.held_locks(t)
        .iter()
        .rev()
        .map(|e| e.pos)
        .find(|p| positions.get(*p).map(|d| d.in_history()).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callstack::{CallStack, Frame};
    use crate::rag::YieldRecord;
    use crate::{LockId, SignatureId};

    fn t(i: u64) -> OwnerId {
        OwnerId::thread(i)
    }
    fn l(i: u64) -> LockId {
        LockId::new(i)
    }
    fn stack(tag: u32) -> CallStack {
        CallStack::single(Frame::new(format!("m{tag}"), "f.rs", tag))
    }

    /// Builds the canonical two-thread deadlock and checks the extracted
    /// signature has the acquisition stacks as outer and the blocked request
    /// stacks as inner.
    #[test]
    fn two_thread_deadlock_signature() {
        let mut positions = PositionTable::new(1);
        let p_a1 = positions.intern(&stack(1)); // t1 acquires l1 here
        let p_a2 = positions.intern(&stack(2)); // t2 acquires l2 here
        let p_r1 = positions.intern(&stack(3)); // t1 requests l2 here
        let p_r2 = positions.intern(&stack(4)); // t2 requests l1 here

        let mut rag = Rag::new();
        rag.acquire(t(1), l(1), p_a1);
        rag.acquire(t(2), l(2), p_a2);
        rag.set_request(t(1), l(2), p_r1);
        rag.set_request(t(2), l(1), p_r2);

        let steps = rag.find_cycle_from(t(2), false).expect("cycle");
        let detected = classify_cycle(&rag, &positions, &steps);
        assert!(!detected.involves_yield);
        assert_eq!(detected.signature.kind(), SignatureKind::Deadlock);
        assert_eq!(detected.signature.arity(), 2);

        let outers: Vec<String> = detected
            .signature
            .outer_stacks()
            .map(|s| s.to_compact())
            .collect();
        assert!(outers.contains(&stack(1).to_compact()));
        assert!(outers.contains(&stack(2).to_compact()));
        let inners: Vec<String> = detected
            .signature
            .inner_stacks()
            .map(|s| s.to_compact())
            .collect();
        assert!(inners.contains(&stack(3).to_compact()));
        assert!(inners.contains(&stack(4).to_compact()));
    }

    #[test]
    fn cycle_through_parked_thread_is_starvation() {
        let mut positions = PositionTable::new(1);
        let p_a1 = positions.intern(&stack(1));
        let p_a2 = positions.intern(&stack(2));
        let p_r1 = positions.intern(&stack(3));
        let p_r2 = positions.intern(&stack(4));

        let mut rag = Rag::new();
        // t1 holds l1 and requests l2 (held by t2); t2 is parked by avoidance
        // waiting on t1.
        rag.acquire(t(1), l(1), p_a1);
        rag.acquire(t(2), l(2), p_a2);
        rag.set_request(t(1), l(2), p_r1);
        rag.set_request(t(2), l(3), p_r2);
        rag.register_lock(l(3));
        rag.set_yield(
            t(2),
            YieldRecord {
                signature: SignatureId::new(0),
                position: p_r2,
                lock: l(3),
                blockers: vec![t(1)],
            },
        );

        let steps = rag.find_cycle_from(t(1), true).expect("cycle");
        let detected = classify_cycle(&rag, &positions, &steps);
        assert!(detected.involves_yield);
        assert_eq!(detected.signature.kind(), SignatureKind::Starvation);
        assert_eq!(detected.owners.len(), 2);
    }

    #[test]
    fn three_thread_cycle_has_three_pairs() {
        let mut positions = PositionTable::new(1);
        let pa: Vec<_> = (0..3).map(|i| positions.intern(&stack(10 + i))).collect();
        let pr: Vec<_> = (0..3).map(|i| positions.intern(&stack(20 + i))).collect();
        let mut rag = Rag::new();
        for i in 0..3u64 {
            rag.acquire(t(i + 1), l(i + 1), pa[i as usize]);
        }
        rag.set_request(t(1), l(2), pr[0]);
        rag.set_request(t(2), l(3), pr[1]);
        rag.set_request(t(3), l(1), pr[2]);
        let steps = rag.find_cycle_from(t(3), false).expect("cycle");
        let detected = classify_cycle(&rag, &positions, &steps);
        assert_eq!(detected.signature.arity(), 3);
        assert_eq!(detected.owners.len(), 3);
    }
}
