//! A minimal JSON reader/writer used by the history codec and the antibody
//! pack codec in `dimmunix-exchange`.
//!
//! The container this reproduction builds in has no registry access, so the
//! crate cannot depend on `serde_json`; the JSON surface of the history and
//! of antibody packs is small (objects, arrays, strings, numbers) and is
//! served by this self-contained module instead. The parser is a plain
//! recursive-descent over a generic [`JsonValue`], the writer a pair of
//! escape helpers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is irrelevant to the codec.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one
    /// (counts and epochs in the codecs; `f64` holds integers exactly up to
    /// 2^53, far beyond any record count).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// A member of the value, if it is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Escapes `s` into a double-quoted JSON string literal appended to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
/// Returns a human-readable message for malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: JSON encodes astral characters as
                        // two consecutive \uXXXX escapes.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    char::from_u32(
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                    )
                                } else {
                                    // High surrogate not followed by a low one.
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                    }
                    other => return Err(format!("invalid escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at b.
                let start = *pos - 1;
                let width = utf8_width(b);
                let end = start + width;
                if end > bytes.len() {
                    return Err("truncated utf-8 sequence".into());
                }
                let s = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let text = std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|e| e.to_string())?;
    *pos += 4;
    u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u digits `{text}`"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, "two", true, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn escape_roundtrip() {
        let original = "line\nquote\"slash\\tab\tünïcode €";
        let mut doc = String::new();
        write_escaped(&mut doc, original);
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let parsed = parse(r#""😀""#).unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_invalid_surrogates() {
        // Lone high surrogate, high+high pair, and lone low surrogate must
        // all be parse errors, never a panic or a wrong character.
        assert!(parse(r#""\uD800""#).is_err());
        assert!(parse(r#""\uD800\uD800""#).is_err());
        assert!(parse(r#""\uDC00""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
