//! Structurally-shared persistent containers backing the history snapshot.
//!
//! [`HistorySnapshot::append`](crate::HistorySnapshot::append) used to clone
//! the entire history (signature vector, fingerprint map, canonical outer
//! table, inverted index) to produce its successor — O(|history|) per
//! detection. At fleet scale (ROADMAP direction 1: thousands of aggregated
//! antibodies) that copy dominates detection cost. The two containers here
//! make the successor snapshot an O(log₃₂ n) *path copy* instead:
//!
//! * [`PersistentVec`] — a 32-way bitmapped-trie vector (the classic
//!   Clojure/Scala persistent vector). `clone` is O(1) (three `Arc` bumps),
//!   `push`/`set` copy one root-to-leaf path, `get` walks log₃₂ n nodes,
//!   and iteration touches each leaf once.
//! * [`PersistentMap`] — a hash-array-mapped trie over a 4-bit radix
//!   (16-way branches), used for the fingerprint-dedup and stack-interning
//!   lookups. `clone` is O(1); `insert` path-copies log₁₆ n nodes. The map
//!   is deliberately *narrower* than the vector: an insert's dominant cost
//!   is cloning the child arrays along the copied path (one refcount bump
//!   per surviving pointer, and one decrement when the replaced epoch
//!   drops), which totals Σ min(width, n/widthˡ) over the levels l. A
//!   narrow radix keeps every copied array small, so that sum — and with
//!   it the append-cost curve the `history_scale` bench gates — grows far
//!   more slowly with n than a wide node's would. The vector does not share
//!   this trade-off: its pushes only touch the always-warm right spine.
//!
//! Both are built from `std` only (the build environment has no crates.io
//! access — see the PR 1 notes in CHANGES.md) and contain no unsafe code.
//! Values are stored behind the structure's own nodes, so cheap-to-clone
//! element types (`Arc<T>`, small copyable records) keep leaf copies cheap.
//!
//! The `PersistentVec`-vs-`Vec` oracle property test lives in
//! `tests/proptests.rs` (200+ generated op sequences, including
//! clone-then-diverge structural sharing).

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Radix bits per vector-trie level.
const BITS: usize = 5;
/// Vector branching factor (2^BITS).
const WIDTH: usize = 1 << BITS;
/// Mask selecting one vector radix digit.
const MASK: usize = WIDTH - 1;

/// Radix bits per map-trie level (see the module docs for why the map is
/// narrower than the vector).
const MAP_BITS: usize = 4;
/// Map branching factor (2^MAP_BITS).
const MAP_WIDTH: usize = 1 << MAP_BITS;
/// Mask selecting one map radix digit.
const MAP_MASK: usize = MAP_WIDTH - 1;

// ----------------------------------------------------------------------
// PersistentVec
// ----------------------------------------------------------------------

/// Trie node: interior branches hold up to 32 children, leaves hold exactly
/// 32 elements (the trailing partial chunk lives in the vector's tail).
#[derive(Debug)]
enum Node<T> {
    Branch(Vec<Option<Arc<Node<T>>>>),
    Leaf(Vec<T>),
}

/// A persistent (immutable, structurally shared) vector.
///
/// `push` and `set` return a *new* vector sharing almost all storage with
/// the original; the original is never modified. `clone` is O(1), which is
/// what lets [`HistorySnapshot::append`](crate::HistorySnapshot::append)
/// produce a successor snapshot without copying the history.
///
/// ```
/// use dimmunix_core::PersistentVec;
/// let a: PersistentVec<u32> = (0..100).collect();
/// let b = a.push(100);
/// assert_eq!(a.len(), 100);        // the original is untouched
/// assert_eq!(b.len(), 101);
/// assert_eq!(b.get(100), Some(&100));
/// assert_eq!(a.get(100), None);
/// ```
pub struct PersistentVec<T> {
    len: usize,
    /// Radix shift of the root level; 0 means the root (if any) is a leaf.
    shift: usize,
    root: Option<Arc<Node<T>>>,
    /// The trailing `len % 32` elements (or 32 when `len` is a non-zero
    /// multiple), kept outside the trie so pushes into a partial chunk are
    /// one small clone instead of a path copy.
    tail: Arc<Vec<T>>,
}

impl<T> Clone for PersistentVec<T> {
    fn clone(&self) -> Self {
        PersistentVec {
            len: self.len,
            shift: self.shift,
            root: self.root.clone(),
            tail: Arc::clone(&self.tail),
        }
    }
}

impl<T> Default for PersistentVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for PersistentVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T> PersistentVec<T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        PersistentVec {
            len: 0,
            shift: 0,
            root: None,
            tail: Arc::new(Vec::new()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First index stored in the tail chunk (a multiple of 32).
    fn tail_offset(&self) -> usize {
        self.len - self.tail.len()
    }

    /// The element at `index`, or `None` out of range.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        Some(&self.leaf_for(index)[index & MASK])
    }

    /// The 32-aligned chunk containing `index` (which must be in range).
    fn leaf_for(&self, index: usize) -> &[T] {
        if index >= self.tail_offset() {
            return &self.tail;
        }
        let mut node = self
            .root
            .as_deref()
            .expect("an index below the tail offset implies a trie");
        let mut level = self.shift;
        loop {
            match node {
                Node::Branch(children) => {
                    node = children[(index >> level) & MASK]
                        .as_deref()
                        .expect("in-range index resolves through populated children");
                    level -= BITS;
                }
                Node::Leaf(items) => return items,
            }
        }
    }

    /// Iterates over the elements in order. Each 32-element chunk is
    /// resolved once, so a full traversal costs O(n) element visits plus
    /// O(n / 32) trie walks.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            vec: self,
            index: 0,
            chunk: &[],
            chunk_start: 0,
        }
    }
}

impl<T: Clone> PersistentVec<T> {
    /// Returns a vector extended by `value`. O(1) amortized clones into the
    /// tail chunk; every 32nd push copies one root-to-leaf path.
    #[must_use = "PersistentVec::push returns the extended vector"]
    pub fn push(&self, value: T) -> Self {
        if self.tail.len() < WIDTH {
            let mut tail = (*self.tail).clone();
            tail.push(value);
            return PersistentVec {
                len: self.len + 1,
                shift: self.shift,
                root: self.root.clone(),
                tail: Arc::new(tail),
            };
        }
        // The tail is full: push it into the trie as a leaf and start a new
        // tail with the single new element.
        let leaf = Arc::new(Node::Leaf((*self.tail).clone()));
        let trie_len = self.tail_offset();
        let (root, shift) = match &self.root {
            None => (leaf, 0),
            Some(root) if trie_len == WIDTH << self.shift => {
                // The root is full: grow one level.
                let mut children: Vec<Option<Arc<Node<T>>>> = vec![None; WIDTH];
                children[0] = Some(Arc::clone(root));
                children[1] = Some(new_path(self.shift, leaf));
                (Arc::new(Node::Branch(children)), self.shift + BITS)
            }
            Some(root) => (push_leaf(root, self.shift, trie_len, leaf), self.shift),
        };
        PersistentVec {
            len: self.len + 1,
            shift,
            root: Some(root),
            tail: Arc::new(vec![value]),
        }
    }

    /// Returns a vector with the element at `index` replaced, path-copying
    /// one root-to-leaf spine. The original is untouched.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[must_use = "PersistentVec::set returns the updated vector"]
    pub fn set(&self, index: usize, value: T) -> Self {
        assert!(
            index < self.len,
            "set index {index} out of range (len {})",
            self.len
        );
        if index >= self.tail_offset() {
            let mut tail = (*self.tail).clone();
            tail[index & MASK] = value;
            return PersistentVec {
                len: self.len,
                shift: self.shift,
                root: self.root.clone(),
                tail: Arc::new(tail),
            };
        }
        let root = set_in(
            self.root.as_ref().expect("trie exists below tail offset"),
            self.shift,
            index,
            value,
        );
        PersistentVec {
            len: self.len,
            shift: self.shift,
            root: Some(root),
            tail: Arc::clone(&self.tail),
        }
    }
}

/// Wraps `node` in single-child branches from `level` down to the leaf level.
fn new_path<T>(level: usize, node: Arc<Node<T>>) -> Arc<Node<T>> {
    if level == 0 {
        return node;
    }
    let mut children: Vec<Option<Arc<Node<T>>>> = vec![None; WIDTH];
    children[0] = Some(new_path(level - BITS, node));
    Arc::new(Node::Branch(children))
}

/// Inserts `leaf` (the chunk starting at element `index`) below `node`,
/// path-copying the visited branches.
fn push_leaf<T>(
    node: &Arc<Node<T>>,
    level: usize,
    index: usize,
    leaf: Arc<Node<T>>,
) -> Arc<Node<T>> {
    let Node::Branch(children) = &**node else {
        unreachable!("push_leaf only descends through branches");
    };
    let mut children = children.clone();
    let sub = (index >> level) & MASK;
    children[sub] = Some(match &children[sub] {
        None => new_path(level - BITS, leaf),
        Some(child) => push_leaf(child, level - BITS, index, leaf),
    });
    Arc::new(Node::Branch(children))
}

/// Replaces element `index` below `node`, path-copying the visited spine.
fn set_in<T: Clone>(node: &Arc<Node<T>>, level: usize, index: usize, value: T) -> Arc<Node<T>> {
    match &**node {
        Node::Leaf(items) => {
            let mut items = items.clone();
            items[index & MASK] = value;
            Arc::new(Node::Leaf(items))
        }
        Node::Branch(children) => {
            let sub = (index >> level) & MASK;
            let mut children = children.clone();
            let child = children[sub].as_ref().expect("in-range index");
            children[sub] = Some(set_in(child, level - BITS, index, value));
            Arc::new(Node::Branch(children))
        }
    }
}

impl<T: Clone> FromIterator<T> for PersistentVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = PersistentVec::new();
        for item in iter {
            v = v.push(item);
        }
        v
    }
}

/// Chunk-caching iterator over a [`PersistentVec`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    vec: &'a PersistentVec<T>,
    index: usize,
    chunk: &'a [T],
    chunk_start: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.index >= self.vec.len {
            return None;
        }
        if self.index < self.chunk_start || self.index - self.chunk_start >= self.chunk.len() {
            self.chunk = self.vec.leaf_for(self.index);
            self.chunk_start = self.index & !MASK;
        }
        let item = &self.chunk[self.index - self.chunk_start];
        self.index += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.vec.len - self.index;
        (rest, Some(rest))
    }
}

impl<'a, T> IntoIterator for &'a PersistentVec<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

// ----------------------------------------------------------------------
// PersistentMap
// ----------------------------------------------------------------------

/// HAMT node: branches use an occupancy bitmap over the next 4 hash bits
/// with a dense child vector; leaves bucket the entries of one full 64-bit
/// hash (different keys with equal hashes share a leaf).
#[derive(Debug)]
enum MapNode<K, V> {
    Branch {
        bitmap: u64,
        children: Vec<Arc<MapNode<K, V>>>,
    },
    Leaf {
        hash: u64,
        entries: Vec<(K, V)>,
    },
}

/// A persistent (immutable, structurally shared) hash map.
///
/// `insert` returns a new map sharing all untouched storage with the
/// original; `clone` is O(1). Hashing uses the same fixed-key
/// `DefaultHasher` as the history's fingerprint index, so layout is
/// deterministic within a process run (nothing here is persisted).
///
/// ```
/// use dimmunix_core::PersistentMap;
/// let a: PersistentMap<u32, &str> = PersistentMap::new();
/// let b = a.insert(1, "one").0;
/// assert_eq!(a.get(&1), None);     // the original is untouched
/// assert_eq!(b.get(&1), Some(&"one"));
/// ```
pub struct PersistentMap<K, V> {
    len: usize,
    root: Option<Arc<MapNode<K, V>>>,
}

impl<K, V> Clone for PersistentMap<K, V> {
    fn clone(&self) -> Self {
        PersistentMap {
            len: self.len,
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for PersistentMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PersistentMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
    // Fixed-key SipHash: deterministic within a process, never persisted.
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K, V> PersistentMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PersistentMap { len: 0, root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the entries in unspecified (but deterministic) order.
    pub fn iter(&self) -> MapIter<'_, K, V> {
        MapIter {
            stack: self.root.as_deref().into_iter().collect(),
            leaf: &[],
        }
    }

    /// Iterates over the values in unspecified (but deterministic) order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Hash + Eq, V> PersistentMap<K, V> {
    /// The value stored under `key`, if any. Like `HashMap::get`, the probe
    /// may be any borrowed form of the key type (e.g. a `&CallStack`
    /// probing an `Arc<CallStack>`-keyed map), provided its `Hash` and `Eq`
    /// agree with the owned form — which `Borrow` guarantees.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let hash = hash_of(key);
        let mut node = self.root.as_deref()?;
        let mut level = 0usize;
        loop {
            match node {
                MapNode::Leaf { hash: h, entries } => {
                    return if *h == hash {
                        entries
                            .iter()
                            .find(|(k, _)| k.borrow() == key)
                            .map(|(_, v)| v)
                    } else {
                        None
                    };
                }
                MapNode::Branch { bitmap, children } => {
                    let bit = 1u64 << ((hash >> level) as usize & MAP_MASK);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    node = &children[(bitmap & (bit - 1)).count_ones() as usize];
                    level += MAP_BITS;
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> PersistentMap<K, V> {
    /// Returns a map with `key` bound to `value`, plus whether the key was
    /// new (`false` means an existing binding was replaced). The original
    /// map is untouched.
    #[must_use = "PersistentMap::insert returns the updated map"]
    pub fn insert(&self, key: K, value: V) -> (Self, bool) {
        let hash = hash_of(&key);
        let (root, added) = match &self.root {
            None => (
                Arc::new(MapNode::Leaf {
                    hash,
                    entries: vec![(key, value)],
                }),
                true,
            ),
            Some(root) => insert_in(root, 0, hash, key, value),
        };
        (
            PersistentMap {
                len: self.len + usize::from(added),
                root: Some(root),
            },
            added,
        )
    }
}

/// Recursive insert: path-copies the visited spine, splitting a leaf into a
/// branch when two different hashes collide at the current level.
fn insert_in<K: Hash + Eq + Clone, V: Clone>(
    node: &Arc<MapNode<K, V>>,
    level: usize,
    hash: u64,
    key: K,
    value: V,
) -> (Arc<MapNode<K, V>>, bool) {
    match &**node {
        MapNode::Leaf { hash: h, entries } if *h == hash => {
            let mut entries = entries.clone();
            if let Some(entry) = entries.iter_mut().find(|(k, _)| *k == key) {
                entry.1 = value;
                (Arc::new(MapNode::Leaf { hash, entries }), false)
            } else {
                entries.push((key, value));
                (Arc::new(MapNode::Leaf { hash, entries }), true)
            }
        }
        MapNode::Leaf { hash: h, .. } => {
            (split(Arc::clone(node), *h, level, hash, key, value), true)
        }
        MapNode::Branch { bitmap, children } => {
            let frag = (hash >> level) as usize & MAP_MASK;
            let bit = 1u64 << frag;
            let idx = (bitmap & (bit - 1)).count_ones() as usize;
            let mut children = children.clone();
            if bitmap & bit != 0 {
                let (child, added) = insert_in(&children[idx], level + MAP_BITS, hash, key, value);
                children[idx] = child;
                (
                    Arc::new(MapNode::Branch {
                        bitmap: *bitmap,
                        children,
                    }),
                    added,
                )
            } else {
                children.insert(
                    idx,
                    Arc::new(MapNode::Leaf {
                        hash,
                        entries: vec![(key, value)],
                    }),
                );
                (
                    Arc::new(MapNode::Branch {
                        bitmap: bitmap | bit,
                        children,
                    }),
                    true,
                )
            }
        }
    }
}

/// Builds the branch spine separating an existing leaf (hash `old_hash`)
/// from a new entry whose hash differs. Two distinct 64-bit hashes differ at
/// some 4-bit fragment, so the recursion terminates before the hash runs out
/// of bits.
fn split<K, V>(
    old: Arc<MapNode<K, V>>,
    old_hash: u64,
    level: usize,
    hash: u64,
    key: K,
    value: V,
) -> Arc<MapNode<K, V>> {
    let old_frag = (old_hash >> level) as usize & MAP_MASK;
    let new_frag = (hash >> level) as usize & MAP_MASK;
    if old_frag == new_frag {
        let child = split(old, old_hash, level + MAP_BITS, hash, key, value);
        return Arc::new(MapNode::Branch {
            bitmap: 1u64 << old_frag,
            children: vec![child],
        });
    }
    let new_leaf = Arc::new(MapNode::Leaf {
        hash,
        entries: vec![(key, value)],
    });
    let bitmap = (1u64 << old_frag) | (1u64 << new_frag);
    let children = if old_frag < new_frag {
        vec![old, new_leaf]
    } else {
        vec![new_leaf, old]
    };
    Arc::new(MapNode::Branch { bitmap, children })
}

/// Depth-first iterator over a [`PersistentMap`].
#[derive(Debug)]
pub struct MapIter<'a, K, V> {
    stack: Vec<&'a MapNode<K, V>>,
    leaf: &'a [(K, V)],
}

impl<'a, K, V> Iterator for MapIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if let Some((entry, rest)) = self.leaf.split_first() {
                self.leaf = rest;
                return Some((&entry.0, &entry.1));
            }
            match self.stack.pop()? {
                MapNode::Leaf { entries, .. } => self.leaf = entries,
                MapNode::Branch { children, .. } => {
                    self.stack.extend(children.iter().rev().map(Arc::as_ref));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_push_get_across_chunk_and_level_boundaries() {
        let mut v: PersistentVec<usize> = PersistentVec::new();
        assert!(v.is_empty());
        assert_eq!(v.get(0), None);
        // 0..1100 crosses the 32-element tail boundary, the 1024-element
        // root-growth boundary, and leaves a partial tail.
        for i in 0..1100 {
            v = v.push(i);
            assert_eq!(v.len(), i + 1);
        }
        for i in 0..1100 {
            assert_eq!(v.get(i), Some(&i), "index {i}");
        }
        assert_eq!(v.get(1100), None);
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..1100).collect::<Vec<_>>());
    }

    #[test]
    fn vec_clone_then_diverge_shares_structure() {
        let base: PersistentVec<u32> = (0..200).collect();
        let a = base.push(1000);
        let b = base.push(2000);
        assert_eq!(base.len(), 200);
        assert_eq!(a.get(200), Some(&1000));
        assert_eq!(b.get(200), Some(&2000));
        // Divergent sets never bleed into siblings or the base.
        let c = a.set(0, 7);
        assert_eq!(c.get(0), Some(&7));
        assert_eq!(a.get(0), Some(&0));
        assert_eq!(base.get(0), Some(&0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec_set_out_of_range_panics() {
        let v: PersistentVec<u8> = PersistentVec::new();
        let _ = v.set(0, 1);
    }

    #[test]
    fn map_insert_get_and_replace() {
        let mut m: PersistentMap<u64, u64> = PersistentMap::new();
        for i in 0..500 {
            let (next, added) = m.insert(i, i * 10);
            assert!(added);
            m = next;
        }
        assert_eq!(m.len(), 500);
        for i in 0..500 {
            assert_eq!(m.get(&i), Some(&(i * 10)), "key {i}");
        }
        assert_eq!(m.get(&500), None);
        let (replaced, added) = m.insert(42, 1);
        assert!(!added);
        assert_eq!(replaced.len(), 500);
        assert_eq!(replaced.get(&42), Some(&1));
        assert_eq!(m.get(&42), Some(&420), "the original is untouched");
        assert!(m.contains_key(&0));
        assert!(!m.contains_key(&10_000));
    }

    #[test]
    fn map_iter_visits_every_entry_once() {
        let mut m: PersistentMap<u32, u32> = PersistentMap::new();
        for i in 0..300 {
            m = m.insert(i, i).0;
        }
        let mut keys: Vec<u32> = m.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..300).collect::<Vec<_>>());
        assert_eq!(m.values().count(), 300);
    }
}
