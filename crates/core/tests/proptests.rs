//! Property-based tests for the core data structures and the engine.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties run on a self-contained deterministic harness: the
//! shared SplitMix64 generator from `dimmunix-testkit` drives several
//! hundred random cases per property and every failure message carries the
//! case seed, so a reported failure is reproducible by construction. The
//! oracle schedules themselves (release/acquire/skip slots, pre-trained
//! histories, the site universe) also come from the testkit, which freezes
//! their draw order so the pinned seeds keep meaning what they always did.

use dimmunix_core::{
    find_instantiation, AccessMode, CallStack, Config, Dimmunix, Frame, History, LockId,
    PersistentMap, PersistentVec, PositionId, PositionTable, RequestOutcome, ShardedDimmunix,
    Signature, SignatureId, SignatureIndex, SignatureKind, SignaturePair, ThreadId, ThreadQueue,
};
use dimmunix_testkit::schedule::{
    plan_mixed_step, plan_mutex_step, pretrain_history, universe_site, PlannedStep,
};
use dimmunix_testkit::Gen;

/// Number of random cases per property.
const CASES: u64 = 250;

fn frame(g: &mut Gen) -> Frame {
    // Names include characters the codecs must escape or split around.
    let methods = ["lock", "Service.enqueue", "weird@m:ethod", "wait_päth", "m"];
    let files = ["a.rs", "svc.java", "deep/dir/f.rs"];
    Frame::new(
        methods[g.range(0, methods.len())],
        files[g.range(0, files.len())],
        g.range(0, 5000) as u32,
    )
}

fn stack(g: &mut Gen, max_depth: usize) -> CallStack {
    let depth = g.range(1, max_depth + 1);
    CallStack::from_frames((0..depth).map(|_| frame(g)).collect())
}

fn signature(g: &mut Gen) -> Signature {
    let kind = if g.flip() {
        SignatureKind::Starvation
    } else {
        SignatureKind::Deadlock
    };
    let arity = g.range(1, 4);
    Signature::new(
        kind,
        (0..arity)
            .map(|_| SignaturePair::new(stack(g, 3), stack(g, 3)))
            .collect(),
    )
}

#[test]
fn prop_callstack_compact_roundtrip() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let cs = stack(&mut g, 5);
        let parsed = CallStack::parse_compact(&cs.to_compact())
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
        assert_eq!(parsed, cs, "seed {seed}");
    }
}

#[test]
fn prop_history_text_roundtrip() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let mut h = History::new();
        for _ in 0..g.range(0, 8) {
            h.add(signature(&mut g));
        }
        let reparsed = History::from_text(&h.to_text())
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
        assert_eq!(reparsed.len(), h.len(), "seed {seed}");
        for (id, s) in h.iter() {
            assert!(reparsed.get(id).unwrap().same_bug(s), "seed {seed}");
        }
    }
}

#[test]
fn prop_history_json_roundtrip() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let mut h = History::new();
        for _ in 0..g.range(0, 6) {
            h.add(signature(&mut g));
        }
        let json = h.to_json().unwrap();
        let reparsed = History::from_json(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: json decode failed: {e}\n{json}"));
        assert_eq!(reparsed.len(), h.len(), "seed {seed}");
        for (id, s) in h.iter() {
            assert!(reparsed.get(id).unwrap().same_bug(s), "seed {seed}");
        }
    }
}

#[test]
fn prop_position_interning_is_consistent() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let depth = g.range(1, 4);
        let stacks: Vec<CallStack> = (0..g.range(1, 40)).map(|_| stack(&mut g, 4)).collect();
        let mut table = PositionTable::new(depth);
        let ids: Vec<_> = stacks.iter().map(|s| table.intern(s)).collect();
        let distinct: std::collections::HashSet<_> =
            stacks.iter().map(|s| s.truncated(depth)).collect();
        assert_eq!(table.len(), distinct.len(), "seed {seed}");
        for (s, id) in stacks.iter().zip(&ids) {
            assert_eq!(table.lookup(s), Some(*id), "seed {seed}");
            assert_eq!(
                table.get(*id).unwrap().stack(),
                &s.truncated(depth),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn prop_thread_queue_multiset_semantics() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let mut q = ThreadQueue::new();
        let mut model: Vec<u64> = Vec::new();
        let mut high_water = 0usize;
        for _ in 0..g.range(1, 200) {
            let tid = g.range(0, 6) as u64;
            let t = ThreadId::new(tid);
            if g.flip() {
                q.push(t);
                model.push(tid);
            } else {
                let removed = q.remove_one(t);
                let model_had = model
                    .iter()
                    .position(|x| *x == tid)
                    .map(|i| {
                        model.remove(i);
                    })
                    .is_some();
                assert_eq!(removed, model_had, "seed {seed}");
            }
            high_water = high_water.max(model.len());
            assert_eq!(q.len(), model.len(), "seed {seed}");
            for id in 0u64..6 {
                assert_eq!(
                    q.count(ThreadId::new(id)),
                    model.iter().filter(|x| **x == id).count(),
                    "seed {seed}"
                );
            }
        }
        assert!(q.capacity() <= high_water, "seed {seed}");
    }
}

/// **Indexed avoidance ≡ linear scan.** Random histories over a small site
/// universe, random interning depth, random extra (noise) positions, random
/// thread queues: for every thread/position pair, the engine's inverted
/// [`SignatureIndex`] must return exactly what the linear-scan reference
/// oracle returns — same matched signature, same blockers.
#[test]
fn prop_indexed_find_instantiation_equals_linear_scan() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let depth = g.range(1, 3);
        let mut positions = PositionTable::new(depth);

        // A compact universe of sites so outer positions collide often and
        // queue coverage actually triggers matches.
        let universe: Vec<CallStack> = (0..8)
            .map(|i| CallStack::single(Frame::new(format!("site{i}"), "univ.rs", i as u32)))
            .collect();
        let mut history = History::new();
        for _ in 0..g.range(0, 6) {
            let arity = g.range(1, 4);
            let pairs = (0..arity)
                .map(|_| {
                    SignaturePair::new(
                        universe[g.range(0, universe.len())].clone(),
                        universe[g.range(0, universe.len())].clone(),
                    )
                })
                .collect();
            history.add(Signature::new(SignatureKind::Deadlock, pairs));
        }

        // Build the index the way the engine's position-interning hook does.
        let mut index = SignatureIndex::new();
        for (id, sig) in history.iter() {
            let outer: Vec<_> = sig.outer_stacks().map(|o| positions.intern(o)).collect();
            index.insert(id, outer);
        }
        // Noise positions not mentioned by any signature.
        for i in 0..g.range(0, 5) {
            positions.intern(&CallStack::single(Frame::new(
                format!("noise{i}"),
                "noise.rs",
                i as u32,
            )));
        }

        // Random queue occupancy.
        let table_len = positions.len();
        for _ in 0..g.range(0, 16) {
            if table_len == 0 {
                break;
            }
            let pid = positions.iter().nth(g.range(0, table_len)).unwrap().id();
            let t = ThreadId::new(g.range(1, 6) as u64);
            positions.get_mut(pid).unwrap().queue_mut().push(t);
        }

        // Exhaustive comparison over threads × positions.
        let pids: Vec<_> = positions.iter().map(|p| p.id()).collect();
        for t in 1..6u64 {
            let thread = ThreadId::new(t);
            for &pid in &pids {
                let linear = find_instantiation(&history, &positions, thread, pid);
                let indexed = index.find_instantiation(&positions, thread, pid);
                assert_eq!(
                    indexed, linear,
                    "seed {seed}: divergence for thread {t} at {pid}"
                );
            }
        }

        // The index must also be structurally consistent: a signature is
        // listed exactly at its resolved outer positions.
        for (id, sig) in history.iter() {
            let outs = index.outer_positions_of(id);
            assert_eq!(outs.len(), sig.arity(), "seed {seed}");
            for pid in outs {
                assert!(index.signatures_at(*pid).contains(&id), "seed {seed}");
            }
        }
    }
}

#[test]
fn prop_engine_consistent_on_ordered_workloads() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let depth = g.range(1, 3);
        let cfg = Config::builder().stack_depth(depth).build();
        let mut engine = Dimmunix::new(cfg);
        let plan: Vec<Vec<u64>> = (0..g.range(1, 6))
            .map(|_| (0..g.range(1, 5)).map(|_| g.range(0, 8) as u64).collect())
            .collect();
        for (tidx, locks) in plan.iter().enumerate() {
            let t = ThreadId::new(tidx as u64);
            // Deduplicate and sort: a global acquisition order prevents deadlock.
            let mut locks = locks.clone();
            locks.sort_unstable();
            locks.dedup();
            for (k, lraw) in locks.iter().enumerate() {
                let l = LockId::new(*lraw);
                let site = CallStack::single(Frame::new(
                    format!("worker{tidx}.step{k}"),
                    "workload.rs",
                    *lraw as u32,
                ));
                let outcome = engine.request(t, l, &site);
                assert!(outcome.is_granted(), "seed {seed}: {outcome:?}");
                engine.acquired(t, l);
            }
            for lraw in locks.iter().rev() {
                engine.released(t, LockId::new(*lraw));
            }
        }
        assert_eq!(engine.stats().deadlocks_detected, 0, "seed {seed}");
        assert_eq!(engine.stats().yields, 0, "seed {seed}");
        // An empty history means the index examined no signature at all.
        assert_eq!(engine.stats().signatures_examined, 0, "seed {seed}");
        for lraw in 0u64..8 {
            assert_eq!(engine.rag().owner(LockId::new(lraw)), None, "seed {seed}");
        }
        for p in engine.positions().iter() {
            assert!(p.queue().is_empty(), "seed {seed}");
        }
        assert_eq!(
            engine.stats().acquisitions,
            engine.stats().releases,
            "seed {seed}"
        );
    }
}

/// **Sharded engine ≡ monolithic engine.** Drives the same randomly
/// scheduled lock workload — random nesting, contention, deadlock cycles,
/// yield/park/retry, pre-trained histories — through a monolithic
/// [`Dimmunix`] (the oracle) and through [`ShardedDimmunix`] instances with
/// several shard counts (including the `shards = 1` reference
/// configuration). Every hook call must produce the identical outcome, the
/// rolled-up per-shard counters must equal the oracle's, and the history
/// replicas must record the same antibodies.
///
/// Runs once per setting of [`Config::lock_free_admission`]: the knob
/// selects between the scoped (blocker-based) and global any-park
/// degradation predicates in the sharded fast path, and neither may ever
/// diverge from the monolithic oracle by a single decision.
#[test]
fn prop_sharded_engine_equals_monolithic_oracle() {
    for lock_free in [true, false] {
        sharded_oracle_property(lock_free);
    }
}

fn sharded_oracle_property(lock_free: bool) {
    /// What the simulated substrate is doing with one logical thread.
    #[derive(Clone, Copy, PartialEq)]
    enum ThreadMode {
        Running,
        /// Granted by the engine but the lock's owner has not released yet
        /// (a real substrate would be blocked on the lock itself).
        WaitingAcquire(u64),
        /// Parked by avoidance; retries on the next schedule slot.
        Parked(u64),
    }

    const THREADS: u64 = 4;
    const LOCKS: u64 = 10;
    // Salt so this property explores different schedules than its siblings.
    const SEED_SALT: u64 = 0x5eed_5a17;

    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ SEED_SALT);
        // Optionally pre-train a history over the site universe so the
        // avoidance and starvation machinery is exercised.
        let history = pretrain_history(&mut g, 6);

        let cfg = Config::builder().lock_free_admission(lock_free).build();
        let mut oracle = Dimmunix::with_history(cfg.clone(), history.clone());
        let shard_counts = [1usize, 2, 3, 8];
        let mut sharded: Vec<ShardedDimmunix> = shard_counts
            .iter()
            .map(|&n| ShardedDimmunix::with_history(cfg.clone(), n, history.clone()))
            .collect();

        let mut mode = [ThreadMode::Running; THREADS as usize];
        // Locks each thread currently holds (tracked substrate-side), most
        // recent last.
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); THREADS as usize];

        for step in 0..g.range(40, 120) {
            let tid = g.range(0, THREADS as usize);
            let t = ThreadId::new(tid as u64);
            match mode[tid] {
                ThreadMode::WaitingAcquire(lraw) => {
                    // Complete the acquisition once the lock is free.
                    let l = LockId::new(lraw);
                    if oracle.rag().owner(l).is_none() {
                        oracle.acquired(t, l);
                        for s in &mut sharded {
                            s.acquired(t, l);
                        }
                        held[tid].push(lraw);
                        mode[tid] = ThreadMode::Running;
                    }
                }
                ThreadMode::Parked(_) | ThreadMode::Running => {
                    let retry = match mode[tid] {
                        ThreadMode::Parked(lr) => Some(lr),
                        _ => None,
                    };
                    let (lraw, site) =
                        match plan_mutex_step(&mut g, LOCKS as usize, 6, &held[tid], retry) {
                            PlannedStep::Release => {
                                let lraw = held[tid].pop().unwrap();
                                let l = LockId::new(lraw);
                                let oracle_wake = oracle.released(t, l);
                                for (s, &n) in sharded.iter_mut().zip(&shard_counts) {
                                    let wake = s.released(t, l);
                                    assert_eq!(
                                        wake, oracle_wake,
                                        "seed {seed} step {step}: release wake-ups diverge \
                                         (shards {n})"
                                    );
                                }
                                continue;
                            }
                            // No reentrant acquisitions except through random
                            // collision — the generator skips them.
                            PlannedStep::Skip => continue,
                            PlannedStep::Acquire { lock, site, .. } => (lock, site),
                        };
                    let l = LockId::new(lraw);
                    let site = universe_site(site);
                    let outcome = oracle.request(t, l, &site);
                    for (s, &n) in sharded.iter_mut().zip(&shard_counts) {
                        let sharded_outcome = s.request(t, l, &site);
                        assert_eq!(
                            sharded_outcome, outcome,
                            "seed {seed} step {step}: outcome diverges (shards {n}, t{tid}, l{lraw})"
                        );
                    }
                    match outcome {
                        RequestOutcome::Granted => {
                            if oracle.rag().owner(l).is_none() {
                                oracle.acquired(t, l);
                                for s in &mut sharded {
                                    s.acquired(t, l);
                                }
                                held[tid].push(lraw);
                                mode[tid] = ThreadMode::Running;
                            } else {
                                mode[tid] = ThreadMode::WaitingAcquire(lraw);
                            }
                        }
                        RequestOutcome::GrantedReentrant => {
                            oracle.acquired(t, l);
                            for s in &mut sharded {
                                s.acquired(t, l);
                            }
                            held[tid].push(lraw);
                            mode[tid] = ThreadMode::Running;
                        }
                        RequestOutcome::Yield { .. } => {
                            mode[tid] = ThreadMode::Parked(lraw);
                        }
                        RequestOutcome::DeadlockDetected { .. } => {
                            // Substrate refuses the acquisition (error
                            // policy) and backs out.
                            oracle.cancel_request(t, l);
                            for s in &mut sharded {
                                s.cancel_request(t, l);
                            }
                            mode[tid] = ThreadMode::Running;
                        }
                    }
                    let mut oracle_pending = oracle.take_pending_wakeups();
                    oracle_pending.sort_unstable_by_key(|s| s.index());
                    for (s, &n) in sharded.iter_mut().zip(&shard_counts) {
                        let mut pending = s.take_pending_wakeups();
                        pending.sort_unstable_by_key(|s| s.index());
                        assert_eq!(
                            pending, oracle_pending,
                            "seed {seed} step {step}: pending wake-ups diverge (shards {n})"
                        );
                    }
                }
            }
        }

        // Rolled-up counters must equal the oracle's.
        for (s, &n) in sharded.iter().zip(&shard_counts) {
            assert_eq!(
                s.stats(),
                *oracle.stats(),
                "seed {seed}: rolled-up stats diverge (shards {n})"
            );
            // Identical histories, signature for signature.
            assert_eq!(s.history().len(), oracle.history().len(), "seed {seed}");
            for (id, sig) in oracle.history().iter() {
                assert!(
                    s.history().get(id).unwrap().same_bug(sig),
                    "seed {seed}: history diverges at {id} (shards {n})"
                );
            }
            // The history is shared, not replicated: every shard must hold
            // the *same* snapshot allocation, and the snapshot must have
            // advanced exactly as often as the oracle's.
            for i in 0..s.shard_count() {
                assert!(
                    std::sync::Arc::ptr_eq(s.history_snapshot(), s.shard(i).history_snapshot()),
                    "seed {seed}: shard {i} holds a private snapshot (shards {n})"
                );
            }
            assert_eq!(
                s.history_snapshot().epoch(),
                oracle.history_snapshot().epoch(),
                "seed {seed}: snapshot epochs diverge (shards {n})"
            );
        }
    }
}

/// **Sharded engine ≡ monolithic engine, with read/write schedules.** The
/// rwlock extension of `prop_sharded_engine_equals_monolithic_oracle`:
/// random schedules now mix exclusive (mutex-style) and shared
/// (rwlock-read-style) acquisitions, including reader crowds, reentrant
/// re-acquisitions, writers blocked behind crowds, deadlock cycles through
/// non-first readers, parking/retry, and pre-trained histories. Every hook
/// call must produce the identical outcome on the monolithic oracle and on
/// sharded engines with shards ∈ {1, 2, 3, 8}, with identical rolled-up
/// stats, histories, and shared-snapshot epochs — so the multi-owner
/// detection/avoidance paths cannot drift between the two implementations.
///
/// As with the mutex-only sibling, runs once per setting of
/// [`Config::lock_free_admission`] so both degradation-scoping predicates
/// are pinned to the oracle.
#[test]
fn prop_sharded_engine_equals_monolithic_oracle_mixed_rwlock() {
    for lock_free in [true, false] {
        sharded_oracle_mixed_rwlock_property(lock_free);
    }
}

fn sharded_oracle_mixed_rwlock_property(lock_free: bool) {
    /// What the simulated substrate is doing with one logical thread.
    #[derive(Clone, Copy, PartialEq)]
    enum ThreadMode {
        Running,
        /// Granted by the engine but the real lock is not yet available
        /// (incompatible owners still hold it).
        WaitingAcquire(u64, AccessMode),
        /// Parked by avoidance; retries on the next schedule slot.
        Parked(u64, AccessMode),
    }

    const THREADS: u64 = 4;
    const LOCKS: u64 = 8;
    /// ≥ 150 seeds (satellite requirement); salted so this property
    /// explores different schedules than its mutex-only sibling.
    const MIXED_CASES: u64 = 160;
    const SEED_SALT: u64 = 0x0a11_0c8e_5eed;

    for seed in 0..MIXED_CASES {
        let mut g = Gen::new(seed ^ SEED_SALT);
        // Optionally pre-train a history over the site universe so the
        // avoidance machinery (including the crowd-mate carve-out) runs.
        let history = pretrain_history(&mut g, 6);

        let cfg = Config::builder().lock_free_admission(lock_free).build();
        let mut oracle = Dimmunix::with_history(cfg.clone(), history.clone());
        let shard_counts = [1usize, 2, 3, 8];
        let mut sharded: Vec<ShardedDimmunix> = shard_counts
            .iter()
            .map(|&n| ShardedDimmunix::with_history(cfg.clone(), n, history.clone()))
            .collect();

        let mut mode = [ThreadMode::Running; THREADS as usize];
        // Locks each thread currently holds with their modes (tracked
        // substrate-side), most recent last; reentrant acquisitions appear
        // once per level.
        let mut held: Vec<Vec<(u64, AccessMode)>> = vec![Vec::new(); THREADS as usize];

        // Real-lock availability derived from the substrate-side model:
        // `mode` is compatible iff no *other* thread holds `lraw` in a
        // conflicting mode.
        let compatible = |held: &[Vec<(u64, AccessMode)>], tid: usize, lraw: u64, m: AccessMode| {
            held.iter().enumerate().all(|(u, hs)| {
                u == tid
                    || hs
                        .iter()
                        .all(|(l2, m2)| *l2 != lraw || !m.conflicts_with(*m2))
            })
        };

        for step in 0..g.range(40, 120) {
            let tid = g.range(0, THREADS as usize);
            let t = ThreadId::new(tid as u64);
            match mode[tid] {
                ThreadMode::WaitingAcquire(lraw, m) => {
                    // Complete the acquisition once the lock is compatible.
                    if compatible(&held, tid, lraw, m) {
                        let l = LockId::new(lraw);
                        oracle.acquired(t, l);
                        for s in &mut sharded {
                            s.acquired(t, l);
                        }
                        held[tid].push((lraw, m));
                        mode[tid] = ThreadMode::Running;
                    }
                }
                ThreadMode::Parked(_, _) | ThreadMode::Running => {
                    let retry = match mode[tid] {
                        ThreadMode::Parked(lr, pm) => Some((lr, pm)),
                        _ => None,
                    };
                    let planned =
                        plan_mixed_step(&mut g, LOCKS as usize, 6, !held[tid].is_empty(), retry);
                    let (lraw, m, site) = match planned {
                        PlannedStep::Release => {
                            let (lraw, _) = held[tid].pop().unwrap();
                            let l = LockId::new(lraw);
                            let oracle_wake = oracle.released(t, l);
                            for (s, &n) in sharded.iter_mut().zip(&shard_counts) {
                                let wake = s.released(t, l);
                                assert_eq!(
                                    wake, oracle_wake,
                                    "seed {seed} step {step}: release wake-ups diverge (shards {n})"
                                );
                            }
                            continue;
                        }
                        PlannedStep::Skip => unreachable!("mixed schedules never skip"),
                        PlannedStep::Acquire { lock, mode, site } => (lock, mode, site),
                    };
                    let l = LockId::new(lraw);
                    let site = universe_site(site);
                    let outcome = oracle.request_mode(t, l, &site, m);
                    for (s, &n) in sharded.iter_mut().zip(&shard_counts) {
                        let sharded_outcome = s.request_mode(t, l, &site, m);
                        assert_eq!(
                            sharded_outcome, outcome,
                            "seed {seed} step {step}: outcome diverges \
                             (shards {n}, t{tid}, l{lraw}, {m:?})"
                        );
                    }
                    match outcome {
                        RequestOutcome::Granted => {
                            if compatible(&held, tid, lraw, m) {
                                oracle.acquired(t, l);
                                for s in &mut sharded {
                                    s.acquired(t, l);
                                }
                                held[tid].push((lraw, m));
                                mode[tid] = ThreadMode::Running;
                            } else {
                                mode[tid] = ThreadMode::WaitingAcquire(lraw, m);
                            }
                        }
                        RequestOutcome::GrantedReentrant => {
                            // The engine bumps the existing owner entry's
                            // recursion; mirror its mode, not the requested
                            // one, so the availability model matches.
                            let existing = held[tid]
                                .iter()
                                .find(|(l2, _)| *l2 == lraw)
                                .map(|(_, m2)| *m2)
                                .expect("reentrant grant without a hold");
                            oracle.acquired(t, l);
                            for s in &mut sharded {
                                s.acquired(t, l);
                            }
                            held[tid].push((lraw, existing));
                            mode[tid] = ThreadMode::Running;
                        }
                        RequestOutcome::Yield { .. } => {
                            mode[tid] = ThreadMode::Parked(lraw, m);
                        }
                        RequestOutcome::DeadlockDetected { .. } => {
                            oracle.cancel_request(t, l);
                            for s in &mut sharded {
                                s.cancel_request(t, l);
                            }
                            mode[tid] = ThreadMode::Running;
                        }
                    }
                    let mut oracle_pending = oracle.take_pending_wakeups();
                    oracle_pending.sort_unstable_by_key(|s| s.index());
                    for (s, &n) in sharded.iter_mut().zip(&shard_counts) {
                        let mut pending = s.take_pending_wakeups();
                        pending.sort_unstable_by_key(|s| s.index());
                        assert_eq!(
                            pending, oracle_pending,
                            "seed {seed} step {step}: pending wake-ups diverge (shards {n})"
                        );
                    }
                }
            }
        }

        for (s, &n) in sharded.iter().zip(&shard_counts) {
            assert_eq!(
                s.stats(),
                *oracle.stats(),
                "seed {seed}: rolled-up stats diverge (shards {n})"
            );
            assert_eq!(s.history().len(), oracle.history().len(), "seed {seed}");
            for (id, sig) in oracle.history().iter() {
                assert!(
                    s.history().get(id).unwrap().same_bug(sig),
                    "seed {seed}: history diverges at {id} (shards {n})"
                );
            }
            for i in 0..s.shard_count() {
                assert!(
                    std::sync::Arc::ptr_eq(s.history_snapshot(), s.shard(i).history_snapshot()),
                    "seed {seed}: shard {i} holds a private snapshot (shards {n})"
                );
            }
            assert_eq!(
                s.history_snapshot().epoch(),
                oracle.history_snapshot().epoch(),
                "seed {seed}: snapshot epochs diverge (shards {n})"
            );
        }
    }
}

/// **Persistent vector ≡ `Vec` oracle.** Random push/set sequences checked
/// element-for-element against a plain `Vec`, with random point reads,
/// out-of-range probes, and full iteration. At one random point in every
/// sequence a clone is taken and the original keeps mutating: the clone
/// must stay frozen at its snapshot (the structural-sharing contract the
/// history snapshots rely on).
#[test]
fn prop_persistent_vec_matches_vec_oracle() {
    const SEED_SALT: u64 = 0x0bad_5eed_0001;
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ SEED_SALT);
        let mut pv: PersistentVec<u64> = PersistentVec::new();
        let mut model: Vec<u64> = Vec::new();
        let mut frozen: Option<(PersistentVec<u64>, Vec<u64>)> = None;
        // Long enough that many sequences cross the 32-element tail boundary
        // and some push the root a level deeper.
        let ops = g.range(1, 140);
        let freeze_at = g.range(0, ops);
        for op in 0..ops {
            if op == freeze_at {
                frozen = Some((pv.clone(), model.clone()));
            }
            if model.is_empty() || g.range(0, 10) < 7 {
                let v = g.next_u64();
                pv = pv.push(v);
                model.push(v);
            } else {
                let i = g.range(0, model.len());
                let v = g.next_u64();
                pv = pv.set(i, v);
                model[i] = v;
            }
            assert_eq!(pv.len(), model.len(), "seed {seed}");
            assert_eq!(pv.is_empty(), model.is_empty(), "seed {seed}");
            for _ in 0..3 {
                let i = g.range(0, model.len());
                assert_eq!(pv.get(i), Some(&model[i]), "seed {seed}: get({i})");
            }
            assert_eq!(pv.get(model.len()), None, "seed {seed}: past-end get");
        }
        let collected: Vec<u64> = pv.iter().copied().collect();
        assert_eq!(collected, model, "seed {seed}: iteration diverges");
        let (old, old_model) = frozen.expect("freeze point always within ops");
        assert_eq!(old.len(), old_model.len(), "seed {seed}");
        let old_collected: Vec<u64> = old.iter().copied().collect();
        assert_eq!(
            old_collected, old_model,
            "seed {seed}: mid-sequence clone diverged from its snapshot"
        );
    }
}

/// **Persistent map ≡ `HashMap` oracle.** Random insert/replace sequences
/// over a small key universe (so hash-fragment collisions and replacement
/// both happen) checked against `std::collections::HashMap`, including the
/// `(map, added)` insert contract, random probes, full iteration, and a
/// mid-sequence clone that must stay frozen.
type FrozenMap = (PersistentMap<u64, u64>, Vec<(u64, u64)>);

#[test]
fn prop_persistent_map_matches_hashmap_oracle() {
    const SEED_SALT: u64 = 0x0bad_5eed_0002;
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ SEED_SALT);
        let mut pm: PersistentMap<u64, u64> = PersistentMap::new();
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut frozen: Option<FrozenMap> = None;
        let ops = g.range(1, 150);
        let freeze_at = g.range(0, ops);
        for op in 0..ops {
            if op == freeze_at {
                let mut snap: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                snap.sort_unstable();
                frozen = Some((pm.clone(), snap));
            }
            let k = g.range(0, 40) as u64;
            let v = g.next_u64();
            let (next, added) = pm.insert(k, v);
            assert_eq!(added, !model.contains_key(&k), "seed {seed}: insert({k})");
            pm = next;
            model.insert(k, v);
            assert_eq!(pm.len(), model.len(), "seed {seed}");
            let probe = g.range(0, 40) as u64;
            assert_eq!(
                pm.get(&probe),
                model.get(&probe),
                "seed {seed}: get({probe})"
            );
            assert_eq!(
                pm.contains_key(&probe),
                model.contains_key(&probe),
                "seed {seed}"
            );
        }
        let mut collected: Vec<(u64, u64)> = pm.iter().map(|(k, v)| (*k, *v)).collect();
        collected.sort_unstable();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(collected, expected, "seed {seed}: iteration diverges");
        let (old, old_snap) = frozen.expect("freeze point always within ops");
        let mut old_collected: Vec<(u64, u64)> = old.iter().map(|(k, v)| (*k, *v)).collect();
        old_collected.sort_unstable();
        assert_eq!(
            old_collected, old_snap,
            "seed {seed}: mid-sequence clone diverged from its snapshot"
        );
    }
}

/// **Eviction soundness.** Under random `max_signatures`/`eviction_window`
/// configurations and random streams of new and duplicate antibodies
/// (duplicates refresh the matched generation), a signature matched within
/// the last `eviction_window` epochs is never evicted: any signature that
/// goes from live to retired across one insert must already have been
/// window-stale at the post-insert epoch (staleness only grows with the
/// epoch, so this bounds every intermediate eviction decision too).
#[test]
fn prop_eviction_never_retires_recently_matched() {
    const SEED_SALT: u64 = 0x0e51_c7ed;
    let mut total_evictions = 0u64;
    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ SEED_SALT);
        let cap = g.range(2, 6);
        let window = g.range(1, 5) as u64;
        let mut e = Dimmunix::new(
            Config::builder()
                .max_signatures(cap)
                .eviction_window(window)
                .build(),
        );
        let pool: Vec<Signature> = (0..12u32)
            .map(|i| {
                Signature::new(
                    SignatureKind::Deadlock,
                    vec![SignaturePair::new(
                        CallStack::single(Frame::new("ev.outer", "ev.rs", i * 10)),
                        CallStack::single(Frame::new("ev.inner", "ev.rs", i * 10 + 1)),
                    )],
                )
            })
            .collect();
        for _ in 0..g.range(10, 60) {
            let sig = pool[g.range(0, pool.len())].clone();
            let before: Vec<(SignatureId, u64)> = e.history().activity_iter().collect();
            e.add_signature(sig);
            let post_epoch = e.history_snapshot().epoch();
            for (id, last) in before {
                if !e.history().is_live(id) {
                    assert!(
                        post_epoch.saturating_sub(last) >= window,
                        "seed {seed}: evicted {id} last matched at epoch {last}, \
                         inside the window at post-insert epoch {post_epoch}"
                    );
                }
            }
        }
        total_evictions += e.stats().signatures_evicted;
        assert_eq!(e.stats().history_full_refusals, 0, "seed {seed}");
    }
    // The property must not hold vacuously: across the seed sweep the
    // small capacities force real evictions.
    assert!(total_evictions > 0, "no seed ever exercised eviction");
}

/// **Compaction ≡ fresh bulk rebuild (gap-tolerance oracle).** Random
/// insert/remove/compact sequences over a sparse id space leave the
/// [`SignatureIndex`] with id gaps and tombstoned positions; after every
/// compaction (and at the end) its lookups must agree position-for-position
/// and signature-for-signature with an index rebuilt from scratch from the
/// surviving entries.
#[test]
fn prop_index_compaction_agrees_with_fresh_rebuild() {
    const SEED_SALT: u64 = 0x00c0_53ac;
    const MAX_ID: usize = 20;
    const MAX_POS: usize = 12;

    fn check(
        index: &SignatureIndex,
        model: &std::collections::HashMap<usize, Vec<PositionId>>,
        seed: u64,
    ) {
        let mut fresh = SignatureIndex::new();
        let mut ids: Vec<usize> = model.keys().copied().collect();
        ids.sort_unstable();
        for raw in &ids {
            fresh.insert(SignatureId::new(*raw), model[raw].clone());
        }
        assert_eq!(index.len(), fresh.len(), "seed {seed}");
        for p in 0..MAX_POS {
            let pid = PositionId::new(p as u32);
            assert_eq!(
                index.signatures_at(pid),
                fresh.signatures_at(pid),
                "seed {seed}: position {p} diverges from fresh rebuild"
            );
        }
        for raw in 0..MAX_ID {
            let id = SignatureId::new(raw);
            assert_eq!(
                index.outer_positions_of(id),
                fresh.outer_positions_of(id),
                "seed {seed}: outer positions of {raw} diverge"
            );
            if !model.contains_key(&raw) {
                assert!(index.outer_positions_of(id).is_empty(), "seed {seed}");
            }
        }
    }

    for seed in 0..CASES {
        let mut g = Gen::new(seed ^ SEED_SALT);
        let mut index = SignatureIndex::new();
        let mut model: std::collections::HashMap<usize, Vec<PositionId>> =
            std::collections::HashMap::new();
        for _ in 0..g.range(5, 80) {
            let raw = g.range(0, MAX_ID);
            let id = SignatureId::new(raw);
            match g.range(0, 10) {
                0..=5 => {
                    if let std::collections::hash_map::Entry::Vacant(slot) = model.entry(raw) {
                        let outer: Vec<PositionId> = (0..g.range(1, 4))
                            .map(|_| PositionId::new(g.range(0, MAX_POS) as u32))
                            .collect();
                        index.insert(id, outer.clone());
                        slot.insert(outer);
                    }
                }
                6..=8 => {
                    let removed = index.remove(id);
                    assert_eq!(removed, model.remove(&raw).is_some(), "seed {seed}");
                }
                _ => {
                    index.compact();
                    check(&index, &model, seed);
                }
            }
            assert_eq!(index.len(), model.len(), "seed {seed}");
        }
        index.compact();
        check(&index, &model, seed);
    }
}

#[test]
fn prop_trained_engine_never_deadlocks_on_ab_ba() {
    for first_is_t1 in [false, true] {
        // Train.
        let mut trainer = Dimmunix::default();
        let site = |m: &str, line| CallStack::single(Frame::new(m, "app.rs", line));
        let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
        let (la, lb) = (LockId::new(1), LockId::new(2));
        assert!(trainer.request(t1, la, &site("t1.outer", 10)).is_granted());
        trainer.acquired(t1, la);
        assert!(trainer.request(t2, lb, &site("t2.outer", 20)).is_granted());
        trainer.acquired(t2, lb);
        assert!(trainer.request(t1, lb, &site("t1.inner", 11)).is_granted());
        assert!(matches!(
            trainer.request(t2, la, &site("t2.inner", 21)),
            RequestOutcome::DeadlockDetected { .. }
        ));
        // The trained engine's index covers exactly the recorded signature.
        assert_eq!(trainer.signature_index().len(), 1);
        assert_eq!(
            trainer
                .signature_index()
                .outer_positions_of(SignatureId::new(0))
                .len(),
            2
        );

        // Replay with the antibody, varying which thread starts first.
        let mut e = Dimmunix::with_history(Config::default(), trainer.history().clone());
        let (first, second) = if first_is_t1 { (t1, t2) } else { (t2, t1) };
        let (first_lock, second_lock) = if first_is_t1 { (la, lb) } else { (lb, la) };
        let (first_site, second_site) = if first_is_t1 { (10, 20) } else { (20, 10) };

        assert!(e
            .request(first, first_lock, &site("outer", first_site))
            .is_granted());
        e.acquired(first, first_lock);
        let outcome = e.request(second, second_lock, &site("outer", second_site));
        // The second thread must never be allowed into the deadlock pattern:
        // it either yields (signature instantiation) or the engine grants it
        // because the interleaving cannot deadlock; in both cases no
        // deadlock is detected afterwards.
        match outcome {
            RequestOutcome::Yield { .. } | RequestOutcome::Granted => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(e.stats().deadlocks_detected, 0);
    }
}
