//! Property-based tests for the core data structures and the engine.

use dimmunix_core::{
    CallStack, Config, Dimmunix, Frame, History, LockId, PositionTable, RequestOutcome, Signature,
    SignatureKind, SignaturePair, ThreadId, ThreadQueue,
};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    ("[a-zA-Z][a-zA-Z0-9_.]{0,12}", "[a-z]{1,8}\\.rs", 0u32..5000)
        .prop_map(|(m, f, l)| Frame::new(m, f, l))
}

fn arb_stack(max_depth: usize) -> impl Strategy<Value = CallStack> {
    prop::collection::vec(arb_frame(), 1..=max_depth).prop_map(CallStack::from_frames)
}

fn arb_signature() -> impl Strategy<Value = Signature> {
    (
        prop::bool::ANY,
        prop::collection::vec((arb_stack(3), arb_stack(3)), 1..4),
    )
        .prop_map(|(starv, pairs)| {
            let kind = if starv {
                SignatureKind::Starvation
            } else {
                SignatureKind::Deadlock
            };
            Signature::new(
                kind,
                pairs
                    .into_iter()
                    .map(|(o, i)| SignaturePair::new(o, i))
                    .collect(),
            )
        })
}

proptest! {
    /// The compact call-stack codec is lossless for arbitrary stacks.
    #[test]
    fn callstack_compact_roundtrip(stack in arb_stack(5)) {
        let text = stack.to_compact();
        let parsed = CallStack::parse_compact(&text).unwrap();
        prop_assert_eq!(parsed, stack);
    }

    /// The history text codec is lossless: every signature survives a
    /// save/load cycle and deduplication never invents new entries.
    #[test]
    fn history_text_roundtrip(sigs in prop::collection::vec(arb_signature(), 0..8)) {
        let mut h = History::new();
        for s in &sigs {
            h.add(s.clone());
        }
        let reparsed = History::from_text(&h.to_text()).unwrap();
        prop_assert_eq!(reparsed.len(), h.len());
        for (id, s) in h.iter() {
            prop_assert!(reparsed.get(id).unwrap().same_bug(s));
        }
    }

    /// The JSON codec agrees with the text codec.
    #[test]
    fn history_json_roundtrip(sigs in prop::collection::vec(arb_signature(), 0..6)) {
        let mut h = History::new();
        for s in &sigs {
            h.add(s.clone());
        }
        let reparsed = History::from_json(&h.to_json().unwrap()).unwrap();
        prop_assert_eq!(reparsed.len(), h.len());
    }

    /// Interning is a function of the truncated stack: equal truncations map
    /// to equal ids, different truncations to different ids, and the table
    /// size equals the number of distinct truncations.
    #[test]
    fn position_interning_is_consistent(
        stacks in prop::collection::vec(arb_stack(4), 1..40),
        depth in 1usize..4,
    ) {
        let mut table = PositionTable::new(depth);
        let ids: Vec<_> = stacks.iter().map(|s| table.intern(s)).collect();
        let mut distinct = std::collections::HashSet::new();
        for s in &stacks {
            distinct.insert(s.truncated(depth));
        }
        prop_assert_eq!(table.len(), distinct.len());
        for (s, id) in stacks.iter().zip(&ids) {
            prop_assert_eq!(table.lookup(s), Some(*id));
            prop_assert_eq!(table.get(*id).unwrap().stack(), &s.truncated(depth));
        }
    }

    /// The per-position thread queue honours multiset semantics and reuses
    /// freed slots (its arena never exceeds the high-water mark of live
    /// entries).
    #[test]
    fn thread_queue_multiset_semantics(ops in prop::collection::vec((0u64..6, prop::bool::ANY), 1..200)) {
        let mut q = ThreadQueue::new();
        let mut model: Vec<u64> = Vec::new();
        let mut high_water = 0usize;
        for (tid, is_push) in ops {
            let t = ThreadId::new(tid);
            if is_push {
                q.push(t);
                model.push(tid);
            } else {
                let removed = q.remove_one(t);
                let model_had = model.iter().position(|x| *x == tid).map(|i| { model.remove(i); }).is_some();
                prop_assert_eq!(removed, model_had);
            }
            high_water = high_water.max(model.len());
            prop_assert_eq!(q.len(), model.len());
            for id in 0u64..6 {
                prop_assert_eq!(q.count(ThreadId::new(id)), model.iter().filter(|x| **x == id).count());
            }
        }
        prop_assert!(q.capacity() <= high_water);
    }

    /// Engine consistency under random well-formed workloads: threads
    /// acquire a random subset of locks in a fixed global order (so no
    /// deadlock is possible) and release them in reverse order. The engine
    /// must grant everything, never report a deadlock, and end with an empty
    /// RAG ownership and empty position queues.
    #[test]
    fn engine_consistent_on_ordered_workloads(
        plan in prop::collection::vec(prop::collection::vec(0u64..8, 1..5), 1..6),
        depth in 1usize..3,
    ) {
        let cfg = Config::builder().stack_depth(depth).build();
        let mut engine = Dimmunix::new(cfg);
        for (tidx, locks) in plan.iter().enumerate() {
            let t = ThreadId::new(tidx as u64);
            // Deduplicate and sort: a global acquisition order prevents deadlock.
            let mut locks: Vec<u64> = locks.clone();
            locks.sort_unstable();
            locks.dedup();
            for (k, lraw) in locks.iter().enumerate() {
                let l = LockId::new(*lraw);
                let site = CallStack::single(Frame::new(
                    format!("worker{tidx}.step{k}"),
                    "workload.rs",
                    *lraw as u32,
                ));
                let outcome = engine.request(t, l, &site);
                prop_assert!(outcome.is_granted(), "unexpected outcome {:?}", outcome);
                engine.acquired(t, l);
            }
            for lraw in locks.iter().rev() {
                let l = LockId::new(*lraw);
                engine.released(t, l);
            }
        }
        prop_assert_eq!(engine.stats().deadlocks_detected, 0);
        prop_assert_eq!(engine.stats().yields, 0);
        // All monitors are free again.
        for lraw in 0u64..8 {
            prop_assert_eq!(engine.rag().owner(LockId::new(lraw)), None);
        }
        // All position queues drained.
        for p in engine.positions().iter() {
            prop_assert!(p.queue().is_empty());
        }
        prop_assert_eq!(engine.stats().acquisitions, engine.stats().releases);
    }

    /// Avoidance ends deterministically for the trained AB/BA pattern under
    /// any choice of which thread reaches its outer position first: either
    /// the second thread yields or the schedule is already safe; a deadlock
    /// is never detected on the replay.
    #[test]
    fn trained_engine_never_deadlocks_on_ab_ba(first_is_t1 in prop::bool::ANY) {
        // Train.
        let mut trainer = Dimmunix::default();
        let site = |m: &str, line| CallStack::single(Frame::new(m, "app.rs", line));
        let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
        let (la, lb) = (LockId::new(1), LockId::new(2));
        assert!(trainer.request(t1, la, &site("t1.outer", 10)).is_granted());
        trainer.acquired(t1, la);
        assert!(trainer.request(t2, lb, &site("t2.outer", 20)).is_granted());
        trainer.acquired(t2, lb);
        assert!(trainer.request(t1, lb, &site("t1.inner", 11)).is_granted());
        assert!(matches!(
            trainer.request(t2, la, &site("t2.inner", 21)),
            RequestOutcome::DeadlockDetected { .. }
        ));

        // Replay with the antibody, varying which thread starts first.
        let mut e = Dimmunix::with_history(Config::default(), trainer.history().clone());
        let (first, second) = if first_is_t1 { (t1, t2) } else { (t2, t1) };
        let (first_lock, second_lock) = if first_is_t1 { (la, lb) } else { (lb, la) };
        let (first_site, second_site) = if first_is_t1 { (10, 20) } else { (20, 10) };

        assert!(e
            .request(first, first_lock, &site("outer", first_site))
            .is_granted());
        e.acquired(first, first_lock);
        let outcome = e.request(second, second_lock, &site("outer", second_site));
        // The second thread must never be allowed into the deadlock pattern:
        // it either yields (signature instantiation) or the engine grants it
        // because the interleaving cannot deadlock; in both cases no
        // deadlock is detected afterwards.
        match outcome {
            RequestOutcome::Yield { .. } | RequestOutcome::Granted => {}
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
        prop_assert_eq!(e.stats().deadlocks_detected, 0);
    }
}
