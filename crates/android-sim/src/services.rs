//! Simulated Android system services, including the issue-7986 deadlock.
//!
//! The paper reproduces a real Android bug (issue id 7986): a thread posting
//! a notification runs `NotificationManagerService.enqueueNotificationWithTag`,
//! which takes the notification manager's monitor and then calls into the
//! status bar (taking its monitor); concurrently the status-bar expansion
//! handler `StatusBarService$H.handleMessage` takes the status bar monitor
//! and calls back into the notification manager. Opposite acquisition order
//! on the same two monitors — the whole system-UI freezes when the two
//! threads interleave badly.
//!
//! This module builds that scenario as a [`Program`] for the simulated VM.

use dalvik_sim::{MethodId, ObjRef, Program, ProgramBuilder};

/// Monitor guarding `NotificationManagerService.mNotificationList`.
pub const NOTIFICATION_MANAGER_LOCK: ObjRef = ObjRef(7001);
/// Monitor guarding `StatusBarService.mBar` / the expanded dialog state.
pub const STATUS_BAR_LOCK: ObjRef = ObjRef(7002);

/// Parameters of the notification/status-bar scenario.
#[derive(Debug, Clone, Copy)]
pub struct NotificationScenario {
    /// How many notifications the app posts.
    pub notifications: u32,
    /// How many times the user expands the status bar.
    pub expansions: u32,
    /// Busy-work cycles inside each critical section.
    pub work: u64,
}

impl Default for NotificationScenario {
    fn default() -> Self {
        NotificationScenario {
            notifications: 3,
            expansions: 3,
            work: 5,
        }
    }
}

impl NotificationScenario {
    /// Builds the scenario program. Returns the program and the entry method
    /// (the "small Android application" of §5 whose two threads exercise the
    /// two services concurrently).
    pub fn build(&self) -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new("frameworks/base/services/java/StatusBar.java");

        // NotificationManagerService.enqueueNotificationWithTag:
        //   synchronized (mNotificationList) { ... mStatusBar: synchronized { addNotification } }
        let enqueue = pb
            .method("NotificationManagerService.enqueueNotificationWithTag")
            .sync(NOTIFICATION_MANAGER_LOCK, |body| {
                body.compute(self.work).sync(STATUS_BAR_LOCK, |inner| {
                    inner.compute(self.work);
                });
            })
            .finish();

        // StatusBarService$H.handleMessage (expand):
        //   synchronized (mBar) { ... mNotificationCallbacks: synchronized { ... } }
        let handle_message = pb
            .method("StatusBarService$H.handleMessage")
            .sync(STATUS_BAR_LOCK, |body| {
                body.compute(self.work)
                    .sync(NOTIFICATION_MANAGER_LOCK, |inner| {
                        inner.compute(self.work);
                    });
            })
            .finish();

        // The notifier thread of the test application: posts notifications.
        let mut notifier = pb.method("TestApp.NotifierThread.run");
        for _ in 0..self.notifications {
            notifier = notifier.compute(1).call(enqueue);
        }
        let notifier = notifier.finish();

        // The UI thread expanding the status bar.
        let mut expander = pb.method("TestApp.StatusBarExpander.run");
        for _ in 0..self.expansions {
            expander = expander.compute(1).call(handle_message);
        }
        let expander = expander.finish();

        let main = pb
            .method("TestApp.main")
            .spawn(notifier, "notifier")
            .spawn(expander, "status-bar-expander")
            .finish();
        (pb.build(), main)
    }
}

/// Convenience: the default scenario program.
pub fn notification_deadlock_program() -> (Program, MethodId) {
    NotificationScenario::default().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalvik_sim::{ProcessBuilder, RunOutcome};

    #[test]
    fn scenario_has_four_synchronization_sites() {
        let (program, _) = notification_deadlock_program();
        assert_eq!(program.synchronization_site_count(), 4);
        assert!(program
            .method_by_name("NotificationManagerService.enqueueNotificationWithTag")
            .is_some());
        assert!(program
            .method_by_name("StatusBarService$H.handleMessage")
            .is_some());
    }

    #[test]
    fn some_schedule_freezes_the_services() {
        let mut froze = false;
        for seed in 0..300u64 {
            let (program, main) = notification_deadlock_program();
            let mut p = ProcessBuilder::new("system_server", program)
                .seed(seed)
                .spawn_main(main);
            let outcome = p.run(100_000);
            if p.stats().deadlocks_detected > 0 {
                assert_ne!(outcome, RunOutcome::Completed);
                froze = true;
                break;
            }
        }
        assert!(froze, "the lock inversion must be reachable");
    }

    #[test]
    fn benign_schedules_complete() {
        let mut completed = 0;
        for seed in 0..50u64 {
            let (program, main) = notification_deadlock_program();
            let mut p = ProcessBuilder::new("system_server", program)
                .seed(seed)
                .spawn_main(main);
            if p.run(100_000) == RunOutcome::Completed {
                completed += 1;
            }
        }
        assert!(completed > 0, "not every interleaving deadlocks");
    }
}
