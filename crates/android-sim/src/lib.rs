//! # android-sim — the simulated Android platform
//!
//! Substrate crate standing in for the parts of Android 2.2 that the paper's
//! evaluation relies on but that are not available to a Rust reproduction:
//!
//! * the system services involved in the §5 case study (the
//!   `NotificationManagerService` / `StatusBarService` lock inversion, issue
//!   7986) — [`NotificationScenario`];
//! * the eight profiled applications of Table 1, replayed from their
//!   published thread counts, synchronization rates, and memory footprints —
//!   [`AppProfile`], [`TABLE1_PROFILES`];
//! * the phone itself: installing applications, launching them, observing the
//!   frozen interface, rebooting with persistent per-application histories —
//!   [`Phone`];
//! * the §3.2 static corpus statistic (1,050 `synchronized` sites vs 15
//!   explicit lock sites) — [`ESSENTIAL_APPS_CORPUS`].
//!
//! Everything runs on the deterministic VM of [`dalvik_sim`], so every
//! freeze, detection, and avoidance is replayable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod corpus;
mod phone;
mod profiles;
mod services;

pub use corpus::{
    corpus_totals, ComponentSites, CorpusTotals, SyncConstruct, ESSENTIAL_APPS_CORPUS,
};
pub use phone::{AppRunReport, InstalledApp, Phone};
pub use profiles::{profile_by_name, AppProfile, CYCLES_PER_SECOND, TABLE1_PROFILES};
pub use services::{
    notification_deadlock_program, NotificationScenario, NOTIFICATION_MANAGER_LOCK, STATUS_BAR_LOCK,
};
