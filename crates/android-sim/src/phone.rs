//! A simulated phone: boot, install applications, observe freezes, reboot.
//!
//! This is the harness for the §5 case study: install the test application
//! that exercises the notification/status-bar services, watch the interface
//! freeze the first time the inversion interleaves badly, reboot the phone,
//! and observe that the deadlock never reoccurs because the per-process
//! history survived the reboot.

use crate::services::NotificationScenario;
use dalvik_sim::{MethodId, Process, Program, RunOutcome, Zygote};
use dimmunix_core::Config;
use std::collections::HashMap;
use std::path::PathBuf;

/// An application installed on the phone.
#[derive(Debug, Clone)]
pub struct InstalledApp {
    /// Package name (also names the persistent history file).
    pub package: String,
    /// The application program.
    pub program: Program,
    /// Entry method.
    pub entry: MethodId,
    /// Baseline memory footprint in bytes.
    pub baseline_bytes: usize,
}

/// Result of running one application until it finishes, freezes, or exhausts
/// its step budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppRunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// True if the process ended up with at least one deadlocked thread or
    /// no runnable thread — the user-visible "interface frozen" condition.
    pub frozen: bool,
    /// Deadlocks detected by Dimmunix during the run.
    pub deadlocks_detected: u64,
    /// Completed synchronizations.
    pub syncs: u64,
}

/// A simulated Android phone with platform-wide deadlock immunity.
#[derive(Debug)]
pub struct Phone {
    zygote: Zygote,
    apps: HashMap<String, InstalledApp>,
    boot_count: u32,
    scheduler_seed: u64,
}

impl Phone {
    /// "Flashes" a phone whose platform runs Dimmunix with the given
    /// configuration template; histories persist under `history_dir`.
    pub fn new(config: Config, history_dir: impl Into<PathBuf>) -> Self {
        let dir = history_dir.into();
        Phone {
            zygote: Zygote::new(config).with_history_dir(dir),
            apps: HashMap::new(),
            boot_count: 1,
            scheduler_seed: 0,
        }
    }

    /// A phone running the vanilla platform (no immunity) — the baseline.
    pub fn vanilla(history_dir: impl Into<PathBuf>) -> Self {
        Phone::new(Config::disabled(), history_dir)
    }

    /// Sets the scheduler seed used for application runs (deterministic
    /// interleavings).
    pub fn set_scheduler_seed(&mut self, seed: u64) {
        self.scheduler_seed = seed;
    }

    /// Number of boots so far (1 after construction).
    pub fn boot_count(&self) -> u32 {
        self.boot_count
    }

    /// Installs an application.
    pub fn install(&mut self, app: InstalledApp) {
        self.apps.insert(app.package.clone(), app);
    }

    /// Installs the §5 test application that reproduces issue 7986.
    pub fn install_notification_test_app(&mut self, scenario: NotificationScenario) {
        let (program, entry) = scenario.build();
        self.install(InstalledApp {
            package: "com.example.notificationtest".to_string(),
            program,
            entry,
            baseline_bytes: 6 * 1024 * 1024,
        });
    }

    /// Launches an installed application and runs it to completion, a
    /// freeze, or the step budget. The process's history file is loaded at
    /// launch and updated on any detection, so immunity accumulates across
    /// launches and reboots.
    pub fn launch(&mut self, package: &str, max_steps: u64) -> Option<AppRunReport> {
        let app = self.apps.get(package)?.clone();
        let mut process = self.fork(&app);
        let outcome = process.run(max_steps);
        Some(self.report(&process, outcome))
    }

    /// Launches an application and returns both the report and the process
    /// (for memory accounting and inspection).
    pub fn launch_and_inspect(
        &mut self,
        package: &str,
        max_steps: u64,
    ) -> Option<(AppRunReport, Process)> {
        let app = self.apps.get(package)?.clone();
        let mut process = self.fork(&app);
        let outcome = process.run(max_steps);
        let report = self.report(&process, outcome);
        Some((report, process))
    }

    fn fork(&mut self, app: &InstalledApp) -> Process {
        // Vary the seed per launch *and* per boot the same way a real phone's
        // timing varies, but deterministically for a given Phone history.
        let seed = self
            .scheduler_seed
            .wrapping_add(self.boot_count as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut zygote = self.zygote.clone().with_seed(seed);
        let mut process = zygote.fork(&app.package, app.program.clone(), app.entry);
        let _ = &mut process;
        // Preserve the zygote's pid counter so pids stay unique.
        self.zygote = zygote;
        process
    }

    fn report(&self, process: &Process, outcome: RunOutcome) -> AppRunReport {
        let stats = process.stats();
        AppRunReport {
            outcome,
            frozen: outcome != RunOutcome::Completed
                && (stats.deadlocked_threads > 0 || process.is_stuck()),
            deadlocks_detected: stats.deadlocks_detected,
            syncs: stats.syncs,
        }
    }

    /// Reboots the phone. Running processes are discarded (their persistent
    /// histories are already on "flash"); installed applications survive.
    pub fn reboot(&mut self) {
        self.boot_count += 1;
    }

    /// Repeatedly launches `package` (rebooting after every freeze) until it
    /// completes or `max_launches` is reached. Returns the reports of every
    /// launch — the case-study expectation is: at most one frozen launch,
    /// then only clean ones.
    pub fn launch_until_immune(
        &mut self,
        package: &str,
        max_launches: u32,
        max_steps: u64,
    ) -> Vec<AppRunReport> {
        let mut reports = Vec::new();
        for _ in 0..max_launches {
            let Some(report) = self.launch(package, max_steps) else {
                break;
            };
            let frozen = report.frozen;
            reports.push(report);
            if frozen {
                self.reboot();
            } else {
                break;
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dimmunix-phone-{tag}-{}", std::process::id()))
    }

    /// The §5 case study, end to end: find a seed where the phone freezes on
    /// the first launch; after a reboot the deadlock is avoided with no user
    /// intervention, and stays avoided.
    #[test]
    fn case_study_freeze_once_then_immune() {
        let dir = temp_dir("case-study");
        let _ = std::fs::remove_dir_all(&dir);

        let mut demonstrated = false;
        for seed in 0..300u64 {
            let dir_seed = dir.join(format!("seed{seed}"));
            let mut phone = Phone::new(Config::default(), &dir_seed);
            phone.set_scheduler_seed(seed);
            phone.install_notification_test_app(NotificationScenario::default());
            let first = phone
                .launch("com.example.notificationtest", 200_000)
                .unwrap();
            if !first.frozen {
                continue; // benign interleaving; try another seed
            }
            assert!(first.deadlocks_detected >= 1);

            // Reboot; the history file persists on "flash".
            phone.reboot();
            let mut later_freezes = 0;
            for _ in 0..5 {
                let report = phone
                    .launch("com.example.notificationtest", 500_000)
                    .unwrap();
                if report.frozen {
                    later_freezes += 1;
                    phone.reboot();
                }
            }
            assert_eq!(
                later_freezes, 0,
                "seed {seed}: the deadlock must never reoccur after the first freeze"
            );
            demonstrated = true;
            break;
        }
        assert!(demonstrated, "the case-study freeze must be reproducible");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vanilla_phone_keeps_freezing() {
        // Without immunity the same seed freezes on every launch.
        let dir = temp_dir("vanilla");
        let _ = std::fs::remove_dir_all(&dir);
        // Find a freezing seed with the immune phone first (detection tells
        // us the interleaving is bad), then replay it on a vanilla phone.
        let mut freezing_seed = None;
        for seed in 0..300u64 {
            let mut phone = Phone::new(Config::default(), dir.join(format!("probe{seed}")));
            phone.set_scheduler_seed(seed);
            phone.install_notification_test_app(NotificationScenario::default());
            let r = phone
                .launch("com.example.notificationtest", 200_000)
                .unwrap();
            if r.frozen {
                freezing_seed = Some(seed);
                break;
            }
        }
        let seed = freezing_seed.expect("a freezing interleaving exists");
        let mut vanilla = Phone::vanilla(dir.join("vanilla"));
        vanilla.set_scheduler_seed(seed);
        vanilla.install_notification_test_app(NotificationScenario::default());
        for _ in 0..2 {
            let r = vanilla
                .launch("com.example.notificationtest", 200_000)
                .unwrap();
            assert!(r.frozen, "the vanilla platform has no immunity");
            assert_eq!(r.deadlocks_detected, 0, "and no detection either");
            vanilla.reboot();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn launch_until_immune_reports_at_most_one_freeze_per_signature() {
        let dir = temp_dir("until-immune");
        let _ = std::fs::remove_dir_all(&dir);
        for seed in 0..300u64 {
            let mut phone = Phone::new(Config::default(), dir.join(format!("s{seed}")));
            phone.set_scheduler_seed(seed);
            phone.install_notification_test_app(NotificationScenario::default());
            let reports = phone.launch_until_immune("com.example.notificationtest", 6, 300_000);
            let freezes = reports.iter().filter(|r| r.frozen).count();
            if freezes == 0 {
                continue;
            }
            assert!(
                freezes <= 1,
                "seed {seed}: one signature suffices for this bug, got {freezes} freezes"
            );
            assert!(!reports.last().unwrap().frozen);
            let _ = std::fs::remove_dir_all(&dir);
            return;
        }
        panic!("no freezing seed found");
    }
}
