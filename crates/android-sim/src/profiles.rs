//! Synchronization profiles of the 8 Android applications of Table 1.
//!
//! The applications themselves are proprietary, so the reproduction replays
//! their *published profile*: thread count, sustained synchronization rate
//! over the busiest 30-second window, and baseline (vanilla) memory
//! footprint. The replay drives the simulated VM with a workload calibrated
//! to those numbers, which is what the Table 1 harness measures with and
//! without Dimmunix.

use dalvik_sim::{MethodId, ObjRef, Program, ProgramBuilder};

/// Virtual cycles per simulated second (the Nexus One has a 1 GHz single
/// core; one virtual cycle stands for ~1 µs of work at the simulator's
/// granularity).
pub const CYCLES_PER_SECOND: u64 = 1_000_000;

/// The profile of one application from Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Application name as it appears in the paper.
    pub name: &'static str,
    /// Android package name used for history files.
    pub package: &'static str,
    /// Number of threads observed.
    pub threads: u32,
    /// Synchronizations per second in the busiest 30 s window.
    pub syncs_per_sec: u32,
    /// Vanilla memory consumption reported by the paper, in MB.
    pub vanilla_mb: f64,
    /// Dimmunix memory consumption reported by the paper, in MB.
    pub paper_dimmunix_mb: f64,
}

/// The eight applications profiled in Table 1, with the paper's numbers.
pub const TABLE1_PROFILES: [AppProfile; 8] = [
    AppProfile {
        name: "Email",
        package: "com.android.email",
        threads: 46,
        syncs_per_sec: 1952,
        vanilla_mb: 15.0,
        paper_dimmunix_mb: 15.8,
    },
    AppProfile {
        name: "Browser",
        package: "com.android.browser",
        threads: 61,
        syncs_per_sec: 1411,
        vanilla_mb: 37.9,
        paper_dimmunix_mb: 38.9,
    },
    AppProfile {
        name: "Maps",
        package: "com.google.android.maps",
        threads: 119,
        syncs_per_sec: 1143,
        vanilla_mb: 22.9,
        paper_dimmunix_mb: 23.7,
    },
    AppProfile {
        name: "Market",
        package: "com.android.vending",
        threads: 78,
        syncs_per_sec: 891,
        vanilla_mb: 17.3,
        paper_dimmunix_mb: 17.9,
    },
    AppProfile {
        name: "Calendar",
        package: "com.android.calendar",
        threads: 26,
        syncs_per_sec: 815,
        vanilla_mb: 14.0,
        paper_dimmunix_mb: 14.4,
    },
    AppProfile {
        name: "Talk",
        package: "com.google.android.talk",
        threads: 33,
        syncs_per_sec: 527,
        vanilla_mb: 10.7,
        paper_dimmunix_mb: 11.2,
    },
    AppProfile {
        name: "Angry Birds",
        package: "com.rovio.angrybirds",
        threads: 23,
        syncs_per_sec: 325,
        vanilla_mb: 29.3,
        paper_dimmunix_mb: 29.7,
    },
    AppProfile {
        name: "Camera",
        package: "com.android.camera",
        threads: 26,
        syncs_per_sec: 309,
        vanilla_mb: 11.4,
        paper_dimmunix_mb: 11.8,
    },
];

/// Looks up a Table 1 profile by application name.
pub fn profile_by_name(name: &str) -> Option<&'static AppProfile> {
    TABLE1_PROFILES.iter().find(|p| p.name == name)
}

impl AppProfile {
    /// Baseline memory in bytes, used by the simulator's memory model.
    pub fn vanilla_bytes(&self) -> usize {
        (self.vanilla_mb * 1024.0 * 1024.0) as usize
    }

    /// Relative memory overhead the paper measured for this application.
    pub fn paper_overhead(&self) -> f64 {
        (self.paper_dimmunix_mb - self.vanilla_mb) / self.vanilla_mb
    }

    /// Total synchronizations the app performs in a window of
    /// `window_secs` seconds at its profiled rate.
    pub fn total_syncs(&self, window_secs: f64) -> u64 {
        (self.syncs_per_sec as f64 * window_secs) as u64
    }

    /// Builds a workload program replaying this profile for roughly
    /// `window_secs` simulated seconds (scaled down by `scale` to keep test
    /// runtimes practical: `scale = 10` replays a 1/10th window).
    ///
    /// The workload is deliberately contention-free (distinct lock objects
    /// per thread, round-robin over a small pool), matching the paper's
    /// microbenchmark design: contention hides overhead, and real apps'
    /// synchronizations are mostly uncontended.
    pub fn build_workload(&self, window_secs: f64, scale: u64) -> (Program, MethodId) {
        let scale = scale.max(1);
        let total_syncs = self.total_syncs(window_secs) / scale;
        let threads = self.threads.max(1) as u64;
        let syncs_per_thread = (total_syncs / threads).max(1);
        // Calibrate busy work so the aggregate rate on the single simulated
        // core approximates the profiled rate: every iteration costs roughly
        // `work_in + work_out` cycles plus a few scheduler steps.
        let per_sync_budget = CYCLES_PER_SECOND / self.syncs_per_sec.max(1) as u64;
        let work_in = (per_sync_budget / 2).saturating_sub(2).max(1);
        let work_out = per_sync_budget
            .saturating_sub(work_in)
            .saturating_sub(4)
            .max(1);

        let mut pb = ProgramBuilder::new(format!("{}.java", self.package));
        // Each worker synchronizes on its own lock object (plus a shared
        // object once in a while) — realistic and contention-free.
        let mut worker_ids = Vec::new();
        for w in 0..threads {
            let own_lock = ObjRef(1000 + w as u32);
            let mut m = pb.method(format!("{}::Worker{}.loop", self.name, w));
            for i in 0..syncs_per_thread {
                let lock = if i % 16 == 15 {
                    ObjRef(999) // occasional shared object
                } else {
                    own_lock
                };
                m = m
                    .sync(lock, |body| {
                        body.compute(work_in);
                    })
                    .compute(work_out);
            }
            worker_ids.push(m.finish());
        }
        let mut main = pb.method(format!("{}::Main.main", self.name));
        for (w, id) in worker_ids.iter().enumerate() {
            main = main.spawn(*id, format!("{}-worker-{}", self.package, w));
        }
        let main = main.finish();
        (pb.build(), main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalvik_sim::{ProcessBuilder, RunOutcome};

    #[test]
    fn table1_profiles_match_paper_ranges() {
        assert_eq!(TABLE1_PROFILES.len(), 8);
        for p in &TABLE1_PROFILES {
            assert!(p.threads >= 23 && p.threads <= 119, "{}", p.name);
            assert!(
                p.syncs_per_sec >= 309 && p.syncs_per_sec <= 1952,
                "{}",
                p.name
            );
            // 1.3% - 5.3% memory overhead reported by the paper.
            assert!(
                p.paper_overhead() > 0.012 && p.paper_overhead() < 0.055,
                "{}: {}",
                p.name,
                p.paper_overhead()
            );
        }
        assert_eq!(profile_by_name("Email").unwrap().threads, 46);
        assert!(profile_by_name("Nonexistent").is_none());
    }

    #[test]
    fn workload_replays_profile_thread_count_and_syncs() {
        let profile = profile_by_name("Camera").unwrap();
        // 1/100th of a 30 s window keeps the test fast.
        let (program, main) = profile.build_workload(30.0, 1000);
        let mut p = ProcessBuilder::new(profile.package, program)
            .baseline_bytes(profile.vanilla_bytes())
            .spawn_main(main);
        let outcome = p.run(10_000_000);
        assert_eq!(outcome, RunOutcome::Completed);
        // main + workers
        assert_eq!(p.threads().len() as u32, profile.threads + 1);
        let expected_syncs = profile.total_syncs(30.0) / 1000;
        let measured = p.stats().syncs;
        assert!(
            measured >= expected_syncs.saturating_sub(profile.threads as u64)
                && measured <= expected_syncs + profile.threads as u64,
            "expected ~{expected_syncs}, measured {measured}"
        );
        assert_eq!(p.stats().deadlocks_detected, 0);
    }

    #[test]
    fn measured_rate_is_in_the_profiled_ballpark() {
        let profile = profile_by_name("Email").unwrap();
        let (program, main) = profile.build_workload(30.0, 2000);
        let mut p = ProcessBuilder::new(profile.package, program)
            .baseline_bytes(profile.vanilla_bytes())
            .spawn_main(main);
        assert_eq!(p.run(50_000_000), RunOutcome::Completed);
        let secs = p.virtual_time() as f64 / CYCLES_PER_SECOND as f64;
        let rate = p.stats().syncs as f64 / secs;
        let target = profile.syncs_per_sec as f64;
        assert!(
            rate > target * 0.5 && rate < target * 2.0,
            "measured {rate:.0} syncs/s vs profiled {target}"
        );
    }
}
