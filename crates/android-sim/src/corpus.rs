//! The static synchronization corpus of Android 2.2's essential applications.
//!
//! §3.2 justifies handling only `synchronized` blocks/methods by counting the
//! synchronization constructs in Android 2.2's essential applications: 1,050
//! `synchronized` blocks/methods versus only 15 explicit `lock()`/`unlock()`
//! call sites. The applications' source is not part of this reproduction, so
//! the corpus is a fixed inventory (per component, with plausible proportions
//! that sum to the paper's totals); experiment E5 regenerates the headline
//! ratio from it.

/// Kind of synchronization construct found at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncConstruct {
    /// A `synchronized (obj) { … }` block.
    SynchronizedBlock,
    /// A `synchronized` method.
    SynchronizedMethod,
    /// An explicit `Lock.lock()` / `unlock()` pair (e.g. `ReentrantLock`).
    ExplicitLock,
}

/// Synchronization-site counts for one platform component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentSites {
    /// Component (essential application or framework service) name.
    pub component: &'static str,
    /// Number of `synchronized` blocks.
    pub synchronized_blocks: u32,
    /// Number of `synchronized` methods.
    pub synchronized_methods: u32,
    /// Number of explicit lock/unlock call sites.
    pub explicit_locks: u32,
}

/// Inventory of the essential applications shipped with Android 2.2.
/// Per-component numbers are estimates; the totals match §3.2.
pub const ESSENTIAL_APPS_CORPUS: [ComponentSites; 12] = [
    ComponentSites {
        component: "framework/services",
        synchronized_blocks: 180,
        synchronized_methods: 75,
        explicit_locks: 6,
    },
    ComponentSites {
        component: "Email",
        synchronized_blocks: 70,
        synchronized_methods: 38,
        explicit_locks: 2,
    },
    ComponentSites {
        component: "Browser",
        synchronized_blocks: 88,
        synchronized_methods: 41,
        explicit_locks: 3,
    },
    ComponentSites {
        component: "Contacts",
        synchronized_blocks: 38,
        synchronized_methods: 22,
        explicit_locks: 0,
    },
    ComponentSites {
        component: "Phone/Telephony",
        synchronized_blocks: 92,
        synchronized_methods: 47,
        explicit_locks: 1,
    },
    ComponentSites {
        component: "Calendar",
        synchronized_blocks: 33,
        synchronized_methods: 19,
        explicit_locks: 0,
    },
    ComponentSites {
        component: "Camera",
        synchronized_blocks: 28,
        synchronized_methods: 15,
        explicit_locks: 1,
    },
    ComponentSites {
        component: "Media/Gallery",
        synchronized_blocks: 54,
        synchronized_methods: 30,
        explicit_locks: 1,
    },
    ComponentSites {
        component: "Settings",
        synchronized_blocks: 24,
        synchronized_methods: 12,
        explicit_locks: 0,
    },
    ComponentSites {
        component: "Launcher",
        synchronized_blocks: 31,
        synchronized_methods: 16,
        explicit_locks: 0,
    },
    ComponentSites {
        component: "Market",
        synchronized_blocks: 42,
        synchronized_methods: 23,
        explicit_locks: 1,
    },
    ComponentSites {
        component: "Mms/Talk",
        synchronized_blocks: 20,
        synchronized_methods: 12,
        explicit_locks: 0,
    },
];

/// Totals over a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorpusTotals {
    /// `synchronized` blocks plus `synchronized` methods.
    pub synchronized_sites: u32,
    /// Explicit lock/unlock call sites.
    pub explicit_lock_sites: u32,
}

impl CorpusTotals {
    /// Fraction of synchronization sites Dimmunix covers by handling only
    /// monitors (the paper's argument that the limitation is minor).
    pub fn coverage(&self) -> f64 {
        let total = self.synchronized_sites + self.explicit_lock_sites;
        if total == 0 {
            return 1.0;
        }
        self.synchronized_sites as f64 / total as f64
    }
}

/// Sums a corpus.
pub fn corpus_totals(corpus: &[ComponentSites]) -> CorpusTotals {
    let mut totals = CorpusTotals::default();
    for c in corpus {
        totals.synchronized_sites += c.synchronized_blocks + c.synchronized_methods;
        totals.explicit_lock_sites += c.explicit_locks;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let totals = corpus_totals(&ESSENTIAL_APPS_CORPUS);
        assert_eq!(totals.synchronized_sites, 1050);
        assert_eq!(totals.explicit_lock_sites, 15);
        assert!(totals.coverage() > 0.98);
    }

    #[test]
    fn empty_corpus_has_full_coverage() {
        assert_eq!(corpus_totals(&[]).coverage(), 1.0);
    }
}
