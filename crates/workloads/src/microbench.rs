//! The §5 performance microbenchmark, on real threads.
//!
//! Quoting the paper: the microbenchmark runs 2–512 threads executing
//! `synchronized` blocks on *random lock objects* (to avoid contention, which
//! would hide the overhead), uses busy-waits instead of sleeps to simulate
//! computation inside and outside the critical sections, and loads a history
//! of 64–256 synthetic signatures. Vanilla Android executes 1738–1756
//! synchronizations per second; with Dimmunix 1657–1681 — a 4–5% overhead,
//! dominated by call-stack retrieval.
//!
//! The reproduction runs the same structure on the host with
//! `dimmunix-rt`'s [`ImmuneMutex`]: each thread loops over `iterations`
//! synchronized sections on its own slice of a shared lock pool (no
//! contention), burning a configurable number of busy-wait units inside and
//! outside the critical section. The baseline runs the identical loop on
//! bare `std::sync::Mutex` — what the paper calls *vanilla* — so the
//! measured difference is the full cost of the Dimmunix hooks. (It used to
//! route the baseline through the hooks with a disabled engine; once the
//! lock-free admission path landed, that "baseline" still paid a shard
//! lock per section that the enabled runtime no longer takes, and the
//! bench reported a negative overhead.)

use crate::synthetic::synthetic_history;
use dimmunix_core::Config;
use dimmunix_rt::{AcquisitionSite, DimmunixRuntime, ImmuneMutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one microbenchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobenchConfig {
    /// Number of worker threads (the paper sweeps 2–512).
    pub threads: usize,
    /// Synchronized sections executed per thread.
    pub iterations: usize,
    /// Lock objects per thread (random, uncontended access pattern).
    pub locks_per_thread: usize,
    /// Busy-wait units inside each critical section.
    pub work_inside: u64,
    /// Busy-wait units outside each critical section.
    pub work_outside: u64,
    /// Synthetic signatures pre-loaded into the history (paper: 64–256).
    pub synthetic_signatures: usize,
    /// Whether Dimmunix is enabled (false = vanilla baseline).
    pub dimmunix_enabled: bool,
    /// Engine shards the runtime partitions its lock space over (1 = the
    /// paper's single global engine lock).
    pub shards: usize,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            threads: 8,
            iterations: 2_000,
            locks_per_thread: 4,
            work_inside: 150,
            work_outside: 350,
            synthetic_signatures: 128,
            dimmunix_enabled: true,
            shards: 1,
        }
    }
}

/// Result of one microbenchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrobenchResult {
    /// Total synchronized sections executed.
    pub synchronizations: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Avoidance yields observed (should be 0: the synthetic signatures never
    /// match the benchmark's sites).
    pub yields: u64,
    /// Deadlocks detected (must be 0).
    pub deadlocks: u64,
}

impl MicrobenchResult {
    /// Synchronizations per second.
    pub fn syncs_per_sec(&self) -> f64 {
        self.synchronizations as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Busy-wait for `units` of work (the paper uses busy waits because sleeps
/// hide the overhead).
#[inline]
pub fn busy_work(units: u64) -> u64 {
    let mut acc: u64 = 0x9e3779b97f4a7c15;
    for i in 0..units {
        acc = acc.rotate_left(7) ^ i.wrapping_mul(0x2545f4914f6cdd1d);
        std::hint::black_box(acc);
    }
    acc
}

/// A prepared microbenchmark: runtime constructed, synthetic history
/// loaded, and lock pools allocated — everything the §5 experiment treats
/// as setup, kept **outside** the timed region. [`run`](Self::run) then
/// times only the synchronized sections themselves, which is what the
/// paper's 4–5% figure measures (its benchmark processes are long-lived; VM
/// start-up and history parsing are not part of a synchronization).
#[derive(Debug)]
pub struct MicrobenchHarness {
    config: MicrobenchConfig,
    runtime: Arc<DimmunixRuntime>,
    pools: Vec<Arc<LockPool>>,
}

/// One worker's lock slice: immune when Dimmunix is enabled, bare
/// `std::sync::Mutex` for the vanilla baseline (no hooks at all — the
/// baseline must measure what an unprotected application pays).
#[derive(Debug)]
enum LockPool {
    Immune(Vec<ImmuneMutex<u64>>),
    Bare(Vec<std::sync::Mutex<u64>>),
}

impl MicrobenchHarness {
    /// Builds the runtime — the synthetic history is bulk-built into one
    /// shared snapshot that every engine shard reads — and the per-thread
    /// lock pools.
    pub fn new(config: &MicrobenchConfig) -> Self {
        let engine_config = if config.dimmunix_enabled {
            Config::default()
        } else {
            Config::disabled()
        };
        let runtime = DimmunixRuntime::builder()
            .config(engine_config)
            .shards(config.shards)
            .history(synthetic_history(if config.dimmunix_enabled {
                config.synthetic_signatures
            } else {
                0
            }))
            .build();

        // One pool of locks per thread: uncontended by construction. The
        // benchmark keeps its own (non-global) runtime so back-to-back
        // configurations measure from a clean engine.
        let locks = config.locks_per_thread.max(1);
        let pools: Vec<Arc<LockPool>> = (0..config.threads)
            .map(|_| {
                Arc::new(if config.dimmunix_enabled {
                    LockPool::Immune(
                        (0..locks)
                            .map(|_| ImmuneMutex::new_in(&runtime, 0u64))
                            .collect(),
                    )
                } else {
                    LockPool::Bare((0..locks).map(|_| std::sync::Mutex::new(0u64)).collect())
                })
            })
            .collect();

        MicrobenchHarness {
            config: *config,
            runtime,
            pools,
        }
    }

    /// The runtime driving the benchmark (counters, history inspection).
    pub fn runtime(&self) -> &Arc<DimmunixRuntime> {
        &self.runtime
    }

    /// Executes one measured batch of synchronized sections. The clock
    /// starts when every worker has passed the start barrier, so thread
    /// spawning is excluded from the measurement; yield/deadlock counts are
    /// reported as deltas over this run only, so the harness can be reused
    /// across samples.
    pub fn run(&self) -> MicrobenchResult {
        let cfg = self.config;
        let before = self.runtime.stats();
        let barrier = Arc::new(std::sync::Barrier::new(cfg.threads + 1));
        let mut handles = Vec::with_capacity(cfg.threads);
        for (tid, pool) in self.pools.iter().cloned().enumerate() {
            let barrier = barrier.clone();
            let runtime = self.runtime.clone();
            handles.push(std::thread::spawn(move || {
                let mut completed = 0u64;
                // Cheap xorshift for "random lock objects".
                let mut rng_state = 0x1234_5678_9abc_def0u64 ^ (tid as u64).wrapping_mul(0x9e37);
                barrier.wait();
                for _ in 0..cfg.iterations {
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    let pick = rng_state as usize;
                    match &*pool {
                        LockPool::Immune(locks) => {
                            let mut guard = locks[pick % locks.len()]
                                .lock_at(AcquisitionSite::new(
                                    "Microbench.worker",
                                    "microbench.rs",
                                    1,
                                ))
                                .expect("benchmark never deadlocks");
                            *guard = guard.wrapping_add(busy_work(cfg.work_inside));
                        }
                        LockPool::Bare(locks) => {
                            let mut guard =
                                locks[pick % locks.len()].lock().expect("never poisoned");
                            *guard = guard.wrapping_add(busy_work(cfg.work_inside));
                        }
                    }
                    std::hint::black_box(busy_work(cfg.work_outside));
                    completed += 1;
                }
                // The harness is reused across samples: retire this worker's
                // engine registration so the per-shard RAGs do not accumulate
                // one dead thread node per worker per run. (Bare workers
                // never registered, and retiring would needlessly create a
                // route just to drop it.)
                if matches!(&*pool, LockPool::Immune(_)) {
                    runtime.retire_current_thread();
                }
                completed
            }));
        }
        barrier.wait();
        let start = Instant::now();
        let mut total = 0u64;
        for h in handles {
            total += h.join().expect("worker panicked");
        }
        let elapsed = start.elapsed();
        let stats = self.runtime.stats();
        MicrobenchResult {
            synchronizations: total,
            elapsed,
            yields: stats.yields - before.yields,
            deadlocks: stats.deadlocks_detected - before.deadlocks_detected,
        }
    }
}

/// Runs the microbenchmark once with the given configuration: builds a
/// [`MicrobenchHarness`] and times a single batch. Benchmarks that take
/// several samples should build the harness once and call
/// [`MicrobenchHarness::run`] per sample, keeping setup out of the timed
/// region (see `benches/microbenchmark.rs`).
pub fn run_microbenchmark(config: &MicrobenchConfig) -> MicrobenchResult {
    MicrobenchHarness::new(config).run()
}

/// One row of the overhead experiment: the same configuration run with and
/// without Dimmunix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Threads used.
    pub threads: usize,
    /// Synthetic history size.
    pub history_size: usize,
    /// Vanilla throughput (syncs/sec).
    pub vanilla_rate: f64,
    /// Dimmunix throughput (syncs/sec).
    pub dimmunix_rate: f64,
}

impl OverheadRow {
    /// Relative overhead (`0.045` for 4.5%).
    pub fn overhead(&self) -> f64 {
        1.0 - self.dimmunix_rate / self.vanilla_rate
    }
}

/// Runs the paired (vanilla vs Dimmunix) experiment for one configuration.
pub fn run_overhead_pair(base: &MicrobenchConfig) -> OverheadRow {
    let vanilla = run_microbenchmark(&MicrobenchConfig {
        dimmunix_enabled: false,
        ..*base
    });
    let dimmunix = run_microbenchmark(&MicrobenchConfig {
        dimmunix_enabled: true,
        ..*base
    });
    OverheadRow {
        threads: base.threads,
        history_size: base.synthetic_signatures,
        vanilla_rate: vanilla.syncs_per_sec(),
        dimmunix_rate: dimmunix.syncs_per_sec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MicrobenchConfig {
        MicrobenchConfig {
            threads: 4,
            iterations: 300,
            locks_per_thread: 4,
            work_inside: 1_000,
            work_outside: 2_000,
            synthetic_signatures: 64,
            dimmunix_enabled: true,
            shards: 1,
        }
    }

    #[test]
    fn microbenchmark_completes_all_iterations() {
        let cfg = small();
        let result = run_microbenchmark(&cfg);
        assert_eq!(
            result.synchronizations,
            (cfg.threads * cfg.iterations) as u64
        );
        assert_eq!(result.deadlocks, 0);
        assert_eq!(result.yields, 0, "synthetic signatures must never match");
        assert!(result.syncs_per_sec() > 0.0);
    }

    #[test]
    fn vanilla_mode_disables_the_engine() {
        let result = run_microbenchmark(&MicrobenchConfig {
            dimmunix_enabled: false,
            ..small()
        });
        assert_eq!(result.deadlocks, 0);
        assert_eq!(result.yields, 0);
    }

    #[test]
    fn overhead_is_modest() {
        // Smoke-level sanity check only: this test runs unoptimized (debug)
        // with far less per-sync work than the paper's applications, so the
        // hook cost is exaggerated; the bench harness (release build,
        // calibrated per-sync work) does the real measurement.
        let row = run_overhead_pair(&small());
        assert!(row.vanilla_rate > 0.0 && row.dimmunix_rate > 0.0);
        assert!(
            row.overhead() < 0.95,
            "overhead unexpectedly large: {:.1}%",
            row.overhead() * 100.0
        );
    }

    #[test]
    fn busy_work_scales_with_units() {
        let t0 = Instant::now();
        busy_work(10);
        let short = t0.elapsed();
        let t1 = Instant::now();
        busy_work(100_000);
        let long = t1.elapsed();
        assert!(long >= short);
    }
}
