//! Simulated request-serving server on the task-keyed async substrate.
//!
//! The workload models the situation the `asyncio` substrate exists for: a
//! server multiplexing thousands of concurrent request-handling **tasks**
//! onto a handful of worker threads, where every request fans out over a
//! pair of shared resource locks (held across `.await` points) and fans
//! back in through a global accounting lock. A seeded fraction of requests
//! acquires its resource pair in **inverted** order — the classic AB/BA
//! inversion, here between *tasks*, so a thread-keyed engine would never
//! see the cycle (the tasks share workers).
//!
//! Three modes drive the evaluation:
//!
//! * [`run_bare_server`] — the baseline: plain task-level async mutexes
//!   with no immunity instrumentation ([`BareMutex`]). On an inversion-free
//!   schedule it measures raw throughput; on a schedule with inversions the
//!   colliding requests simply **hang** (the executor reports them stuck).
//! * [`run_immune_server`] with no history — the learning run: the first
//!   task-level cycle is detected on its closing request, its signature
//!   recorded (and persisted when the config names a history log); the
//!   refused request backs off and retries in canonical order, so every
//!   request still completes.
//! * [`run_immune_server`] with the learned history — the immune run: the
//!   avoidance module parks inverted requests instead of letting the cycle
//!   build, so the same seeded schedule completes with **zero** deadlocks.
//!
//! Everything is deterministic: one SplitMix64 seed fixes the resource
//! pairs and inversion choices, and the executor replays identical poll
//! schedules for identical inputs.

#![deny(missing_docs)]

use crate::microbench::busy_work;
use dimmunix_core::{Config, History};
use dimmunix_rt::asyncio::{current_task, yield_now, Executor, Mutex, MutexGuard};
use dimmunix_rt::{AcquisitionSite, DeadlockPolicy, DimmunixRuntime};
use std::cell::{RefCell, RefMut};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

// Stable acquisition sites: one per code path, exactly as a real server
// binary would have them. Canonical and inverted handlers are distinct
// paths, so the learned signature names the inverted pair and avoidance
// only serializes requests that actually take the inverted path.
const SITE_CANON_FIRST: AcquisitionSite = AcquisitionSite::new("srv.canonical.first", "srv.rs", 1);
const SITE_CANON_SECOND: AcquisitionSite =
    AcquisitionSite::new("srv.canonical.second", "srv.rs", 2);
const SITE_INV_FIRST: AcquisitionSite = AcquisitionSite::new("srv.inverted.first", "srv.rs", 3);
const SITE_INV_SECOND: AcquisitionSite = AcquisitionSite::new("srv.inverted.second", "srv.rs", 4);
const SITE_RETRY_FIRST: AcquisitionSite = AcquisitionSite::new("srv.retry.first", "srv.rs", 5);
const SITE_RETRY_SECOND: AcquisitionSite = AcquisitionSite::new("srv.retry.second", "srv.rs", 6);
const SITE_STATS: AcquisitionSite = AcquisitionSite::new("srv.stats", "srv.rs", 7);

/// Deterministic PRNG (SplitMix64) for the request schedule.
#[derive(Debug, Clone)]
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Parameters of one async-server run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncServerConfig {
    /// Concurrent request tasks (the acceptance scenario uses 10 000+).
    pub tasks: usize,
    /// Simulated workers on the deterministic executor.
    pub workers: usize,
    /// Shared resource locks the requests fan out over.
    pub resources: usize,
    /// Every `invert_every`-th request takes the inverted-order code path
    /// (0 = no inversions; the throughput-baseline schedule).
    pub invert_every: usize,
    /// `.await` points while holding the first resource of the pair — the
    /// guard-across-await window in which inversions interleave.
    pub hold_yields: usize,
    /// Busy-work units inside the critical section.
    pub work_inside: u64,
    /// Seed for the request schedule.
    pub seed: u64,
    /// Engine shards for the immune runtime.
    pub shards: usize,
}

impl Default for AsyncServerConfig {
    fn default() -> Self {
        AsyncServerConfig {
            tasks: 10_000,
            workers: 4,
            resources: 32,
            invert_every: 0,
            hold_yields: 1,
            work_inside: 16,
            seed: 0x5eed,
            shards: 1,
        }
    }
}

/// What one server run did.
#[derive(Debug, Clone)]
pub struct AsyncServerResult {
    /// Requests spawned.
    pub requests: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests stuck when the executor drained (deadlocked tasks — only
    /// ever non-zero for bare locks on a schedule with inversions).
    pub stuck: usize,
    /// `WouldDeadlock` refusals observed (each is followed by a
    /// canonical-order retry).
    pub refused: u64,
    /// Total future polls the executor performed.
    pub polls: u64,
    /// Wall-clock time of the executor drain.
    pub elapsed: Duration,
    /// Per-request service latency (spawn-to-completion), one entry per
    /// completed request, in completion order.
    pub latencies: Vec<Duration>,
}

impl AsyncServerResult {
    /// Served requests per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `p`-th latency percentile (`0.0..=1.0`) over completed requests.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// An immune server run: the result plus the runtime it ran on, so callers
/// can read the learned history and engine statistics.
#[derive(Debug)]
pub struct ImmuneServerRun {
    /// Throughput / refusal / latency observations.
    pub result: AsyncServerResult,
    /// The runtime the run executed on.
    pub runtime: Arc<DimmunixRuntime>,
}

/// The resource pair of one request, in acquisition order, plus the code
/// path (inverted or canonical) it takes.
#[derive(Debug, Clone, Copy)]
struct RequestPlan {
    first: usize,
    second: usize,
    inverted: bool,
}

/// The seeded request schedule: pairs of distinct resources, inverted for
/// every `invert_every`-th request.
fn plan_requests(cfg: &AsyncServerConfig) -> Vec<RequestPlan> {
    let mut rng = Rng::new(cfg.seed);
    (0..cfg.tasks)
        .map(|rid| {
            let a = rng.index(cfg.resources);
            let b = (a + 1 + rng.index(cfg.resources - 1)) % cfg.resources;
            let (lo, hi) = (a.min(b), a.max(b));
            let inverted = cfg.invert_every != 0 && rid % cfg.invert_every == cfg.invert_every - 1;
            if inverted {
                RequestPlan {
                    first: hi,
                    second: lo,
                    inverted,
                }
            } else {
                RequestPlan {
                    first: lo,
                    second: hi,
                    inverted,
                }
            }
        })
        .collect()
}

/// Shared per-run accounting, updated from inside the request tasks.
#[derive(Debug, Default)]
struct RunCounters {
    refused: u64,
    latencies: Vec<Duration>,
}

/// Runs the server on immune async locks. `history` seeds the runtime with
/// previously learned signatures (the immune replay); `config` is the
/// engine configuration (name a `history_path` to exercise persistence).
pub fn run_immune_server(
    cfg: &AsyncServerConfig,
    config: Config,
    history: Option<History>,
) -> ImmuneServerRun {
    let mut builder = DimmunixRuntime::builder()
        .config(config)
        .shards(cfg.shards)
        .deadlock_policy(DeadlockPolicy::Error);
    if let Some(h) = history {
        builder = builder.history(h);
    }
    let rt = builder.build();

    let ex = Executor::new_in(&rt, cfg.workers);
    let resources: Rc<Vec<Mutex<u64>>> =
        Rc::new((0..cfg.resources).map(|_| Mutex::new_in(&rt, 0)).collect());
    let stats_lock = Rc::new(Mutex::new_in(&rt, 0u64));
    let counters = Rc::new(RefCell::new(RunCounters::default()));

    let plans = plan_requests(cfg);
    let work = cfg.work_inside;
    let hold_yields = cfg.hold_yields;
    for plan in plans {
        let resources = resources.clone();
        let stats_lock = stats_lock.clone();
        let counters = counters.clone();
        ex.spawn(async move {
            let started = Instant::now();
            let (first_site, second_site) = if plan.inverted {
                (SITE_INV_FIRST, SITE_INV_SECOND)
            } else {
                (SITE_CANON_FIRST, SITE_CANON_SECOND)
            };
            // Fan-out: the resource pair, holding the first lock across
            // `.await` points (a hold edge under the task's identity).
            let mut attempt: Option<(MutexGuard<'_, u64>, MutexGuard<'_, u64>)> = None;
            {
                let g1 = resources[plan.first]
                    .lock_at(first_site)
                    .await
                    .expect("an opening acquisition holds nothing and cannot close a cycle");
                for _ in 0..hold_yields {
                    yield_now().await;
                }
                match resources[plan.second].lock_at(second_site).await {
                    Ok(g2) => attempt = Some((g1, g2)),
                    Err(_) => {
                        // Refused: this request would have completed a
                        // task-level deadlock. Back off (dropping the held
                        // resource) and retry in canonical order.
                        counters.borrow_mut().refused += 1;
                        drop(g1);
                    }
                }
            }
            let (mut g1, mut g2) = match attempt {
                Some(pair) => pair,
                None => loop {
                    yield_now().await;
                    let (lo, hi) = (plan.first.min(plan.second), plan.first.max(plan.second));
                    let g1 = match resources[lo].lock_at(SITE_RETRY_FIRST).await {
                        Ok(g) => g,
                        Err(_) => {
                            counters.borrow_mut().refused += 1;
                            continue;
                        }
                    };
                    match resources[hi].lock_at(SITE_RETRY_SECOND).await {
                        Ok(g2) => break (g1, g2),
                        Err(_) => {
                            counters.borrow_mut().refused += 1;
                            drop(g1);
                        }
                    }
                },
            };
            *g1 += 1;
            *g2 += 1;
            busy_work(work);
            drop(g2);
            drop(g1);
            // Fan-in: global accounting under its own lock (held across
            // nothing — the tail of the request).
            let mut served = stats_lock
                .lock_at(SITE_STATS)
                .await
                .expect("the fan-in lock is acquired holding nothing");
            *served += 1;
            drop(served);
            counters.borrow_mut().latencies.push(started.elapsed());
        });
    }

    let started = Instant::now();
    let report = ex.run();
    let elapsed = started.elapsed();
    let counters = Rc::try_unwrap(counters)
        .expect("all tasks have completed")
        .into_inner();
    assert_eq!(current_task(), None, "the executor must have unwound");
    ImmuneServerRun {
        result: AsyncServerResult {
            requests: cfg.tasks,
            completed: report.completed,
            stuck: report.stuck,
            refused: counters.refused,
            polls: report.polls,
            elapsed,
            latencies: counters.latencies,
        },
        runtime: rt,
    }
}

/// Runs the identical seeded schedule on [`BareMutex`] — no engine, no
/// immunity. The inversion-free variant is the throughput baseline; with
/// inversions the colliding tasks deadlock and are reported stuck.
pub fn run_bare_server(cfg: &AsyncServerConfig) -> AsyncServerResult {
    // The bare run still needs *an* executor; its runtime is only used for
    // task identity bookkeeping, never consulted by the bare locks.
    let rt = DimmunixRuntime::builder()
        .config(Config::disabled())
        .build();
    let ex = Executor::new_in(&rt, cfg.workers);
    let resources: Rc<Vec<BareMutex<u64>>> =
        Rc::new((0..cfg.resources).map(|_| BareMutex::new(0)).collect());
    let stats_lock = Rc::new(BareMutex::new(0u64));
    let counters = Rc::new(RefCell::new(RunCounters::default()));

    let plans = plan_requests(cfg);
    let work = cfg.work_inside;
    let hold_yields = cfg.hold_yields;
    for plan in plans {
        let resources = resources.clone();
        let stats_lock = stats_lock.clone();
        let counters = counters.clone();
        ex.spawn(async move {
            let started = Instant::now();
            let mut g1 = resources[plan.first].lock().await;
            for _ in 0..hold_yields {
                yield_now().await;
            }
            let mut g2 = resources[plan.second].lock().await;
            *g1 += 1;
            *g2 += 1;
            busy_work(work);
            drop(g2);
            drop(g1);
            let mut served = stats_lock.lock().await;
            *served += 1;
            drop(served);
            counters.borrow_mut().latencies.push(started.elapsed());
        });
    }

    let started = Instant::now();
    let report = ex.run();
    let elapsed = started.elapsed();
    // Stuck tasks still own clones of the counters; snapshot instead of
    // unwrapping.
    let counters = counters.borrow();
    AsyncServerResult {
        requests: cfg.tasks,
        completed: report.completed,
        stuck: report.stuck,
        refused: counters.refused,
        polls: report.polls,
        elapsed,
        latencies: counters.latencies.clone(),
    }
}

// ---------------------------------------------------------------------------
// The bare async mutex: what servers use when they don't know about
// deadlock immunity. Identical queueing discipline to `asyncio::Mutex`
// (FIFO waiters, a release hands the lock to the front waiter only) minus
// every engine hook, so the throughput delta between the two isolates the
// immunity cost rather than a wake-policy difference.
// ---------------------------------------------------------------------------

struct BareState {
    locked: bool,
    waiters: VecDeque<Waker>,
}

/// A plain task-level async mutex with no deadlock instrumentation.
pub struct BareMutex<T> {
    state: RefCell<BareState>,
    data: RefCell<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for BareMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BareMutex").finish_non_exhaustive()
    }
}

impl<T> BareMutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        BareMutex {
            state: RefCell::new(BareState {
                locked: false,
                waiters: VecDeque::new(),
            }),
            data: RefCell::new(value),
        }
    }

    /// Acquires the mutex; the future resolves to the guard.
    pub fn lock(&self) -> BareLockFuture<'_, T> {
        BareLockFuture { lock: self }
    }
}

/// Future returned by [`BareMutex::lock`].
#[derive(Debug)]
pub struct BareLockFuture<'a, T> {
    lock: &'a BareMutex<T>,
}

impl<'a, T> Future for BareLockFuture<'a, T> {
    type Output = BareGuard<'a, T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.lock.state.borrow_mut();
        if state.locked {
            state.waiters.push_back(cx.waker().clone());
            Poll::Pending
        } else {
            state.locked = true;
            drop(state);
            Poll::Ready(BareGuard {
                lock: self.lock,
                inner: Some(self.lock.data.borrow_mut()),
            })
        }
    }
}

/// Guard for [`BareMutex`]; releases on drop.
pub struct BareGuard<'a, T> {
    lock: &'a BareMutex<T>,
    inner: Option<RefMut<'a, T>>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for BareGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BareGuard").field("value", &**self).finish()
    }
}

impl<T> std::ops::Deref for BareGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T> std::ops::DerefMut for BareGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}

impl<T> Drop for BareGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        let next = {
            let mut state = self.lock.state.borrow_mut();
            state.locked = false;
            state.waiters.pop_front()
        };
        if let Some(w) = next {
            w.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmunix_core::SignatureKind;

    fn adversarial_cfg() -> AsyncServerConfig {
        AsyncServerConfig {
            tasks: 10_000,
            workers: 4,
            resources: 32,
            invert_every: 40,
            ..AsyncServerConfig::default()
        }
    }

    /// Acceptance scenario for the tentpole: 10k tasks on a small worker
    /// pool, seeded inversions. The learning run detects the task-level
    /// deadlock on first occurrence and persists it; the replay loads the
    /// persisted history and completes with zero deadlocks.
    #[test]
    fn server_learns_persists_and_avoids() {
        let cfg = adversarial_cfg();
        let log = std::env::temp_dir().join(format!(
            "dimmunix-async-server-{}.history",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&log);
        let persistent = Config {
            history_path: Some(log.clone()),
            ..Config::default()
        };

        // Run 1: learn (and persist through the history log).
        let learn = run_immune_server(&cfg, persistent.clone(), None);
        assert_eq!(learn.result.completed, cfg.tasks, "no request may hang");
        assert_eq!(learn.result.stuck, 0);
        assert!(learn.result.refused >= 1, "a closing request was refused");
        let stats = learn.runtime.stats();
        assert!(stats.deadlocks_detected >= 1);
        let learned = learn.runtime.history();
        assert!(!learned.is_empty());
        assert!(learned
            .iter()
            .any(|(_, s)| s.kind() == SignatureKind::Deadlock));
        drop(learn);

        // Run 2: a fresh runtime recovers the history from the log alone
        // and the identical seeded schedule completes immune.
        let avoid = run_immune_server(&cfg, persistent, None);
        assert_eq!(avoid.result.completed, cfg.tasks);
        assert_eq!(avoid.result.stuck, 0);
        assert_eq!(avoid.result.refused, 0, "immune replay refuses nothing");
        let stats = avoid.runtime.stats();
        assert_eq!(stats.deadlocks_detected, 0);
        assert!(stats.yields >= 1, "avoidance parked inverted requests");
        let _ = std::fs::remove_file(&log);
    }

    /// The same seeded schedule on bare async locks deadlocks: stuck tasks,
    /// lost requests — the failure mode immunity removes.
    #[test]
    fn bare_locks_deadlock_on_the_same_schedule() {
        let bare = run_bare_server(&adversarial_cfg());
        assert!(bare.stuck > 0, "bare locks must deadlock on this schedule");
        assert!(bare.completed < bare.requests);
    }

    /// Inversion-free schedules complete on both substrates; this is the
    /// throughput-comparison pair the bench reports overhead from.
    #[test]
    fn inversion_free_schedules_complete_on_both_substrates() {
        let cfg = AsyncServerConfig {
            tasks: 2_000,
            ..AsyncServerConfig::default()
        };
        let bare = run_bare_server(&cfg);
        assert_eq!(bare.completed, cfg.tasks);
        assert_eq!(bare.stuck, 0);
        let immune = run_immune_server(&cfg, Config::default(), None);
        assert_eq!(immune.result.completed, cfg.tasks);
        assert_eq!(immune.result.stuck, 0);
        assert_eq!(immune.result.refused, 0);
        assert_eq!(immune.runtime.stats().deadlocks_detected, 0);
        assert_eq!(immune.result.latencies.len(), cfg.tasks);
        assert!(immune.result.latency_percentile(0.99) >= immune.result.latency_percentile(0.5));
    }
}
