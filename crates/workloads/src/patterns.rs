//! Classic lock-pattern workloads on the simulated VM.
//!
//! These feed the ablation experiments and the examples: dining
//! philosophers (a canonical multi-way deadlock), the `MyLock` wrapper
//! pathology of §3.2 (why depth-1 outer stacks can over-serialize custom
//! synchronization wrappers), and a forced avoidance-starvation scenario.

use dalvik_sim::{MethodId, ObjRef, Program, ProgramBuilder};

/// Builds a dining-philosophers program: `n` philosopher threads, each
/// grabbing its left then right fork inside nested `synchronized` blocks,
/// `rounds` times. With n >= 2 some interleavings deadlock (an n-way cycle).
pub fn dining_philosophers(n: u32, rounds: u32) -> (Program, MethodId) {
    let n = n.max(2);
    let mut pb = ProgramBuilder::new("philosophers.java");
    let mut phil_methods = Vec::new();
    for p in 0..n {
        let left = ObjRef(100 + p);
        let right = ObjRef(100 + (p + 1) % n);
        // One round lives in its own method, called `rounds` times: like a
        // real Java loop body, every iteration then reuses the *same*
        // acquisition positions, so an antibody learned in any round shields
        // all the others. (Unrolling the rounds inline would give each one
        // distinct positions and make every round a distinct "bug".)
        let round = pb
            .method(format!("Philosopher{p}.round"))
            .compute(1)
            .sync(left, |body| {
                body.compute(2).sync(right, |inner| {
                    inner.compute(3);
                });
            })
            .compute(1)
            .finish();
        let mut m = pb.method(format!("Philosopher{p}.dine"));
        for _ in 0..rounds {
            m = m.call(round);
        }
        phil_methods.push(m.finish());
    }
    let mut main = pb.method("Table.main");
    for (p, m) in phil_methods.iter().enumerate() {
        main = main.spawn(*m, format!("philosopher-{p}"));
    }
    let main = main.finish();
    (pb.build(), main)
}

/// Builds the §3.2 "MyLock wrapper" workload: every thread synchronizes
/// through the *same* wrapper method (one program location), then performs
/// nested application-level synchronization that can deadlock. With depth-1
/// outer stacks, once any deadlock is recorded all wrapper acquisitions map
/// to one position and get serialized; with deeper stacks the callers stay
/// distinguishable.
pub fn wrapper_workload(worker_pairs: u32, rounds: u32) -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new("mylock.java");
    // The wrapper exposes explicit lock()/unlock() entry points: the
    // monitorenter lives in `MyLock.lock` and the matching monitorexit in
    // `MyLock.unlock`, i.e. the acquisition is *not* intra-procedural — the
    // exact pattern §3.2 warns about, because every acquisition in the whole
    // program then shares the single `MyLock.lock` location.
    let mut lock_methods = Vec::new();
    let mut unlock_methods = Vec::new();
    for obj in 0..(worker_pairs * 2) {
        let guarded = ObjRef(500 + obj);
        lock_methods.push(
            pb.method("MyLock.lock") // same name/location for every instance
                .enter(guarded)
                .finish(),
        );
        unlock_methods.push(pb.method("MyLock.unlock").exit(guarded).finish());
    }
    // Worker pairs acquire two wrapped locks in opposite order via the
    // wrapper (the deadlock the wrapper's author did not anticipate).
    let mut workers = Vec::new();
    for pair in 0..worker_pairs {
        let (xi, yi) = ((pair * 2) as usize, (pair * 2 + 1) as usize);
        let mut a = pb.method(format!("Client{pair}A.run"));
        for _ in 0..rounds {
            a = a
                .call(lock_methods[xi])
                .compute(2)
                .call(lock_methods[yi])
                .compute(1)
                .call(unlock_methods[yi])
                .call(unlock_methods[xi]);
        }
        workers.push(a.finish());
        let mut b = pb.method(format!("Client{pair}B.run"));
        for _ in 0..rounds {
            b = b
                .call(lock_methods[yi])
                .compute(2)
                .call(lock_methods[xi])
                .compute(1)
                .call(unlock_methods[xi])
                .call(unlock_methods[yi]);
        }
        workers.push(b.finish());
    }
    let mut main = pb.method("Main.main");
    for (i, w) in workers.iter().enumerate() {
        main = main.spawn(*w, format!("client-{i}"));
    }
    let main = main.finish();
    (pb.build(), main)
}

/// Builds a scenario that forces an avoidance-induced starvation once the
/// AB/BA signature is known: a third lock C couples the two threads so that
/// parking the second thread would block the first forever (§2.2).
pub fn starvation_workload() -> (Program, MethodId) {
    let a = ObjRef(1);
    let b = ObjRef(2);
    let c = ObjRef(3);
    let mut pb = ProgramBuilder::new("starvation.java");
    let t1 = pb
        .method("T1.run")
        .sync(a, |body| {
            body.compute(2).sync(c, |inner| {
                inner.compute(2);
            });
            body.sync(b, |inner| {
                inner.compute(1);
            });
        })
        .finish();
    let t2 = pb
        .method("T2.run")
        .sync(c, |body| {
            body.compute(4).sync(b, |inner| {
                inner.compute(1);
            });
        })
        .sync(b, |body| {
            body.compute(1).sync(a, |inner| {
                inner.compute(1);
            });
        })
        .finish();
    let main = pb
        .method("Main.main")
        .spawn(t1, "t1")
        .spawn(t2, "t2")
        .finish();
    (pb.build(), main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalvik_sim::{ProcessBuilder, RunOutcome};
    use dimmunix_core::Config;

    #[test]
    fn philosophers_can_deadlock_and_then_become_immune() {
        // Find a deadlocking seed.
        let mut trained = None;
        for seed in 0..300u64 {
            let (program, main) = dining_philosophers(3, 2);
            let mut p = ProcessBuilder::new("philosophers", program)
                .seed(seed)
                .spawn_main(main);
            let _ = p.run(200_000);
            if p.stats().deadlocks_detected > 0 {
                trained = Some((seed, p.engine().history().clone()));
                break;
            }
        }
        let (seed, history) = trained.expect("philosophers must be able to deadlock");
        // Replay with the antibody.
        let (program, main) = dining_philosophers(3, 2);
        let mut p = ProcessBuilder::new("philosophers", program)
            .seed(seed)
            .history(history)
            .spawn_main(main);
        let outcome = p.run(2_000_000);
        assert_eq!(outcome, RunOutcome::Completed, "stats: {:?}", p.stats());
        assert_eq!(p.stats().deadlocks_detected, 0);
    }

    #[test]
    fn wrapper_workload_is_deadlock_prone_and_depth1_serializes() {
        // Find a deadlocking seed with depth-1 positions.
        let mut found = None;
        for seed in 0..300u64 {
            let (program, main) = wrapper_workload(2, 2);
            let mut p = ProcessBuilder::new("wrapper", program)
                .seed(seed)
                .config(Config::builder().stack_depth(1).build())
                .spawn_main(main);
            let _ = p.run(300_000);
            if p.stats().deadlocks_detected > 0 {
                found = Some((seed, p.engine().history().clone()));
                break;
            }
        }
        let (seed, history) = found.expect("wrapper clients must be able to deadlock");
        // With depth 1, every wrapper call shares one position, so replays
        // yield much more often than with depth 2 (the §3.2 warning).
        let run = |depth: usize| {
            let (program, main) = wrapper_workload(2, 2);
            let mut p = ProcessBuilder::new("wrapper", program)
                .seed(seed)
                .config(Config::builder().stack_depth(depth).build())
                .history(history.clone())
                .spawn_main(main);
            let _ = p.run(2_000_000);
            p.stats()
        };
        let shallow = run(1);
        let deep = run(2);
        assert!(
            shallow.yields >= deep.yields,
            "depth-1 must serialize at least as much as depth-2 (shallow {} vs deep {})",
            shallow.yields,
            deep.yields
        );
    }

    #[test]
    fn starvation_workload_completes_with_starvation_handling() {
        // Train the AB/BA part first by finding a deadlocking seed.
        let mut trained = None;
        for seed in 0..400u64 {
            let (program, main) = starvation_workload();
            let mut p = ProcessBuilder::new("starvation", program)
                .seed(seed)
                .spawn_main(main);
            let _ = p.run(300_000);
            if p.stats().deadlocks_detected > 0 {
                trained = Some(p.engine().history().clone());
                break;
            }
        }
        let Some(history) = trained else {
            // The coupling lock may prevent the deadlock entirely under the
            // bounded seed search; nothing to assert in that case.
            return;
        };
        // With the antibody loaded, every seed must terminate (possibly via
        // the starvation-resolution path) — never hang.
        for seed in 0..30u64 {
            let (program, main) = starvation_workload();
            let mut p = ProcessBuilder::new("starvation", program)
                .seed(seed)
                .history(history.clone())
                .spawn_main(main);
            let outcome = p.run(2_000_000);
            assert_eq!(
                outcome,
                RunOutcome::Completed,
                "seed {seed}: {:?}",
                p.stats()
            );
        }
    }
}
