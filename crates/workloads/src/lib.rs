//! # workloads — benchmark and test workload generators
//!
//! Three families of workloads drive the evaluation harness:
//!
//! * [`microbench`] — the §5 performance microbenchmark on real OS threads
//!   (2–512 threads, random uncontended lock objects, busy-waits, 64–256
//!   synthetic signatures), used to regenerate the 4–5% overhead result;
//! * [`synthetic`] — generators for the synthetic deadlock histories the
//!   microbenchmark loads;
//! * [`patterns`] — simulated-VM workloads: dining philosophers, the §3.2
//!   `MyLock` wrapper pathology (depth-1 ablation), and a forced
//!   avoidance-starvation scenario;
//! * [`async_server`] — a simulated request-serving server on the
//!   task-keyed `asyncio` substrate: 10k+ concurrent tasks on a small
//!   deterministic worker pool, fan-out/fan-in locking with seeded order
//!   inversions, compared against bare async-unaware locks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_server;
pub mod microbench;
pub mod patterns;
pub mod synthetic;

pub use async_server::{
    run_bare_server, run_immune_server, AsyncServerConfig, AsyncServerResult, BareMutex,
    ImmuneServerRun,
};
pub use microbench::{
    busy_work, run_microbenchmark, run_overhead_pair, MicrobenchConfig, MicrobenchHarness,
    MicrobenchResult, OverheadRow,
};
pub use patterns::{dining_philosophers, starvation_workload, wrapper_workload};
pub use synthetic::{colliding_history, synthetic_history};
