//! Synthetic deadlock signatures.
//!
//! The §5 microbenchmark loads 64–256 *synthetic* signatures into the history
//! "to simulate the scenario in which many synchronization statements are
//! involved in deadlock bugs": the avoidance code then has to scan a
//! realistically-sized history on every request, which is what makes the
//! measured 4–5% overhead an upper bound rather than a best case.
//!
//! Platform-scale experiments (the `engine_sharded` bench and the
//! shared-history memory test) push the same generator to 1000 signatures:
//! histories that size are bulk-built into one shared
//! [`HistorySnapshot`](dimmunix_core::HistorySnapshot) — outer stacks
//! interned first, the avoidance index constructed in a single deferred
//! pass — and shared by every engine shard.

use dimmunix_core::{CallStack, Frame, History, Signature, SignatureKind, SignaturePair};

/// Builds `count` two-thread deadlock signatures whose outer positions do not
/// correspond to any real acquisition site of the benchmark (so they are
/// scanned but never matched — pure overhead, as in the paper).
pub fn synthetic_history(count: usize) -> History {
    let mut history = History::new();
    for i in 0..count {
        let sig = Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new(
                        format!("SyntheticService{i}.outerA"),
                        "synthetic.java",
                        (i * 2) as u32,
                    )),
                    CallStack::single(Frame::new(
                        format!("SyntheticService{i}.innerA"),
                        "synthetic.java",
                        (i * 2 + 1) as u32,
                    )),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new(
                        format!("SyntheticHelper{i}.outerB"),
                        "synthetic.java",
                        (i * 2 + 1000) as u32,
                    )),
                    CallStack::single(Frame::new(
                        format!("SyntheticHelper{i}.innerB"),
                        "synthetic.java",
                        (i * 2 + 1001) as u32,
                    )),
                ),
            ],
        );
        history.add(sig);
    }
    history
}

/// Like [`synthetic_history`], but the signatures' outer positions collide
/// with the benchmark's real acquisition sites (file/method names passed in),
/// so the avoidance path actually performs matching work and may yield.
/// Used by the hot-history variant of the overhead experiment.
pub fn colliding_history(count: usize, scope: &str, file: &str) -> History {
    let mut history = History::new();
    for i in 0..count {
        let sig = Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new(scope, file, i as u32)),
                    CallStack::single(Frame::new(scope, file, (i + 10_000) as u32)),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new(
                        format!("{scope}.peer"),
                        file,
                        (i + 20_000) as u32,
                    )),
                    CallStack::single(Frame::new(
                        format!("{scope}.peer"),
                        file,
                        (i + 30_000) as u32,
                    )),
                ),
            ],
        );
        history.add(sig);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_history_has_requested_size() {
        for n in [0, 1, 64, 256] {
            assert_eq!(synthetic_history(n).len(), n);
        }
    }

    #[test]
    fn synthetic_signatures_are_distinct_bugs() {
        let h = synthetic_history(64);
        // Dedup would have collapsed identical ones; 64 distinct entries
        // proves they are all different bugs.
        assert_eq!(h.len(), 64);
    }

    #[test]
    fn colliding_history_mentions_the_scope() {
        let h = colliding_history(8, "Bench.worker", "bench.rs");
        assert_eq!(h.len(), 8);
        let (_, sig) = h.iter().next().unwrap();
        assert!(sig
            .outer_stacks()
            .any(|s| s.top().unwrap().method().contains("Bench.worker")));
    }
}
