//! Shared deterministic schedule generators for the Dimmunix test suites.
//!
//! Three hand-rolled generators used to live as private copies inside the
//! sharded-vs-monolithic proptest, its mixed-rwlock sibling, and the
//! sync/async-equivalence proptest. This crate is their single home:
//!
//! * [`Gen`] — the SplitMix64 case generator every property harness seeds.
//! * [`schedule`] — the engine-level schedule steps (release / acquire /
//!   skip decisions, pre-trained histories, the shared site universe) used
//!   by the sharded-vs-monolithic and mixed-rwlock oracles.
//! * [`script`] — the per-owner lock/unlock scripts plus turn sequences
//!   used by the sync/async-equivalence suite.
//!
//! **Every helper preserves the exact pseudo-random stream of the test it
//! was extracted from** — same constructor seeding, same draw order, same
//! short-circuit skips — so the historical seeds keep exploring the exact
//! schedules they always did. Behavioural changes here invalidate pinned
//! seeds across three suites; treat the draw order as frozen.
//!
//! The build environment has no crates.io access, which is why these are
//! bespoke rather than `proptest`/`rand` (see the PR 1 notes in
//! CHANGES.md).

#![deny(missing_docs)]

pub mod schedule;
pub mod script;

/// Deterministic PRNG (SplitMix64) for generating random cases.
///
/// Extracted verbatim from the core proptest harness: the constructor XORs
/// the seed with the SplitMix64 increment so that small consecutive seeds
/// (0, 1, 2, …) land in well-separated stream positions.
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator for one test case. Equal seeds yield equal
    /// streams, forever.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..hi` (`hi > lo`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_stream_is_frozen() {
        // The stream for seed 0 is pinned against a from-scratch SplitMix64:
        // three suites' historical seeds depend on this exact stream. The
        // initial state is seed (0) XOR the golden-ratio increment.
        let mut reference = 0x9e37_79b9_7f4a_7c15u64;
        let mut g = Gen::new(0);
        for _ in 0..8 {
            reference = reference.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = reference;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            assert_eq!(g.next_u64(), z ^ (z >> 31));
        }
        let mut g = Gen::new(7);
        assert_eq!(g.range(0, 10), (Gen::new(7).next_u64() % 10) as usize);
    }

    #[test]
    fn range_is_uniform_enough_and_in_bounds() {
        let mut g = Gen::new(42);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let v = g.range(0, 6);
            assert!(v < 6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
