//! Per-owner lock/unlock scripts with a seeded turn sequence.
//!
//! Extracted from the sync/async-equivalence proptest in
//! `crates/runtime/tests/sync_async_equivalence.rs`. [`gen_schedule`] is the
//! third of the three hand-rolled generators this crate consolidates; its
//! xorshift64* stream and draw order are **frozen** (the suite pins 160
//! seeds against it).

/// One step of an owner's script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Acquire lock `.0` (the owner does not already hold it).
    Lock(usize),
    /// Release lock `.0` (held, not necessarily the most recent — unordered
    /// releases exercise non-nested hold patterns).
    Unlock(usize),
}

/// A complete generated workload: per-owner scripts plus the global turn
/// sequence that serializes them.
pub struct Schedule {
    /// Per-owner op scripts.
    pub scripts: Vec<Vec<Op>>,
    /// Owner index to hand each turn to (skipped if not idle at the
    /// turnstile).
    pub turns: Vec<usize>,
    /// Number of distinct locks the scripts range over.
    pub locks: usize,
}

/// xorshift64* — deterministic, no external deps.
pub fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Generates the seeded workload: 2..=5 owners over 2..=4 locks, scripts of
/// 4..=8 ops holding at most 3 locks at once (trailing unlocks appended),
/// and `2 × total-ops` random turns.
pub fn gen_schedule(seed: u64) -> Schedule {
    let mut rng = seed | 1;
    let owners = 2 + (next_rand(&mut rng) % 4) as usize; // 2..=5
    let locks = 2 + (next_rand(&mut rng) % 3) as usize; // 2..=4
    let mut scripts = vec![Vec::new(); owners];
    for script in scripts.iter_mut() {
        let mut held: Vec<usize> = Vec::new();
        let len = 4 + (next_rand(&mut rng) % 5) as usize;
        for _ in 0..len {
            let can_lock = held.len() < 3 && held.len() < locks;
            if can_lock && (held.is_empty() || next_rand(&mut rng) % 3 != 0) {
                let mut l = (next_rand(&mut rng) as usize) % locks;
                while held.contains(&l) {
                    l = (l + 1) % locks;
                }
                held.push(l);
                script.push(Op::Lock(l));
            } else if !held.is_empty() {
                // Unlock a random held lock (not necessarily LIFO — unordered
                // releases exercise non-nested hold patterns).
                let idx = (next_rand(&mut rng) as usize) % held.len();
                let l = held.remove(idx);
                script.push(Op::Unlock(l));
            }
        }
        while let Some(l) = held.pop() {
            script.push(Op::Unlock(l));
        }
    }
    let total: usize = scripts.iter().map(Vec::len).sum();
    let turns = (0..total * 2)
        .map(|_| (next_rand(&mut rng) as usize) % owners)
        .collect();
    Schedule {
        scripts,
        turns,
        locks,
    }
}

/// The static site line of script op `op` of owner `owner`. Both the sync
/// and async substrates present this exact line to the engine, so learned
/// signatures are comparable across runs and across substrates.
pub fn site_line(owner: usize, op: usize) -> u32 {
    (owner * 100 + op + 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_well_formed() {
        for seed in 0..200u64 {
            let sched = gen_schedule(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
            assert!((2..=5).contains(&sched.scripts.len()), "seed {seed}");
            assert!((2..=4).contains(&sched.locks), "seed {seed}");
            for script in &sched.scripts {
                let mut held: Vec<usize> = Vec::new();
                for &op in script {
                    match op {
                        Op::Lock(l) => {
                            assert!(l < sched.locks, "seed {seed}");
                            assert!(!held.contains(&l), "seed {seed}: reentrant lock");
                            held.push(l);
                            assert!(held.len() <= 3, "seed {seed}: too many holds");
                        }
                        Op::Unlock(l) => {
                            let i = held.iter().position(|&h| h == l);
                            assert!(i.is_some(), "seed {seed}: unlock of unheld lock");
                            held.remove(i.unwrap());
                        }
                    }
                }
                assert!(held.is_empty(), "seed {seed}: script leaks holds");
            }
            let total: usize = sched.scripts.iter().map(Vec::len).sum();
            assert_eq!(sched.turns.len(), total * 2, "seed {seed}");
            assert!(
                sched.turns.iter().all(|&t| t < sched.scripts.len()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_schedule(1234);
        let b = gen_schedule(1234);
        assert_eq!(a.scripts, b.scripts);
        assert_eq!(a.turns, b.turns);
        assert_eq!(a.locks, b.locks);
    }

    #[test]
    fn site_lines_are_distinct_per_owner_op() {
        let mut seen = std::collections::HashSet::new();
        for owner in 0..6 {
            for op in 0..12 {
                assert!(seen.insert(site_line(owner, op)));
            }
        }
    }
}
