//! Engine-level schedule steps for the sharded-vs-monolithic oracles.
//!
//! Extracted from `prop_sharded_engine_equals_monolithic_oracle` and its
//! mixed-rwlock sibling in `crates/core/tests/proptests.rs`. The draw order
//! is **frozen**: the release flip short-circuits when the thread holds
//! nothing or is retrying a parked request, the mutex-only variant skips
//! before drawing a site when the random lock collides with a hold, and the
//! site draw always comes last. Reordering any of these changes which
//! schedules 410 pinned seeds explore.

use crate::Gen;
use dimmunix_core::{
    AccessMode, CallStack, Frame, History, Signature, SignatureKind, SignaturePair,
};

/// What a simulated substrate thread does on one schedule slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannedStep {
    /// Release the most recently acquired hold.
    Release,
    /// No-op slot (the mutex-only generator skips accidental reentrancy).
    Skip,
    /// Request `lock` in `mode` from site `site` of the shared universe.
    Acquire {
        /// Raw lock id to request.
        lock: u64,
        /// Requested access mode (always exclusive for the mutex variant).
        mode: AccessMode,
        /// Index into the shared site universe (see [`universe_site`]).
        site: usize,
    },
}

/// The shared acquisition-site universe: a compact set of single-frame
/// stacks so outer positions collide often enough that pre-trained
/// signatures actually match live schedules.
pub fn universe_site(i: usize) -> CallStack {
    CallStack::single(Frame::new(format!("site{i}"), "univ.rs", i as u32))
}

/// Pre-trains a random history over the first `sites` universe sites:
/// `range(0, 3)` deadlock signatures of arity `range(2, 4)`, each pair
/// drawing outer then inner site. Exercises the avoidance and starvation
/// machinery from the first request of a schedule.
pub fn pretrain_history(g: &mut Gen, sites: usize) -> History {
    let mut history = History::new();
    for _ in 0..g.range(0, 3) {
        let arity = g.range(2, 4);
        let pairs = (0..arity)
            .map(|_| {
                SignaturePair::new(
                    universe_site(g.range(0, sites)),
                    universe_site(g.range(0, sites)),
                )
            })
            .collect();
        history.add(Signature::new(SignatureKind::Deadlock, pairs));
    }
    history
}

/// One schedule slot of the mutex-only oracle workload.
///
/// `held` is the thread's current hold list (raw lock ids, most recent
/// last); `retry` is `Some(lock)` when the thread is re-attempting a
/// parked (avoidance-yielded) request, which bypasses both the release
/// flip and the reentrancy skip.
pub fn plan_mutex_step(
    g: &mut Gen,
    locks: usize,
    sites: usize,
    held: &[u64],
    retry: Option<u64>,
) -> PlannedStep {
    // Pick an action: acquire (possibly the parked retry) or release the
    // most recent hold. The `&&` chain short-circuits exactly as the
    // original inline code did: no flip is drawn on a retry or when the
    // thread holds nothing.
    let release = retry.is_none() && !held.is_empty() && g.flip();
    if release {
        return PlannedStep::Release;
    }
    let lock = match retry {
        Some(l) => l,
        None => g.range(0, locks) as u64,
    };
    if retry.is_none() && held.contains(&lock) {
        // Keep the harness simple: no reentrant acquisitions except through
        // random collision — skip them (before the site draw, as always).
        return PlannedStep::Skip;
    }
    let site = g.range(0, sites);
    PlannedStep::Acquire {
        lock,
        mode: AccessMode::Exclusive,
        site,
    }
}

/// One schedule slot of the mixed mutex/rwlock oracle workload.
///
/// `held_any` is whether the thread currently holds anything; `retry`
/// carries the parked request's lock **and** mode. Unlike the mutex
/// variant there is no reentrancy skip — reader re-acquisitions are the
/// point — and the mode draw is biased 5:3 towards shared so reader crowds
/// actually form.
pub fn plan_mixed_step(
    g: &mut Gen,
    locks: usize,
    sites: usize,
    held_any: bool,
    retry: Option<(u64, AccessMode)>,
) -> PlannedStep {
    let release = retry.is_none() && held_any && g.flip();
    if release {
        return PlannedStep::Release;
    }
    let (lock, mode) = match retry {
        Some(r) => r,
        None => {
            let lock = g.range(0, locks) as u64;
            // Bias towards shared so reader crowds actually form.
            let mode = if g.range(0, 8) < 5 {
                AccessMode::Shared
            } else {
                AccessMode::Exclusive
            };
            (lock, mode)
        }
    };
    let site = g.range(0, sites);
    PlannedStep::Acquire { lock, mode, site }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The extracted mutex step replays the original inline draw order:
    /// this reimplements the pre-extraction code for a few hundred slots
    /// and checks both the decisions and the post-slot RNG state agree.
    #[test]
    fn mutex_step_preserves_the_original_stream() {
        for seed in 0..64u64 {
            let mut a = Gen::new(seed);
            let mut b = Gen::new(seed);
            let mut held: Vec<u64> = Vec::new();
            let mut parked: Option<u64> = None;
            for _ in 0..200 {
                // Original inline logic on `a`.
                let retry = parked;
                let expected = {
                    let release = retry.is_none() && !held.is_empty() && a.flip();
                    if release {
                        PlannedStep::Release
                    } else {
                        let lraw = match retry {
                            Some(l) => l,
                            None => a.range(0, 10) as u64,
                        };
                        if held.contains(&lraw) && retry.is_none() {
                            PlannedStep::Skip
                        } else {
                            PlannedStep::Acquire {
                                lock: lraw,
                                mode: AccessMode::Exclusive,
                                site: a.range(0, 6),
                            }
                        }
                    }
                };
                let got = plan_mutex_step(&mut b, 10, 6, &held, retry);
                assert_eq!(got, expected, "seed {seed}");
                // Evolve a plausible substrate state so all branches run.
                match got {
                    PlannedStep::Release => {
                        held.pop();
                    }
                    PlannedStep::Skip => {}
                    PlannedStep::Acquire { lock, .. } => {
                        if parked.take().is_none() && held.len() % 3 == 2 {
                            parked = Some(lock);
                        } else {
                            held.push(lock);
                        }
                    }
                }
            }
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}: streams drift");
        }
    }

    #[test]
    fn mixed_step_draws_mode_only_on_fresh_requests() {
        let mut g = Gen::new(3);
        // A retry consumes exactly one draw (the site).
        let mut h = g.clone();
        let step = plan_mixed_step(&mut g, 8, 6, true, Some((5, AccessMode::Shared)));
        assert_eq!(
            step,
            PlannedStep::Acquire {
                lock: 5,
                mode: AccessMode::Shared,
                site: h.range(0, 6),
            }
        );
        assert_eq!(g.next_u64(), h.next_u64());
    }

    #[test]
    fn pretrain_history_stays_within_the_universe() {
        for seed in 0..32 {
            let mut g = Gen::new(seed);
            let h = pretrain_history(&mut g, 6);
            assert!(h.len() <= 2);
            for (_, sig) in h.iter() {
                assert!((2..=3).contains(&sig.arity()));
            }
        }
    }
}
