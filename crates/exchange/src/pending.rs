//! Trust gating for foreign antibodies.
//!
//! A signature imported from another process is a standing instruction to
//! park threads, which makes a bad antibody a denial-of-service vector: an
//! attacker (or just a corrupt file) could ship signatures that yield threads
//! at sites that never deadlock. The gate is local evidence: a foreign
//! signature activates only once **every** outer stack it names has been
//! matched — by [stable site key](SiteKey) — against a position this process
//! has actually interned. Until then it sits in the quarantined pending set,
//! influencing nothing.
//!
//! Activation also *re-anchors* the signature: the foreign outer stacks
//! (whose absolute line numbers come from someone else's build) are replaced
//! by the locally observed stacks with the same site keys, so the activated
//! antibody instantiates against this process's position table exactly.
//!
//! The set is indexed by unresolved site key, and each antibody carries a
//! count of the evidence it still misses, so both the screening miss
//! ([`observe_position`](PendingSet::observe_position) for an unwanted key)
//! and an activation are O(affected antibodies), never O(quarantine size) —
//! a 10k-signature fleet pack must not tax the acquisition hot path.

use dimmunix_core::{CallStack, Signature, SignaturePair, SiteKey};
use std::collections::HashMap;

/// One quarantined foreign antibody awaiting local evidence.
#[derive(Debug, Clone)]
struct PendingAntibody {
    signature: Signature,
    /// The distinct outer site keys the signature names.
    outer_keys: Vec<SiteKey>,
    detections: u64,
    /// How many of `outer_keys` are still unresolved locally.
    missing: usize,
}

/// A locally observed stack for a site key, reference-counted by the live
/// antibodies that name the key, so evidence is dropped as soon as the last
/// interested antibody activates.
#[derive(Debug)]
struct Evidence {
    stack: CallStack,
    refs: usize,
}

/// A foreign signature together with lineage carried through activation.
#[derive(Debug, Clone)]
pub struct ActivatedAntibody {
    /// The signature, re-anchored to locally observed outer stacks.
    pub signature: Signature,
    /// Detection count inherited from the pack entry.
    pub detections: u64,
}

/// The quarantine set of foreign antibodies that have not yet earned
/// activation, plus the site-key evidence collected so far.
#[derive(Debug, Default)]
pub struct PendingSet {
    /// Slot map of quarantined antibodies; activated slots become `None`
    /// and are recycled through `free`.
    pending: Vec<Option<PendingAntibody>>,
    free: Vec<usize>,
    live: usize,
    /// Unresolved site key → slots of the antibodies waiting on it. Keys
    /// are removed the moment they resolve, so membership doubles as the
    /// fast screen a runtime consults before paying per-acquisition work.
    by_key: HashMap<SiteKey, Vec<usize>>,
    /// Locally observed stacks for resolved keys some live antibody still
    /// names, so the map is bounded by the quarantine set, not by the
    /// program's position count.
    resolved: HashMap<SiteKey, Evidence>,
    activated_total: u64,
}

impl PendingSet {
    /// Creates an empty pending set.
    pub fn new() -> Self {
        PendingSet::default()
    }

    /// Number of antibodies currently quarantined.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of antibodies this set has activated over its lifetime.
    pub fn activated_total(&self) -> u64 {
        self.activated_total
    }

    /// True if `key` is evidence some pending antibody is waiting for.
    pub fn needs(&self, key: SiteKey) -> bool {
        self.by_key.contains_key(&key)
    }

    /// Quarantines a foreign signature with its lineage. It will be returned
    /// by a later [`observe_position`](PendingSet::observe_position) call
    /// once every outer site it names has been observed locally — or
    /// immediately, if evidence retained for other quarantined antibodies
    /// already covers every key (the returned vec is non-empty exactly
    /// then).
    pub fn admit(&mut self, signature: Signature, detections: u64) -> Vec<ActivatedAntibody> {
        let mut outer_keys: Vec<SiteKey> = signature.outer_site_keys().collect();
        outer_keys.sort_unstable();
        outer_keys.dedup();

        let mut missing = 0usize;
        for key in &outer_keys {
            match self.resolved.get_mut(key) {
                Some(evidence) => evidence.refs += 1,
                None => missing += 1,
            }
        }

        let slot = self.free.pop().unwrap_or_else(|| {
            self.pending.push(None);
            self.pending.len() - 1
        });
        self.live += 1;
        if missing > 0 {
            for key in &outer_keys {
                if !self.resolved.contains_key(key) {
                    self.by_key.entry(*key).or_default().push(slot);
                }
            }
        }
        self.pending[slot] = Some(PendingAntibody {
            signature,
            outer_keys,
            detections,
            missing,
        });
        if missing == 0 {
            vec![self.activate(slot)]
        } else {
            Vec::new()
        }
    }

    /// Feeds one locally interned position to the gate. Returns the
    /// antibodies (if any) for which this was the last missing piece of
    /// evidence, re-anchored to the locally observed stacks, removed from
    /// quarantine and ready to add to the live history.
    pub fn observe_position(&mut self, stack: &CallStack) -> Vec<ActivatedAntibody> {
        let key = stack.site_key();
        let Some(waiters) = self.by_key.remove(&key) else {
            return Vec::new();
        };
        self.resolved.insert(
            key,
            Evidence {
                stack: stack.clone(),
                refs: waiters.len(),
            },
        );
        let mut out = Vec::new();
        for slot in waiters {
            let ready = {
                let antibody = self.pending[slot]
                    .as_mut()
                    .expect("waiter slots hold live antibodies");
                antibody.missing -= 1;
                antibody.missing == 0
            };
            if ready {
                out.push(self.activate(slot));
            }
        }
        out
    }

    /// Removes the (fully evidenced) antibody in `slot` from quarantine,
    /// re-anchors it, and releases the evidence references it held.
    fn activate(&mut self, slot: usize) -> ActivatedAntibody {
        let antibody = self.pending[slot].take().expect("activating a live slot");
        self.free.push(slot);
        self.live -= 1;
        self.activated_total += 1;
        let signature = reanchor(&antibody.signature, &self.resolved);
        for key in &antibody.outer_keys {
            if let Some(evidence) = self.resolved.get_mut(key) {
                evidence.refs -= 1;
                if evidence.refs == 0 {
                    self.resolved.remove(key);
                }
            }
        }
        ActivatedAntibody {
            signature,
            detections: antibody.detections,
        }
    }
}

/// Rebuilds a signature with each outer stack replaced by the locally
/// observed stack carrying the same site key. Inner stacks (diagnosis only)
/// keep their foreign rendering. The stable fingerprint is preserved by
/// construction, because re-anchoring swaps stacks within a site-key
/// equivalence class.
fn reanchor(signature: &Signature, resolved: &HashMap<SiteKey, Evidence>) -> Signature {
    let pairs = signature
        .pairs()
        .iter()
        .map(|pair| {
            let outer = resolved
                .get(&pair.outer.site_key())
                .map(|evidence| evidence.stack.clone())
                .unwrap_or_else(|| pair.outer.clone());
            SignaturePair::new(outer, pair.inner.clone())
        })
        .collect();
    Signature::new(signature.kind(), pairs)
}
