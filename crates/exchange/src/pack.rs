//! The `dimmunix-pack v1` antibody-pack codec and its CRDT-style merge.
//!
//! A pack is a single JSON document carrying a set of deadlock/starvation
//! signatures together with lineage metadata: the id of the process that
//! exported it, the epoch range the signatures were collected over, per-entry
//! detection counts, and a whole-pack fingerprint. Entries are keyed by the
//! [stable fingerprint](Signature::stable_fingerprint) of their signature, so
//! the same bug exported by two differently compiled binaries of the same
//! program occupies one slot.
//!
//! [`Pack::merge`] is a join in the CRDT sense — idempotent, commutative and
//! associative over entry sets (union by fingerprint, detection counts joined
//! by max, epoch ranges by interval union) — which is what lets a fleet gossip
//! packs in any order and still converge.
//!
//! Integrity is all-or-nothing: a document whose declared `signature_count`
//! or `fingerprint` disagrees with its contents, or any of whose entries
//! carries a signature whose declared per-record `fp` disagrees with a
//! recomputation from its stacks, is rejected **whole**. A malicious or
//! corrupt pack must not be able to slip even one bogus antibody into a
//! local history, because an antibody is a standing instruction to park
//! threads.

use dimmunix_core::json::{self, JsonValue};
use dimmunix_core::{
    signature_from_json_value, signature_to_log_record, History, HistorySnapshot, Signature,
};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic `format` string of every pack document.
pub const PACK_FORMAT: &str = "dimmunix-pack";
/// The only pack version this build reads and writes.
pub const PACK_VERSION: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An error produced by the pack codec.
#[derive(Debug)]
pub enum PackError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The document is not a well-formed, integrity-consistent pack. The
    /// message says which check failed; the pack as a whole was rejected.
    Malformed(String),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Io(e) => write!(f, "pack io error: {e}"),
            PackError::Malformed(m) => write!(f, "malformed pack: {m}"),
        }
    }
}

impl std::error::Error for PackError {}

impl From<std::io::Error> for PackError {
    fn from(e: std::io::Error) -> Self {
        PackError::Io(e)
    }
}

fn malformed(message: impl Into<String>) -> PackError {
    PackError::Malformed(message.into())
}

/// One antibody carried by a pack: a signature plus how many times its bug
/// has been detected across the processes the pack has passed through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackEntry {
    /// The signature itself.
    pub signature: Signature,
    /// Join-by-max detection count (lineage metadata, not load-bearing).
    pub detections: u64,
}

/// A versioned, single-file set of antibodies with lineage metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Pack {
    origin: String,
    epoch_min: u64,
    epoch_max: u64,
    /// Entries keyed by stable signature fingerprint.
    entries: BTreeMap<u64, PackEntry>,
}

impl Pack {
    /// Creates an empty pack attributed to `origin` (a free-form process or
    /// host identifier).
    pub fn new(origin: impl Into<String>) -> Self {
        Pack {
            origin: origin.into(),
            epoch_min: 0,
            epoch_max: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Builds a pack from every live signature of a history snapshot,
    /// stamping the snapshot's current epoch as the upper end of the range
    /// and one detection per signature.
    pub fn from_snapshot(origin: impl Into<String>, snapshot: &HistorySnapshot) -> Self {
        let mut pack = Pack::new(origin);
        pack.epoch_max = snapshot.epoch();
        for (_, sig) in snapshot.history().iter() {
            pack.add(sig.clone(), 1);
        }
        pack
    }

    /// The origin identifier the pack was exported under.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The epoch range `(min, max)` the entries were collected over.
    pub fn epoch_range(&self) -> (u64, u64) {
        (self.epoch_min, self.epoch_max)
    }

    /// Extends the epoch range to cover `epoch`.
    pub fn observe_epoch(&mut self, epoch: u64) {
        self.epoch_min = self.epoch_min.min(epoch);
        self.epoch_max = self.epoch_max.max(epoch);
    }

    /// Number of antibodies in the pack.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the pack carries no antibodies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in ascending stable-fingerprint order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &PackEntry)> {
        self.entries.iter().map(|(fp, e)| (*fp, e))
    }

    /// True if the pack carries an antibody with stable fingerprint `fp`.
    pub fn contains(&self, fp: u64) -> bool {
        self.entries.contains_key(&fp)
    }

    /// Adds one antibody, joining with any existing entry for the same bug
    /// (detection counts join by max). Returns true if the bug was new to
    /// the pack.
    pub fn add(&mut self, signature: Signature, detections: u64) -> bool {
        let fp = signature.stable_fingerprint();
        match self.entries.get_mut(&fp) {
            Some(existing) => {
                existing.detections = existing.detections.max(detections);
                false
            }
            None => {
                self.entries.insert(
                    fp,
                    PackEntry {
                        signature,
                        detections,
                    },
                );
                true
            }
        }
    }

    /// Joins `other` into `self`: union of entries by stable fingerprint,
    /// detection counts by max, epoch ranges by interval union. Returns the
    /// number of bugs that were new to `self`.
    ///
    /// This is a CRDT join: merging is idempotent, commutative and
    /// associative over the entry sets, so packs can be gossiped between
    /// processes in any order and every process converges to the same set.
    pub fn merge(&mut self, other: &Pack) -> usize {
        let mut fresh = 0;
        for entry in other.entries.values() {
            if self.add(entry.signature.clone(), entry.detections) {
                fresh += 1;
            }
        }
        self.epoch_min = self.epoch_min.min(other.epoch_min);
        self.epoch_max = self.epoch_max.max(other.epoch_max);
        fresh
    }

    /// The minimal contribution pack: entries of `self` that `remote` does
    /// not already carry (by stable fingerprint). This is what a process
    /// pushes back after detecting locally — everything else the fleet
    /// already knows.
    pub fn diff(&self, remote: &Pack) -> Pack {
        let mut out = Pack::new(self.origin.clone());
        out.epoch_min = self.epoch_min;
        out.epoch_max = self.epoch_max;
        for (fp, entry) in &self.entries {
            if !remote.entries.contains_key(fp) {
                out.entries.insert(*fp, entry.clone());
            }
        }
        out
    }

    /// The whole-pack fingerprint: FNV-1a over the sorted entry fingerprints.
    /// Recomputed and checked against the declared value on every parse.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        // BTreeMap iterates in ascending key order, which is the canonical
        // entry order of the serialized document.
        for fp in self.entries.keys() {
            hash = fnv1a(hash, &fp.to_le_bytes());
        }
        hash
    }

    /// Serializes the pack as a `dimmunix-pack v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"format\": ");
        json::write_escaped(&mut out, PACK_FORMAT);
        out.push_str(&format!(", \"version\": {PACK_VERSION}, \"origin\": "));
        json::write_escaped(&mut out, &self.origin);
        out.push_str(&format!(
            ", \"epoch_min\": {}, \"epoch_max\": {}, \"signature_count\": {}, \"fingerprint\": ",
            self.epoch_min,
            self.epoch_max,
            self.entries.len()
        ));
        json::write_escaped(&mut out, &format!("{:016x}", self.fingerprint()));
        out.push_str(", \"signatures\": [");
        for (i, entry) in self.entries.values().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"detections\": {}, \"signature\": {}}}",
                entry.detections,
                signature_to_log_record(&entry.signature)
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Parses and integrity-checks a pack document.
    ///
    /// # Errors
    /// Returns [`PackError::Malformed`] — rejecting the pack **whole** — if
    /// the document is not JSON, is not a `dimmunix-pack` of a supported
    /// version, declares a `signature_count` or `fingerprint` that disagrees
    /// with its contents, carries duplicate entries for one bug, or carries
    /// any record whose per-signature `fp` fails recomputation.
    pub fn from_json(text: &str) -> Result<Pack, PackError> {
        let doc = json::parse(text).map_err(malformed)?;
        match doc.get("format").and_then(JsonValue::as_str) {
            Some(PACK_FORMAT) => {}
            other => return Err(malformed(format!("unknown format {other:?}"))),
        }
        match doc.get("version").and_then(JsonValue::as_u64) {
            Some(PACK_VERSION) => {}
            other => return Err(malformed(format!("unsupported version {other:?}"))),
        }
        let origin = doc
            .get("origin")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| malformed("missing `origin`"))?;
        let epoch_min = doc
            .get("epoch_min")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| malformed("missing `epoch_min`"))?;
        let epoch_max = doc
            .get("epoch_max")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| malformed("missing `epoch_max`"))?;
        let declared_count = doc
            .get("signature_count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| malformed("missing `signature_count`"))?;
        let declared_fp = doc
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| malformed("missing `fingerprint`"))?;
        let declared_fp =
            u64::from_str_radix(declared_fp, 16).map_err(|_| malformed("non-hex `fingerprint`"))?;
        let raw = doc
            .get("signatures")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| malformed("missing `signatures` array"))?;

        let mut pack = Pack::new(origin);
        pack.epoch_min = epoch_min;
        pack.epoch_max = epoch_max;
        for item in raw {
            let detections = item
                .get("detections")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| malformed("entry is missing `detections`"))?;
            let sig_value = item
                .get("signature")
                .ok_or_else(|| malformed("entry is missing `signature`"))?;
            // Re-verifies the per-record `fp` against the stacks.
            let signature =
                signature_from_json_value(sig_value).map_err(|e| malformed(e.to_string()))?;
            if !pack.add(signature, detections) {
                return Err(malformed("duplicate entry for one bug"));
            }
        }
        // A count or whole-pack fingerprint that disagrees with the decoded
        // contents means records were dropped, injected, or reshuffled
        // between export and import: quarantine territory, not merge input.
        if pack.entries.len() as u64 != declared_count {
            return Err(malformed(format!(
                "signature_count declares {declared_count} records, document carries {}",
                pack.entries.len()
            )));
        }
        let actual_fp = pack.fingerprint();
        if actual_fp != declared_fp {
            return Err(malformed(format!(
                "fingerprint mismatch: declared {declared_fp:016x}, contents hash to {actual_fp:016x}"
            )));
        }
        Ok(pack)
    }

    /// Writes the pack to `path` atomically (temp file + rename), so a
    /// reader never observes a half-written pack.
    ///
    /// # Errors
    /// Returns [`PackError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PackError> {
        let path = path.as_ref();
        let tmp = path.with_extension("pack.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and integrity-checks the pack at `path`.
    ///
    /// # Errors
    /// Returns [`PackError::Io`] if the file cannot be read and
    /// [`PackError::Malformed`] if it fails any integrity check.
    pub fn load(path: impl AsRef<Path>) -> Result<Pack, PackError> {
        let text = std::fs::read_to_string(path)?;
        Pack::from_json(&text)
    }

    /// Reads the pack at `path`; on an integrity failure the file is moved
    /// aside to `<path>.corrupt` — the same quarantine discipline the
    /// history log applies to corrupt segments — and the error is returned
    /// with the quarantine destination.
    ///
    /// # Errors
    /// Propagates [`Pack::load`] errors; quarantining never masks them.
    pub fn load_or_quarantine(
        path: impl AsRef<Path>,
    ) -> Result<Pack, (PackError, Option<PathBuf>)> {
        let path = path.as_ref();
        match Pack::load(path) {
            Ok(pack) => Ok(pack),
            Err(err @ PackError::Io(_)) => Err((err, None)),
            Err(err) => {
                let mut quarantine = path.as_os_str().to_owned();
                quarantine.push(".corrupt");
                let quarantine = PathBuf::from(quarantine);
                match std::fs::rename(path, &quarantine) {
                    Ok(()) => Err((err, Some(quarantine))),
                    Err(_) => Err((err, None)),
                }
            }
        }
    }
}

/// Joins a pack into an immutable history snapshot, producing the successor
/// snapshot and the number of antibodies that were new.
///
/// The join key is the stable fingerprint: entries whose bug the local
/// history already knows — even under a different compilation's absolute
/// line numbers — are skipped rather than duplicated.
pub fn merge_snapshot(local: &Arc<HistorySnapshot>, pack: &Pack) -> (Arc<HistorySnapshot>, usize) {
    let known: std::collections::HashSet<u64> = local
        .history()
        .iter()
        .map(|(_, sig)| sig.stable_fingerprint())
        .collect();
    let mut snapshot = Arc::clone(local);
    let mut fresh = 0;
    for (fp, entry) in pack.entries() {
        if known.contains(&fp) {
            continue;
        }
        let (next, _, was_new) = snapshot.append(entry.signature.clone());
        snapshot = next;
        if was_new {
            fresh += 1;
        }
    }
    (snapshot, fresh)
}

/// Joins a pack directly into a mutable [`History`], returning the number of
/// antibodies that were new. Same stable-fingerprint join as
/// [`merge_snapshot`].
pub fn merge_history(local: &mut History, pack: &Pack) -> usize {
    let known: std::collections::HashSet<u64> = local
        .iter()
        .map(|(_, sig)| sig.stable_fingerprint())
        .collect();
    let mut fresh = 0;
    for (fp, entry) in pack.entries() {
        if known.contains(&fp) {
            continue;
        }
        let (_, was_new) = local.add(entry.signature.clone());
        if was_new {
            fresh += 1;
        }
    }
    fresh
}
