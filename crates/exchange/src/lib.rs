//! Collaborative immunity for Dimmunix: antibody packs, fleet merge, and
//! trust gating.
//!
//! The paper's immunity model is per-process: each process pays the
//! first-occurrence cost of a deadlock once, records the signature, and
//! avoids it forever after. This crate makes immunity *transferable*. A
//! process exports its signatures as a [`Pack`] — a versioned single-file
//! document keyed by [stable fingerprints](dimmunix_core::Signature::stable_fingerprint)
//! that survive recompilation — and any other process running the same
//! program can [`merge`](Pack::merge) that pack into its own history, so
//! only one member of a fleet ever pays the first-occurrence cost of each
//! bug.
//!
//! Three layers:
//!
//! - **Packs** ([`pack`]): the `dimmunix-pack v1` codec with lineage
//!   metadata, a CRDT-style join ([`Pack::merge`]: idempotent, commutative,
//!   associative), [`Pack::diff`] for minimal contribution packs, and
//!   all-or-nothing integrity checking (a pack failing any check is rejected
//!   whole and can be quarantined like a corrupt log segment).
//! - **Trust gating** ([`pending`]): foreign signatures are screened against
//!   locally interned positions before activation. An antibody naming sites
//!   this process has never executed sits inert in a [`PendingSet`], so a
//!   bad pack cannot park threads at arbitrary sites (antibodies are
//!   standing yield instructions — trusting them blindly would be a
//!   denial-of-service vector).
//! - **Snapshot joins**: [`merge_snapshot`] and [`merge_history`] fold a
//!   pack into the engine's history keyed by stable fingerprint, so a bug
//!   the local process already knows under different absolute line numbers
//!   is deduplicated rather than double-counted.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pack;
pub mod pending;

pub use pack::{
    merge_history, merge_snapshot, Pack, PackEntry, PackError, PACK_FORMAT, PACK_VERSION,
};
pub use pending::{ActivatedAntibody, PendingSet};

#[cfg(test)]
mod tests {
    use super::*;
    use dimmunix_core::{
        CallStack, Frame, History, HistorySnapshot, Signature, SignatureKind, SignaturePair,
    };
    use dimmunix_testkit::Gen;

    fn sig(outer_m: &str, line: u32, delta: u32) -> Signature {
        Signature::new(
            SignatureKind::Deadlock,
            vec![
                SignaturePair::new(
                    CallStack::single(Frame::new(outer_m, "a.rs", line + delta)),
                    CallStack::single(Frame::new("inner.a", "a.rs", line + 1 + delta)),
                ),
                SignaturePair::new(
                    CallStack::single(Frame::new("outer.b", "b.rs", 50 + delta)),
                    CallStack::single(Frame::new("inner.b", "b.rs", 51 + delta)),
                ),
            ],
        )
    }

    /// A random signature drawn from small pools so distinct draws often
    /// collide on the same bug — exactly the regime where join laws matter.
    fn random_sig(gen: &mut Gen) -> Signature {
        let methods = ["svc.lock", "pool.get", "cache.put", "log.flush"];
        let files = ["svc.rs", "pool.rs"];
        let arity = gen.range(1, 4);
        let pairs = (0..arity)
            .map(|_| {
                let m = methods[gen.range(0, methods.len())];
                let f = files[gen.range(0, files.len())];
                let line = gen.range(1, 40) as u32;
                SignaturePair::new(
                    CallStack::single(Frame::new(m, f, line)),
                    CallStack::single(Frame::new("inner", f, line + 1)),
                )
            })
            .collect();
        let kind = if gen.flip() {
            SignatureKind::Deadlock
        } else {
            SignatureKind::Starvation
        };
        Signature::new(kind, pairs)
    }

    fn random_pack(gen: &mut Gen, origin: &str) -> Pack {
        let mut pack = Pack::new(origin);
        for _ in 0..gen.range(0, 8) {
            let detections = gen.range(1, 9) as u64;
            pack.add(random_sig(gen), detections);
        }
        pack.observe_epoch(gen.range(0, 100) as u64);
        pack
    }

    fn canonical(pack: &Pack) -> Vec<(u64, u64)> {
        pack.entries().map(|(fp, e)| (fp, e.detections)).collect()
    }

    #[test]
    fn pack_roundtrips_through_json() {
        let mut pack = Pack::new("proc-a");
        pack.add(sig("outer.a", 10, 0), 3);
        pack.add(sig("outer.c", 30, 0), 1);
        pack.observe_epoch(7);
        let text = pack.to_json();
        let parsed = Pack::from_json(&text).unwrap();
        assert_eq!(parsed, pack);
        assert_eq!(parsed.origin(), "proc-a");
        assert_eq!(parsed.epoch_range(), (0, 7));
        assert_eq!(parsed.fingerprint(), pack.fingerprint());
        // An empty pack is legal too.
        let empty = Pack::new("proc-b");
        assert_eq!(Pack::from_json(&empty.to_json()).unwrap(), empty);
    }

    /// Satellite: bad-antibody DoS hardening. A pack whose record count or
    /// whole-pack fingerprint disagrees with its declared values must be
    /// rejected whole — no partial import — and the import helper must
    /// quarantine the file like a corrupt log segment.
    #[test]
    fn tampered_packs_are_rejected_whole_and_quarantined() {
        let mut pack = Pack::new("proc-a");
        pack.add(sig("outer.a", 10, 0), 1);
        pack.add(sig("outer.c", 30, 0), 1);
        let good = pack.to_json();

        // Record dropped but count/fingerprint left as declared: the comma
        // positions make dropping the first entry easy to simulate by
        // rebuilding the array with one entry.
        let dropped = {
            let start = good.find("{\"detections\"").unwrap();
            let mid = good[start..].find(", {\"detections\"").unwrap() + start;
            let end = good.rfind("]}").unwrap();
            format!("{}{}{}", &good[..start], &good[mid + 2..end], &good[end..])
        };
        let err = Pack::from_json(&dropped).unwrap_err();
        assert!(err.to_string().contains("signature_count"), "got: {err}");

        // Declared fingerprint flipped: rejected whole even though every
        // individual record is intact.
        let fp_at = good.find("\"fingerprint\": \"").unwrap() + "\"fingerprint\": \"".len();
        let mut tampered = good.clone();
        let flipped = if &good[fp_at..=fp_at] == "0" {
            "1"
        } else {
            "0"
        };
        tampered.replace_range(fp_at..=fp_at, flipped);
        let err = Pack::from_json(&tampered).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "got: {err}");

        // A count that disagrees is equally fatal.
        let count_tampered = good.replace("\"signature_count\": 2", "\"signature_count\": 3");
        assert!(Pack::from_json(&count_tampered).is_err());

        // The import helper moves the bad file aside.
        let dir = std::env::temp_dir().join(format!("dimmunix-pack-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pack");
        std::fs::write(&path, &tampered).unwrap();
        let (err, quarantine) = Pack::load_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, PackError::Malformed(_)));
        let quarantine = quarantine.unwrap();
        assert!(quarantine.ends_with("bad.pack.corrupt"));
        assert!(!path.exists());
        assert!(quarantine.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_and_format_are_enforced() {
        let pack = Pack::new("proc-a");
        let good = pack.to_json();
        let wrong_version = good.replace("\"version\": 1", "\"version\": 2");
        assert!(Pack::from_json(&wrong_version).is_err());
        let wrong_format = good.replace("dimmunix-pack", "dimmunix-pancake");
        assert!(Pack::from_json(&wrong_format).is_err());
        assert!(Pack::from_json("not json").is_err());
    }

    /// Satellite: merge-algebra proptests. The join must be idempotent,
    /// commutative and associative over random signature sets, or fleet
    /// gossip order would change what a process believes.
    #[test]
    fn merge_is_idempotent() {
        for seed in 0..200u64 {
            let mut gen = Gen::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            let a = random_pack(&mut gen, "a");
            let mut twice = a.clone();
            assert_eq!(twice.merge(&a), 0, "self-merge must add nothing");
            assert_eq!(canonical(&twice), canonical(&a), "seed {seed}");
            assert_eq!(twice.epoch_range(), a.epoch_range());
        }
    }

    #[test]
    fn merge_is_commutative() {
        for seed in 0..200u64 {
            let mut gen = Gen::new(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
            let a = random_pack(&mut gen, "a");
            let b = random_pack(&mut gen, "b");
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(canonical(&ab), canonical(&ba), "seed {seed}");
            assert_eq!(ab.fingerprint(), ba.fingerprint(), "seed {seed}");
            assert_eq!(ab.epoch_range(), ba.epoch_range(), "seed {seed}");
        }
    }

    #[test]
    fn merge_is_associative() {
        for seed in 0..200u64 {
            let mut gen = Gen::new(seed.wrapping_mul(0xda94_2042_e4dd_58b5) | 1);
            let a = random_pack(&mut gen, "a");
            let b = random_pack(&mut gen, "b");
            let c = random_pack(&mut gen, "c");
            let mut left = a.clone(); // (a ∨ b) ∨ c
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone(); // a ∨ (b ∨ c)
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(canonical(&left), canonical(&right), "seed {seed}");
            assert_eq!(left.epoch_range(), right.epoch_range(), "seed {seed}");
        }
    }

    #[test]
    fn diff_is_the_minimal_contribution() {
        for seed in 0..100u64 {
            let mut gen = Gen::new(seed.wrapping_mul(0x853c_49e6_748f_ea9b) | 1);
            let local = random_pack(&mut gen, "local");
            let remote = random_pack(&mut gen, "remote");
            let contribution = local.diff(&remote);
            // Nothing the remote already knows...
            for (fp, _) in contribution.entries() {
                assert!(!remote.contains(fp), "seed {seed}");
                assert!(local.contains(fp), "seed {seed}");
            }
            // ...and merging the contribution gives the remote every bug
            // the full pack would have. (Detection counts are advisory
            // lineage and may stay lower for bugs the remote already knew.)
            let mut via_diff = remote.clone();
            via_diff.merge(&contribution);
            let mut via_full = remote.clone();
            via_full.merge(&local);
            let bugs = |p: &Pack| p.entries().map(|(fp, _)| fp).collect::<Vec<_>>();
            assert_eq!(bugs(&via_diff), bugs(&via_full), "seed {seed}");
            assert_eq!(
                via_diff.fingerprint(),
                via_full.fingerprint(),
                "seed {seed}"
            );
        }
    }

    /// The snapshot join deduplicates on the stable fingerprint, so a bug
    /// the local process already recorded under its own compilation's line
    /// numbers is not imported again from a foreign rendering.
    #[test]
    fn merge_snapshot_joins_on_stable_fingerprint() {
        let mut history = History::new();
        history.add(sig("outer.a", 10, 0)); // local rendering
        let snapshot = HistorySnapshot::build(history, 1);

        let mut pack = Pack::new("peer");
        pack.add(sig("outer.a", 10, 500), 2); // same bug, shifted build
        pack.add(sig("outer.z", 90, 500), 1); // genuinely new bug
        let (merged, fresh) = merge_snapshot(&snapshot, &pack);
        assert_eq!(fresh, 1, "only the unknown bug is imported");
        assert_eq!(merged.len(), 2);

        // Same join through the mutable-History entry point.
        let mut history = History::new();
        history.add(sig("outer.a", 10, 0));
        assert_eq!(merge_history(&mut history, &pack), 1);
        assert_eq!(history.len(), 2);
    }

    /// Satellite: the pending-activation path. A foreign antibody imports
    /// into quarantine, stays inert, and activates — re-anchored to local
    /// stacks — only once every outer site it names has been interned
    /// locally.
    #[test]
    fn pending_antibody_activates_when_positions_intern() {
        let foreign = sig("outer.a", 10, 500); // outer sites a.rs:510, b.rs:550
        let mut pending = PendingSet::new();
        pending.admit(foreign.clone(), 3);
        assert_eq!(pending.len(), 1);

        // Local positions intern with *different* absolute lines.
        let local_a = CallStack::single(Frame::new("outer.a", "a.rs", 12));
        let local_b = CallStack::single(Frame::new("outer.b", "b.rs", 52));
        let unrelated = CallStack::single(Frame::new("other.site", "c.rs", 1));

        assert!(pending.needs(local_a.site_key()));
        assert!(!pending.needs(unrelated.site_key()));
        assert!(pending.observe_position(&unrelated).is_empty());
        assert!(pending.observe_position(&local_a).is_empty());
        assert_eq!(pending.len(), 1, "one outer site is still unproven");

        let activated = pending.observe_position(&local_b);
        assert_eq!(activated.len(), 1);
        assert!(pending.is_empty());
        assert_eq!(pending.activated_total(), 1);
        let antibody = &activated[0];
        assert_eq!(antibody.detections, 3);
        // Re-anchored to the local stacks...
        let outers: Vec<String> = antibody
            .signature
            .outer_stacks()
            .map(CallStack::to_compact)
            .collect();
        assert!(outers.contains(&local_a.to_compact()), "outers: {outers:?}");
        assert!(outers.contains(&local_b.to_compact()), "outers: {outers:?}");
        // ...while keeping the bug's identity.
        assert_eq!(
            antibody.signature.stable_fingerprint(),
            foreign.stable_fingerprint()
        );
        // Re-observing resolved sites after activation is a no-op.
        assert!(pending.observe_position(&local_a).is_empty());
    }

    #[test]
    fn partial_evidence_activates_only_ready_antibodies() {
        let mut pending = PendingSet::new();
        pending.admit(sig("outer.a", 10, 0), 1); // needs a.rs:10, b.rs:50
        pending.admit(
            Signature::new(
                SignatureKind::Deadlock,
                vec![SignaturePair::new(
                    CallStack::single(Frame::new("outer.b", "b.rs", 50)),
                    CallStack::single(Frame::new("inner.b", "b.rs", 51)),
                )],
            ),
            1,
        ); // needs only b.rs:50
        let local_b = CallStack::single(Frame::new("outer.b", "b.rs", 777));
        let activated = pending.observe_position(&local_b);
        assert_eq!(activated.len(), 1, "only the single-site antibody is ready");
        assert_eq!(pending.len(), 1);
        let local_a = CallStack::single(Frame::new("outer.a", "a.rs", 888));
        assert_eq!(pending.observe_position(&local_a).len(), 1);
        assert!(pending.is_empty());
    }
}
