//! Sync/async equivalence proptest (ISSUE 6, satellite 3).
//!
//! Drives the *same* seeded lock/unlock schedule through two substrates:
//!
//! * **Oracle (sync)** — a deterministic blocking-lock simulator over the
//!   monolithic thread-keyed [`Dimmunix`] engine. The simulator reproduces,
//!   in plain sequential code, exactly the protocol the async substrate
//!   implements: FIFO mutex handoff (release wakes the front waiter only),
//!   release-driven avoidance wake-one per signature, a deduplicated FIFO
//!   ready queue, and the `Error`-policy refusal path (cancel the refused
//!   request, drop held guards in acquisition order, retire the owner).
//! * **Subject (async)** — the real task-keyed substrate: an
//!   [`Executor`] with `asyncio::Mutex`es on a `DimmunixRuntime`, with the
//!   schedule serialized by a turnstile so engine calls happen in the same
//!   global order as in the oracle.
//!
//! For every seed the test asserts identical per-turn engine stats deltas,
//! identical event sequences (acquired/released/refused per script op),
//! identical learned histories (textual form), identical snapshot epochs,
//! and identical owner fates — first on a history-free learning run, then
//! on a replay run seeded with the learned history (where avoidance yields
//! replace detections). 160 seeds, per the acceptance criteria.

use dimmunix_core::{CallStack, Config, Dimmunix, Frame, History, LockId, OwnerId, RequestOutcome};
use dimmunix_rt::asyncio::{Executor, Mutex, MutexGuard};
use dimmunix_rt::{AcquisitionSite, DeadlockPolicy, DimmunixRuntime, LockError};
use dimmunix_testkit::script::{gen_schedule, site_line, Op, Schedule};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Schedule generation: the seeded per-owner scripts and turn sequences come
// from the shared testkit (`dimmunix_testkit::script`), which freezes the
// xorshift64* draw order these 160 pinned seeds depend on.
// ---------------------------------------------------------------------------

const SITE_SCOPE: &str = "equiv";
const SITE_FILE: &str = "equiv_script.rs";

fn oracle_stack(owner: usize, op: usize) -> CallStack {
    CallStack::single(Frame::new(SITE_SCOPE, SITE_FILE, site_line(owner, op)))
}

fn subject_site(owner: usize, op: usize) -> AcquisitionSite {
    AcquisitionSite::new(SITE_SCOPE, SITE_FILE, site_line(owner, op))
}

// ---------------------------------------------------------------------------
// Common result shape
// ---------------------------------------------------------------------------

/// (requests, grants, yields, deadlocks_detected, acquisitions, releases)
type StatTuple = (u64, u64, u64, u64, u64, u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    Acquired(usize, usize),
    Released(usize, usize),
    Refused(usize, usize),
}

struct RunResult {
    tuples: Vec<(bool, StatTuple)>,
    events: Vec<Ev>,
    history: History,
    history_text: String,
    epoch: u64,
    completed: Vec<bool>,
    dead: Vec<bool>,
    stats: StatTuple,
}

// ---------------------------------------------------------------------------
// Oracle: blocking-lock simulator over the monolithic thread-keyed engine
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    AtTurn,
    LockWait(usize),
    Parked(usize),
    Done,
    Dead,
}

struct LockSim {
    owner: Option<usize>,
    waiters: VecDeque<usize>,
}

struct Oracle<'a> {
    engine: Dimmunix,
    scripts: &'a [Vec<Op>],
    pos: Vec<usize>,
    status: Vec<St>,
    held: Vec<Vec<usize>>,
    locks: Vec<LockSim>,
    parked: HashMap<dimmunix_core::SignatureId, VecDeque<usize>>,
    ready: VecDeque<usize>,
    ready_set: HashSet<usize>,
    events: Vec<Ev>,
}

impl<'a> Oracle<'a> {
    fn new(sched: &'a Schedule, history: History) -> Self {
        let owners = sched.scripts.len();
        Oracle {
            engine: Dimmunix::with_history(Config::default(), history),
            scripts: &sched.scripts,
            pos: vec![0; owners],
            status: vec![St::AtTurn; owners],
            held: vec![Vec::new(); owners],
            locks: (0..sched.locks)
                .map(|_| LockSim {
                    owner: None,
                    waiters: VecDeque::new(),
                })
                .collect(),
            parked: HashMap::new(),
            ready: VecDeque::new(),
            ready_set: HashSet::new(),
            events: Vec::new(),
        }
    }

    fn owner(o: usize) -> OwnerId {
        OwnerId::thread(o as u64)
    }

    fn stat_tuple(&self) -> StatTuple {
        let s = self.engine.stats();
        (
            s.requests,
            s.grants,
            s.yields,
            s.deadlocks_detected,
            s.acquisitions,
            s.releases,
        )
    }

    fn ready_push(&mut self, o: usize) {
        if self.ready_set.insert(o) {
            self.ready.push_back(o);
        }
    }

    fn ready_pop(&mut self) -> Option<usize> {
        let o = self.ready.pop_front()?;
        self.ready_set.remove(&o);
        Some(o)
    }

    /// Mirrors `notify_signatures_released`: one wake per signature, FIFO.
    fn wake_one_each(&mut self, sigs: &[dimmunix_core::SignatureId]) {
        for sig in sigs {
            if let Some(q) = self.parked.get_mut(sig) {
                if let Some(w) = q.pop_front() {
                    self.ready_push(w);
                }
                if self.parked.get(sig).is_some_and(VecDeque::is_empty) {
                    self.parked.remove(sig);
                }
            }
        }
    }

    /// Mirrors `notify_signatures` (wake-all; retire and cancel paths).
    fn wake_all_each(&mut self, sigs: &[dimmunix_core::SignatureId]) {
        for sig in sigs {
            if let Some(q) = self.parked.remove(sig) {
                for w in q {
                    self.ready_push(w);
                }
            }
        }
    }

    /// One schedule turn: returns false when the owner is not idle at the
    /// turnstile (mid-wait, parked, finished, dead) — the turn is skipped,
    /// exactly as the async driver skips owners whose task is not parked on
    /// the turnstile.
    fn give_turn(&mut self, o: usize) -> bool {
        if self.status[o] != St::AtTurn {
            return false;
        }
        self.exec_op(o);
        self.drain_ready();
        true
    }

    fn exec_op(&mut self, o: usize) {
        let i = self.pos[o];
        let Some(&op) = self.scripts[o].get(i) else {
            self.finish(o);
            return;
        };
        self.pos[o] = i + 1;
        match op {
            Op::Lock(l) => self.begin_lock(o, i, l),
            Op::Unlock(l) => {
                self.release_lock(o, l);
                self.events.push(Ev::Released(o, i));
                self.after_op(o);
            }
        }
    }

    fn after_op(&mut self, o: usize) {
        if self.pos[o] >= self.scripts[o].len() {
            self.finish(o);
        } else {
            self.status[o] = St::AtTurn;
        }
    }

    /// Script exhausted: the task body returns, the executor retires the
    /// task — mirrored as `unregister_owner` plus a wake-all broadcast.
    fn finish(&mut self, o: usize) {
        let wake = self.engine.unregister_owner(Self::owner(o));
        self.wake_all_each(&wake);
        self.status[o] = St::Done;
    }

    fn begin_lock(&mut self, o: usize, i: usize, l: usize) {
        let outcome =
            self.engine
                .request(Self::owner(o), LockId::new(l as u64), &oracle_stack(o, i));
        // Mirrors `task_begin_acquire`: wake-ups the engine scheduled while
        // processing the request (starvation resolution clearing yields) are
        // broadcast before the outcome is acted on.
        let pending = self.engine.take_pending_wakeups();
        self.wake_all_each(&pending);
        match outcome {
            RequestOutcome::Granted | RequestOutcome::GrantedReentrant => {
                if self.locks[l].owner.is_none() {
                    self.take(o, i, l);
                    self.after_op(o);
                } else {
                    // Engine approved, substrate lock held: join the FIFO
                    // (the Approved-stage `enqueue` of the async mutex).
                    if !self.locks[l].waiters.contains(&o) {
                        self.locks[l].waiters.push_back(o);
                    }
                    self.status[o] = St::LockWait(l);
                }
            }
            RequestOutcome::Yield { signature } => {
                let q = self.parked.entry(signature).or_default();
                if !q.contains(&o) {
                    q.push_back(o);
                }
                self.status[o] = St::Parked(l);
            }
            RequestOutcome::DeadlockDetected { .. } => self.refuse(o, i, l),
        }
    }

    fn take(&mut self, o: usize, i: usize, l: usize) {
        self.locks[l].owner = Some(o);
        self.engine.acquired(Self::owner(o), LockId::new(l as u64));
        self.held[o].push(l);
        self.events.push(Ev::Acquired(o, i));
    }

    /// Mirrors `MutexGuard::drop`: clear the substrate owner and pop the
    /// front waiter first, then notify the engine (whose release wakes one
    /// parked owner per signature), then hand the lock waiter its wake.
    fn release_lock(&mut self, o: usize, l: usize) {
        self.held[o].retain(|&x| x != l);
        self.locks[l].owner = None;
        let next = self.locks[l].waiters.pop_front();
        let wake = self.engine.released(Self::owner(o), LockId::new(l as u64));
        self.wake_one_each(&wake);
        if let Some(w) = next {
            self.ready_push(w);
        }
    }

    /// Mirrors the `WouldDeadlock` path of the async lock future + task
    /// body: cancel the refused request, drop held guards in acquisition
    /// order, end the task (retire).
    fn refuse(&mut self, o: usize, i: usize, l: usize) {
        self.engine
            .cancel_request(Self::owner(o), LockId::new(l as u64));
        self.events.push(Ev::Refused(o, i));
        let held = self.held[o].clone();
        for l2 in held {
            self.release_lock(o, l2);
        }
        let wake = self.engine.unregister_owner(Self::owner(o));
        self.wake_all_each(&wake);
        self.status[o] = St::Dead;
    }

    /// Mirrors `Executor::run` draining its deduplicated FIFO ready queue
    /// after each turn.
    fn drain_ready(&mut self) {
        while let Some(o) = self.ready_pop() {
            match self.status[o] {
                St::LockWait(l) => {
                    let i = self.pos[o] - 1;
                    if self.locks[l].owner.is_none() {
                        self.take(o, i, l);
                        self.after_op(o);
                    } else {
                        // The handed-off lock was claimed by an
                        // avoidance-woken owner first: re-join at the back.
                        if !self.locks[l].waiters.contains(&o) {
                            self.locks[l].waiters.push_back(o);
                        }
                    }
                }
                St::Parked(l) => {
                    let i = self.pos[o] - 1;
                    self.begin_lock(o, i, l);
                }
                _ => {} // spurious wake of an idle/finished owner
            }
        }
    }

    fn into_result(self, tuples: Vec<(bool, StatTuple)>) -> RunResult {
        let stats = self.stat_tuple();
        let history = self.engine.history().clone();
        RunResult {
            tuples,
            events: self.events,
            history_text: history.to_text(),
            history,
            epoch: self.engine.history_snapshot().epoch(),
            completed: self.status.iter().map(|s| *s == St::Done).collect(),
            dead: self.status.iter().map(|s| *s == St::Dead).collect(),
            stats,
        }
    }
}

fn run_oracle(sched: &Schedule, history: History) -> RunResult {
    let owners = sched.scripts.len();
    let mut oracle = Oracle::new(sched, history);
    let mut tuples = Vec::new();
    for &t in &sched.turns {
        let executed = oracle.give_turn(t);
        tuples.push((executed, oracle.stat_tuple()));
    }
    // Drain: round-robin turns to whoever is still idle at the turnstile
    // until nothing moves (both drivers use the identical policy).
    loop {
        let mut progress = false;
        for t in 0..owners {
            if oracle.status[t] == St::AtTurn {
                oracle.give_turn(t);
                progress = true;
                tuples.push((true, oracle.stat_tuple()));
            }
        }
        if !progress {
            break;
        }
    }
    oracle.into_result(tuples)
}

// ---------------------------------------------------------------------------
// Subject: the real async substrate behind a turnstile
// ---------------------------------------------------------------------------

struct Coord {
    at_turn: Vec<bool>,
    granted: Vec<bool>,
    wakers: Vec<Option<Waker>>,
    events: Vec<Ev>,
    completed: Vec<bool>,
    dead: Vec<bool>,
}

struct Turn {
    coord: Rc<RefCell<Coord>>,
    me: usize,
}

impl Future for Turn {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut c = self.coord.borrow_mut();
        if c.granted[self.me] {
            c.granted[self.me] = false;
            c.at_turn[self.me] = false;
            Poll::Ready(())
        } else {
            c.at_turn[self.me] = true;
            c.wakers[self.me] = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

fn stat_tuple_of(rt: &DimmunixRuntime) -> StatTuple {
    let s = rt.stats();
    (
        s.requests,
        s.grants,
        s.yields,
        s.deadlocks_detected,
        s.acquisitions,
        s.releases,
    )
}

fn run_subject(sched: &Schedule, history: History) -> RunResult {
    let owners = sched.scripts.len();
    let rt = DimmunixRuntime::builder()
        .shards(1)
        .deadlock_policy(DeadlockPolicy::Error)
        .history(history)
        .build();
    let ex = Executor::new_in(&rt, 2);
    let coord = Rc::new(RefCell::new(Coord {
        at_turn: vec![false; owners],
        granted: vec![false; owners],
        wakers: vec![None; owners],
        events: Vec::new(),
        completed: vec![false; owners],
        dead: vec![false; owners],
    }));
    let locks: Rc<Vec<Mutex<u64>>> =
        Rc::new((0..sched.locks).map(|_| Mutex::new_in(&rt, 0)).collect());
    for (o, script) in sched.scripts.iter().enumerate() {
        let script = script.clone();
        let coord = Rc::clone(&coord);
        let locks = Rc::clone(&locks);
        ex.spawn(async move {
            let locks = &*locks;
            let mut held: Vec<(usize, MutexGuard<'_, u64>)> = Vec::new();
            for (i, &op) in script.iter().enumerate() {
                Turn {
                    coord: Rc::clone(&coord),
                    me: o,
                }
                .await;
                match op {
                    Op::Lock(l) => match locks[l].lock_at(subject_site(o, i)).await {
                        Ok(g) => {
                            coord.borrow_mut().events.push(Ev::Acquired(o, i));
                            held.push((l, g));
                        }
                        Err(LockError::WouldDeadlock { .. }) => {
                            // Refused: drop guards in acquisition order and
                            // end the task (the executor retires it).
                            held.clear();
                            let mut c = coord.borrow_mut();
                            c.events.push(Ev::Refused(o, i));
                            c.dead[o] = true;
                            return;
                        }
                        Err(e) => panic!("unexpected lock error: {e}"),
                    },
                    Op::Unlock(l) => {
                        let idx = held
                            .iter()
                            .position(|(h, _)| *h == l)
                            .expect("script unlocks only held locks");
                        held.remove(idx);
                        coord.borrow_mut().events.push(Ev::Released(o, i));
                    }
                }
            }
            coord.borrow_mut().completed[o] = true;
        });
    }
    // Park every task at its first turnstile before the schedule starts.
    ex.run();

    let grant = |t: usize| -> bool {
        let waker = {
            let mut c = coord.borrow_mut();
            if !c.at_turn[t] {
                return false;
            }
            c.granted[t] = true;
            c.wakers[t].take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        ex.run();
        true
    };

    let mut tuples = Vec::new();
    for &t in &sched.turns {
        let executed = grant(t);
        tuples.push((executed, stat_tuple_of(&rt)));
    }
    loop {
        let mut progress = false;
        for t in 0..owners {
            if coord.borrow().at_turn[t] {
                grant(t);
                progress = true;
                tuples.push((true, stat_tuple_of(&rt)));
            }
        }
        if !progress {
            break;
        }
    }

    let c = coord.borrow();
    let history = rt.history();
    RunResult {
        tuples,
        events: c.events.clone(),
        history_text: history.to_text(),
        history,
        epoch: rt.history_snapshot().epoch(),
        completed: c.completed.clone(),
        dead: c.dead.clone(),
        stats: stat_tuple_of(&rt),
    }
}

// ---------------------------------------------------------------------------
// The proptest
// ---------------------------------------------------------------------------

fn assert_equiv(seed: u64, phase: &str, sync: &RunResult, subject: &RunResult) {
    assert_eq!(
        sync.tuples.len(),
        subject.tuples.len(),
        "seed {seed} {phase}: turn counts diverge"
    );
    for (i, (a, b)) in sync.tuples.iter().zip(&subject.tuples).enumerate() {
        assert_eq!(a, b, "seed {seed} {phase}: stats diverge at turn {i}");
    }
    assert_eq!(
        sync.events, subject.events,
        "seed {seed} {phase}: event sequences diverge"
    );
    assert_eq!(
        sync.history_text, subject.history_text,
        "seed {seed} {phase}: learned histories diverge"
    );
    assert_eq!(
        sync.epoch, subject.epoch,
        "seed {seed} {phase}: snapshot epochs diverge"
    );
    assert_eq!(
        sync.completed, subject.completed,
        "seed {seed} {phase}: completion sets diverge"
    );
    assert_eq!(
        sync.dead, subject.dead,
        "seed {seed} {phase}: refusal sets diverge"
    );
    assert_eq!(
        sync.stats, subject.stats,
        "seed {seed} {phase}: final stats"
    );
}

#[test]
fn sync_and_async_substrates_agree_across_160_seeds() {
    let mut learned = 0u64;
    let mut replay_yields = 0u64;
    for seed in 0..160u64 {
        let sched = gen_schedule(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));

        // Learning phase: empty history, cycles detected and learned.
        let a_sync = run_oracle(&sched, History::new());
        let a_subject = run_subject(&sched, History::new());
        assert_equiv(seed, "learn", &a_sync, &a_subject);
        learned += a_sync.stats.3;

        // Replay phase: both substrates seeded with the learned history;
        // avoidance yields must appear identically on both sides.
        let b_sync = run_oracle(&sched, a_sync.history.clone());
        let b_subject = run_subject(&sched, a_sync.history.clone());
        assert_equiv(seed, "replay", &b_sync, &b_subject);
        replay_yields += b_sync.stats.2;
    }
    // The sweep must actually exercise the interesting paths: some seeds
    // learn real deadlocks, and replays of those seeds avoid (yield).
    assert!(learned > 0, "no seed produced a deadlock to learn");
    assert!(replay_yields > 0, "no replay exercised avoidance yields");
}
