//! Real-thread stress test for the lock-free admission path (ISSUE 10,
//! satellite 3): OS threads hammer the no-engine fast path while other
//! threads train-and-trip an antibody so avoidance parks and wakes keep
//! flipping the degradation state underneath them.
//!
//! The deterministic schedule proptests pin the *decisions* to the
//! monolithic oracle; this test instead drives the real
//! [`DimmunixRuntime`] hooks from real threads so the admit-vs-park races
//! (seqlock reads racing summary writes, blocker counts rising while an
//! admission is in flight, fast holds being published mid-park) actually
//! happen on hardware. The assertions are the invariants that survive any
//! interleaving: no deadlock is ever detected, every acquisition is matched
//! by a release at quiescence, the parked pair really parks, and the clean
//! sites really take the fast path.

use dimmunix_core::{
    CallStack, Config, Dimmunix, Frame, History, LockId, RequestOutcome, ThreadId,
};
use dimmunix_rt::{AcquisitionSite, DimmunixRuntime};
use std::sync::{Arc, Barrier};
use std::thread;

const FILE: &str = "stress.rs";

fn site(line: u32) -> AcquisitionSite {
    AcquisitionSite::new("stress", FILE, line)
}

/// A site whose [`SiteKey`] provably differs from the trained pattern's.
/// `SiteKey` hashes scope/file plus *relative* line offsets (so uniform
/// line shifts keep antibodies valid), which makes every single-frame
/// `site(n)` above one key — clean sites therefore need their own scopes.
///
/// [`SiteKey`]: dimmunix_core::SiteKey
fn clean_site(scope: &'static str) -> AcquisitionSite {
    AcquisitionSite::new(scope, FILE, 1)
}

/// Trains the AB/BA antibody whose outer sites are lines 10 and 20 of the
/// synthetic stress file, so a runtime seeded with it parks the classic
/// two-lock pattern.
fn trained_history() -> History {
    let mut trainer = Dimmunix::default();
    let stack = |line| CallStack::single(Frame::new("stress", FILE, line));
    let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
    let (la, lb) = (LockId::new(1), LockId::new(2));
    assert!(trainer.request(t1, la, &stack(10)).is_granted());
    trainer.acquired(t1, la);
    assert!(trainer.request(t2, lb, &stack(20)).is_granted());
    trainer.acquired(t2, lb);
    assert!(trainer.request(t1, lb, &stack(11)).is_granted());
    assert!(matches!(
        trainer.request(t2, la, &stack(21)),
        RequestOutcome::DeadlockDetected { .. }
    ));
    trainer.history().clone()
}

/// One hot iteration count; every iteration forces at least one avoidance
/// park deterministically (barriers order the two hot threads into the
/// trained pattern).
const HOT_ITERS: usize = 30;
/// Clean fast-path iterations per hammer thread.
const CLEAN_ITERS: usize = 1500;
/// Number of clean hammer threads.
const CLEAN_THREADS: usize = 3;

struct Totals {
    yields: u64,
    deadlocks: u64,
    acquisitions: u64,
    releases: u64,
    fast_admits: u64,
    published: u64,
}

/// Runs the mixed workload on a fresh runtime and returns the quiescent
/// counters. `lock_free`: whether the no-engine admission path is enabled.
fn run_workload(lock_free: bool) -> Totals {
    let rt = DimmunixRuntime::builder()
        .config(Config::builder().lock_free_admission(lock_free).build())
        .shards(4)
        .history(trained_history())
        .build();

    let lock_a = rt.allocate_lock();
    let lock_b = rt.allocate_lock();
    // Barriers sequence the hot pair into the trained pattern: b1 releases
    // the inner-lock requester only once the outer lock is held, b2 closes
    // the iteration once both have drained.
    let b1 = Arc::new(Barrier::new(2));
    let b2 = Arc::new(Barrier::new(2));

    let mut handles = Vec::new();

    // Hot thread 1: the outer-lock holder of the trained pattern.
    {
        let rt = Arc::clone(&rt);
        let (b1, b2) = (Arc::clone(&b1), Arc::clone(&b2));
        handles.push(thread::spawn(move || {
            for _ in 0..HOT_ITERS {
                // Only the hot pair ever yields, so the counter isolates the
                // partner's park below.
                let seen = rt.stats().yields;
                rt.before_acquire(lock_a, site(10)).unwrap();
                rt.after_acquire(lock_a);
                b1.wait();
                // Hold the outer lock until the partner has demonstrably
                // parked on the antibody: while this thread occupies the
                // first outer site the engine must answer the second outer
                // site with a yield, so every iteration exercises a real
                // park/wake cycle even when one CPU serializes the pair.
                while rt.stats().yields <= seen {
                    thread::yield_now();
                }
                rt.before_acquire(lock_b, site(11)).unwrap();
                rt.after_acquire(lock_b);
                rt.before_release(lock_b);
                rt.before_release(lock_a);
                b2.wait();
            }
            rt.retire_current_thread();
        }));
    }

    // Hot thread 2: requests the second outer site while the first is
    // occupied, so the engine parks it (signature instantiation) until hot
    // thread 1 releases.
    {
        let rt = Arc::clone(&rt);
        let (b1, b2) = (Arc::clone(&b1), Arc::clone(&b2));
        handles.push(thread::spawn(move || {
            for _ in 0..HOT_ITERS {
                b1.wait();
                rt.before_acquire(lock_b, site(20)).unwrap();
                rt.after_acquire(lock_b);
                rt.before_release(lock_b);
                b2.wait();
            }
            rt.retire_current_thread();
        }));
    }

    // Clean hammer threads: private locks at sites no history signature
    // mentions, racing their lock-free admissions against the park/wake
    // churn above.
    for i in 0..CLEAN_THREADS {
        let rt = Arc::clone(&rt);
        let lock = rt.allocate_lock();
        handles.push(thread::spawn(move || {
            let s = clean_site(["clean.a", "clean.b", "clean.c"][i]);
            for _ in 0..CLEAN_ITERS {
                rt.before_acquire(lock, s).unwrap();
                rt.after_acquire(lock);
                rt.before_release(lock);
            }
            rt.retire_current_thread();
        }));
    }

    // Nesting thread: a fast-admitted hold followed by a second clean
    // acquisition, so the slow path must publish the fast hold into the
    // engine while parks may be in flight.
    {
        let rt = Arc::clone(&rt);
        let c1 = rt.allocate_lock();
        let c2 = rt.allocate_lock();
        handles.push(thread::spawn(move || {
            for _ in 0..CLEAN_ITERS / 3 {
                rt.before_acquire(c1, clean_site("nest.outer")).unwrap();
                rt.after_acquire(c1);
                rt.before_acquire(c2, clean_site("nest.inner")).unwrap();
                rt.after_acquire(c2);
                rt.before_release(c2);
                rt.before_release(c1);
            }
            rt.retire_current_thread();
        }));
    }

    for h in handles {
        h.join().unwrap();
    }

    let stats = rt.stats();
    let summary = rt.admission_summary();
    Totals {
        yields: stats.yields,
        deadlocks: stats.deadlocks_detected,
        acquisitions: stats.acquisitions,
        releases: stats.releases,
        fast_admits: summary.fast_admits(),
        published: summary.published(),
    }
}

#[test]
fn fast_admissions_race_parks_without_divergence() {
    let t = run_workload(true);
    assert_eq!(
        t.deadlocks, 0,
        "avoidance must keep the pattern deadlock-free"
    );
    assert_eq!(
        t.acquisitions, t.releases,
        "every acquisition matched by a release at quiescence"
    );
    assert!(
        t.yields >= HOT_ITERS as u64,
        "every hot iteration parks at least once (got {} yields)",
        t.yields
    );
    assert!(
        t.fast_admits > 0,
        "clean sites must take the no-engine fast path"
    );
    assert!(
        t.published > 0,
        "the nesting thread must publish fast holds through the slow path"
    );
}

#[test]
fn disabled_fast_path_keeps_the_same_invariants() {
    let t = run_workload(false);
    assert_eq!(t.deadlocks, 0);
    assert_eq!(t.acquisitions, t.releases);
    assert!(t.yields >= HOT_ITERS as u64);
    assert_eq!(t.fast_admits, 0, "knob off: no lock-free admissions");
    assert_eq!(t.published, 0);
}
