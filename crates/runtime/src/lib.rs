//! # dimmunix-rt — deadlock immunity for real Rust threads
//!
//! The paper injects Dimmunix into the Dalvik VM so that *every* monitor
//! operation on the platform is screened. Rust has no such interposition
//! point (there is no way to hook `std::sync::Mutex` from a library), so this
//! crate provides the closest practical substitute: **wrapper lock types**.
//! [`ImmuneMutex`] and [`ImmuneMonitor`] behave like their `parking_lot`
//! counterparts but route every acquisition and release through a shared
//! [`DimmunixRuntime`] — one instance per process, mirroring the per-process
//! Dimmunix data of Figure 1. Call-stack retrieval is replaced by the static
//! acquisition-site ids the paper itself proposes as an optimization (§4):
//! the [`acquire_site!`] macro captures `file!()`/`line!()` at compile time.
//!
//! With that in place the behaviour matches the paper: the first occurrence
//! of a deadlock is detected and its signature persisted; subsequent runs
//! park one of the threads just long enough that the signature can no longer
//! be instantiated.
//!
//! ```
//! use dimmunix_rt::{acquire_site, DimmunixRuntime, ImmuneMutex};
//! use std::sync::Arc;
//!
//! let runtime = DimmunixRuntime::new();
//! let balance = Arc::new(ImmuneMutex::new(&runtime, 100i64));
//! let b = balance.clone();
//! let t = std::thread::spawn(move || {
//!     *b.lock(acquire_site!()).unwrap() -= 30;
//! });
//! t.join().unwrap();
//! assert_eq!(*balance.lock(acquire_site!())?, 70);
//! # Ok::<(), dimmunix_rt::LockError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod monitor;
mod mutex;
mod runtime;
mod site;
mod sync;

pub use monitor::{ImmuneMonitor, MonitorGuard};
pub use mutex::{ImmuneMutex, ImmuneMutexGuard};
pub use runtime::{DeadlockPolicy, DimmunixRuntime, LockError, RuntimeOptions};
pub use site::AcquisitionSite;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use dimmunix_core::{Config, SignatureKind};
    use std::sync::Arc;
    use std::time::Duration;

    /// End-to-end "immunity develops" test on real threads: run 1 produces a
    /// deadlock (detected, recorded); run 2 with the recorded history
    /// completes.
    #[test]
    fn real_threads_learn_and_avoid_ab_ba() {
        let site_a_outer = AcquisitionSite::new("transfer.a_to_b", "bank.rs", 10);
        let site_a_inner = AcquisitionSite::new("transfer.a_to_b.inner", "bank.rs", 11);
        let site_b_outer = AcquisitionSite::new("transfer.b_to_a", "bank.rs", 20);
        let site_b_inner = AcquisitionSite::new("transfer.b_to_a.inner", "bank.rs", 21);

        // --- Run 1: provoke the deadlock deterministically. ---------------
        let rt = DimmunixRuntime::with_options(RuntimeOptions {
            config: Config::default(),
            deadlock_policy: DeadlockPolicy::Error,
        });
        let a = Arc::new(ImmuneMutex::new(&rt, 0i64));
        let b = Arc::new(ImmuneMutex::new(&rt, 0i64));

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock(site_a_outer)?;
            bar1.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _gb = b1.lock(site_a_inner)?;
            Ok(())
        });
        let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            let _gb = b2.lock(site_b_outer)?;
            bar2.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _ga = a2.lock(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must produce a detected deadlock"
        );
        let history = rt.history();
        assert_eq!(history.len(), 1);
        assert_eq!(
            history.iter().next().unwrap().1.kind(),
            SignatureKind::Deadlock
        );

        // --- Run 2: same lock order, antibody loaded -> completes. --------
        // (No barrier here: with immunity one thread may legitimately be
        // parked before reaching a barrier, so the threads are staggered by
        // sleeps instead; whichever reaches its outer position second is
        // parked until the first finishes.)
        let rt = DimmunixRuntime::with_history(
            RuntimeOptions {
                config: Config::default(),
                deadlock_policy: DeadlockPolicy::Error,
            },
            history,
        );
        let a = Arc::new(ImmuneMutex::new(&rt, 0i64));
        let b = Arc::new(ImmuneMutex::new(&rt, 0i64));
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock(site_a_outer)?;
            std::thread::sleep(Duration::from_millis(80));
            let _gb = b1.lock(site_a_inner)?;
            Ok(())
        });
        let (a2, b2) = (a.clone(), b.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            std::thread::sleep(Duration::from_millis(20));
            let _gb = b2.lock(site_b_outer)?;
            std::thread::sleep(Duration::from_millis(10));
            let _ga = a2.lock(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DimmunixRuntime>();
        assert_send_sync::<ImmuneMutex<Vec<u8>>>();
        assert_send_sync::<ImmuneMonitor<Vec<u8>>>();
        assert_send_sync::<LockError>();
    }
}
