//! # dimmunix-rt — deadlock immunity for real Rust threads
//!
//! The paper injects Dimmunix into the Dalvik VM so that *every* monitor
//! operation on the platform is screened. Rust has no such interposition
//! point (there is no way to hook `std::sync::Mutex` from a library), so this
//! crate provides the closest practical substitute: **wrapper lock types**.
//! [`ImmuneMutex`] and [`ImmuneMonitor`] behave like their `parking_lot`
//! counterparts but route every acquisition and release through a shared
//! [`DimmunixRuntime`] — one instance per process, mirroring the per-process
//! Dimmunix data of Figure 1. Call-stack retrieval is replaced by the static
//! acquisition-site ids the paper itself proposes as an optimization (§4):
//! the [`acquire_site!`] macro captures `file!()`/`line!()` at compile time.
//!
//! With that in place the behaviour matches the paper: the first occurrence
//! of a deadlock is detected and its signature persisted; subsequent runs
//! park one of the threads just long enough that the signature can no longer
//! be instantiated.
//!
//! ```
//! use dimmunix_rt::{acquire_site, DimmunixRuntime, ImmuneMutex};
//! use std::sync::Arc;
//!
//! let runtime = DimmunixRuntime::new();
//! let balance = Arc::new(ImmuneMutex::new(&runtime, 100i64));
//! let b = balance.clone();
//! let t = std::thread::spawn(move || {
//!     *b.lock(acquire_site!()).unwrap() -= 30;
//! });
//! t.join().unwrap();
//! assert_eq!(*balance.lock(acquire_site!())?, 70);
//! # Ok::<(), dimmunix_rt::LockError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod monitor;
mod mutex;
mod runtime;
mod site;
mod sync;

pub use monitor::{ImmuneMonitor, MonitorGuard};
pub use mutex::{ImmuneMutex, ImmuneMutexGuard};
pub use runtime::{DeadlockPolicy, DimmunixRuntime, LockError, RuntimeOptions};
pub use site::AcquisitionSite;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use dimmunix_core::{Config, SignatureKind};
    use std::sync::Arc;
    use std::time::Duration;

    /// End-to-end "immunity develops" test on real threads: run 1 produces a
    /// deadlock (detected, recorded); run 2 with the recorded history
    /// completes.
    #[test]
    fn real_threads_learn_and_avoid_ab_ba() {
        let site_a_outer = AcquisitionSite::new("transfer.a_to_b", "bank.rs", 10);
        let site_a_inner = AcquisitionSite::new("transfer.a_to_b.inner", "bank.rs", 11);
        let site_b_outer = AcquisitionSite::new("transfer.b_to_a", "bank.rs", 20);
        let site_b_inner = AcquisitionSite::new("transfer.b_to_a.inner", "bank.rs", 21);

        // --- Run 1: provoke the deadlock deterministically. ---------------
        let rt = DimmunixRuntime::with_options(RuntimeOptions {
            config: Config::default(),
            deadlock_policy: DeadlockPolicy::Error,
            ..RuntimeOptions::default()
        });
        let a = Arc::new(ImmuneMutex::new(&rt, 0i64));
        let b = Arc::new(ImmuneMutex::new(&rt, 0i64));

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock(site_a_outer)?;
            bar1.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _gb = b1.lock(site_a_inner)?;
            Ok(())
        });
        let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            let _gb = b2.lock(site_b_outer)?;
            bar2.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _ga = a2.lock(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must produce a detected deadlock"
        );
        let history = rt.history();
        assert_eq!(history.len(), 1);
        assert_eq!(
            history.iter().next().unwrap().1.kind(),
            SignatureKind::Deadlock
        );

        // --- Run 2: same lock order, antibody loaded -> completes. --------
        // (No barrier here: with immunity one thread may legitimately be
        // parked before reaching a barrier, so the threads are staggered by
        // sleeps instead; whichever reaches its outer position second is
        // parked until the first finishes.)
        let rt = DimmunixRuntime::with_history(
            RuntimeOptions {
                config: Config::default(),
                deadlock_policy: DeadlockPolicy::Error,
                ..RuntimeOptions::default()
            },
            history,
        );
        let a = Arc::new(ImmuneMutex::new(&rt, 0i64));
        let b = Arc::new(ImmuneMutex::new(&rt, 0i64));
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock(site_a_outer)?;
            std::thread::sleep(Duration::from_millis(80));
            let _gb = b1.lock(site_a_inner)?;
            Ok(())
        });
        let (a2, b2) = (a.clone(), b.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            std::thread::sleep(Duration::from_millis(20));
            let _gb = b2.lock(site_b_outer)?;
            std::thread::sleep(Duration::from_millis(10));
            let _ga = a2.lock(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DimmunixRuntime>();
        assert_send_sync::<ImmuneMutex<Vec<u8>>>();
        assert_send_sync::<ImmuneMonitor<Vec<u8>>>();
        assert_send_sync::<LockError>();
    }

    /// Allocates immune mutexes until two of them live on different shards
    /// of `rt`, and returns that pair.
    fn cross_shard_pair(rt: &Arc<DimmunixRuntime>) -> (ImmuneMutex<u64>, ImmuneMutex<u64>) {
        let first = ImmuneMutex::new(rt, 0u64);
        let home = rt.shard_of(first.lock_id());
        for _ in 0..64 {
            let other = ImmuneMutex::new(rt, 0u64);
            if rt.shard_of(other.lock_id()) != home {
                return (first, other);
            }
        }
        panic!("router failed to spread 64 sequential lock ids over shards");
    }

    /// Cross-shard detection: the AB/BA cycle where A and B live on
    /// different engine shards must be detected through the multi-shard
    /// snapshot path, recorded once, and avoided on the replay.
    #[test]
    fn cross_shard_deadlock_is_detected_and_avoided() {
        let site_a_outer = AcquisitionSite::new("xs.a_outer", "xs.rs", 10);
        let site_a_inner = AcquisitionSite::new("xs.a_inner", "xs.rs", 11);
        let site_b_outer = AcquisitionSite::new("xs.b_outer", "xs.rs", 20);
        let site_b_inner = AcquisitionSite::new("xs.b_inner", "xs.rs", 21);
        let options = || RuntimeOptions {
            config: Config::default(),
            deadlock_policy: DeadlockPolicy::Error,
            shards: 4,
        };

        // --- Run 1: provoke the cross-shard deadlock deterministically. ---
        let rt = DimmunixRuntime::with_options(options());
        let (a, b) = cross_shard_pair(&rt);
        assert_ne!(
            rt.shard_of(a.lock_id()),
            rt.shard_of(b.lock_id()),
            "the cycle must span two shards"
        );
        let a = Arc::new(a);
        let b = Arc::new(b);

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock(site_a_outer)?;
            bar1.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _gb = b1.lock(site_a_inner)?;
            Ok(())
        });
        let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            let _gb = b2.lock(site_b_outer)?;
            bar2.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _ga = a2.lock(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must produce a detected cross-shard deadlock"
        );
        let history = rt.history();
        assert_eq!(history.len(), 1);
        assert_eq!(rt.stats().deadlocks_detected, 1);

        // --- Run 2: antibody loaded, staggered replay completes. ----------
        let rt = DimmunixRuntime::with_history(options(), history);
        let (a, b) = cross_shard_pair(&rt);
        let a = Arc::new(a);
        let b = Arc::new(b);
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock(site_a_outer)?;
            std::thread::sleep(Duration::from_millis(80));
            let _gb = b1.lock(site_a_inner)?;
            Ok(())
        });
        let (a2, b2) = (a.clone(), b.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            std::thread::sleep(Duration::from_millis(20));
            let _gb = b2.lock(site_b_outer)?;
            std::thread::sleep(Duration::from_millis(10));
            let _ga = a2.lock(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    /// Cross-shard stress: several threads hammer the trained AB/BA pattern
    /// (with A and B on different shards) from both directions, with the
    /// antibody pre-loaded. Immunity must hold in the liveness sense — the
    /// workload completes instead of freezing — with every refused
    /// acquisition backed off and retried.
    #[test]
    fn cross_shard_stress_immunity_holds_after_replay() {
        let site_fwd_outer = AcquisitionSite::new("stress.fwd_outer", "stress.rs", 1);
        let site_fwd_inner = AcquisitionSite::new("stress.fwd_inner", "stress.rs", 2);
        let site_rev_outer = AcquisitionSite::new("stress.rev_outer", "stress.rs", 3);
        let site_rev_inner = AcquisitionSite::new("stress.rev_inner", "stress.rs", 4);

        // Train the antibody pair once: both directions of the inversion.
        let trained = dimmunix_core::Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![
                dimmunix_core::SignaturePair::new(
                    site_fwd_outer.to_call_stack(),
                    site_fwd_inner.to_call_stack(),
                ),
                dimmunix_core::SignaturePair::new(
                    site_rev_outer.to_call_stack(),
                    site_rev_inner.to_call_stack(),
                ),
            ],
        );

        let rt = DimmunixRuntime::with_options(RuntimeOptions {
            config: Config::default(),
            deadlock_policy: DeadlockPolicy::Error,
            shards: 8,
        });
        rt.add_signature(trained);
        let (a, b) = cross_shard_pair(&rt);
        let a = Arc::new(a);
        let b = Arc::new(b);

        const WORKERS: usize = 4;
        const ITERS: usize = 60;
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let (a, b) = (a.clone(), b.clone());
            handles.push(std::thread::spawn(move || -> u64 {
                let forward = w % 2 == 0;
                let mut completed = 0u64;
                for _ in 0..ITERS {
                    // Retry on WouldDeadlock: back off (drop everything held)
                    // and try again — the fail-safe client pattern.
                    loop {
                        let result = if forward {
                            a.lock(site_fwd_outer).and_then(|ga| {
                                let gb = b.lock(site_fwd_inner)?;
                                drop(gb);
                                drop(ga);
                                Ok(())
                            })
                        } else {
                            b.lock(site_rev_outer).and_then(|gb| {
                                let ga = a.lock(site_rev_inner)?;
                                drop(ga);
                                drop(gb);
                                Ok(())
                            })
                        };
                        match result {
                            Ok(()) => break,
                            Err(LockError::WouldDeadlock { .. }) => {
                                std::thread::yield_now();
                            }
                        }
                    }
                    completed += 1;
                }
                completed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // The strong assertion is completion itself: with plain mutexes this
        // workload deadlocks almost immediately. Every section finished, and
        // the avoidance machinery (not luck) did the serializing.
        assert_eq!(total, (WORKERS * ITERS) as u64);
        let stats = rt.stats();
        // Every acquisition at the trained outer sites runs the avoidance
        // check against the antibody (yields/detections themselves are
        // schedule-dependent — a fully serialized schedule needs none).
        assert!(
            stats.instantiation_checks > 0 && stats.signatures_examined > 0,
            "the trained sites must have exercised the avoidance index: {stats}"
        );
        assert_eq!(
            stats.acquisitions, stats.releases,
            "every completed section must balance: {stats}"
        );
    }
}
