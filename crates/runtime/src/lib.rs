//! # dimmunix-rt — deadlock immunity for real Rust threads
//!
//! The paper injects Dimmunix into the Dalvik VM so that *every* monitor
//! operation on the platform is screened, with no application changes. Rust
//! has no such interposition point (a library cannot hook
//! `std::sync::Mutex`), so this crate provides the closest practical
//! substitute: **drop-in wrapper lock types**. [`ImmuneMutex`],
//! [`ImmuneRwLock`], and [`ImmuneMonitor`] mirror their `std::sync`
//! counterparts but route every acquisition and release through the
//! process-global [`DimmunixRuntime`] — one instance per process, mirroring
//! the per-process Dimmunix data of Figure 1.
//!
//! Migration from `std::sync` is mechanical:
//!
//! * `Mutex::new(v)` → [`ImmuneMutex::new(v)`](ImmuneMutex::new) — no
//!   runtime argument; the lock attaches to [`DimmunixRuntime::global`].
//! * `m.lock().unwrap()` → `m.lock()?` — acquisition sites are captured
//!   implicitly: the methods are `#[track_caller]`, so the engine sees the
//!   file/line of the call itself (the compiler-provided static identifier
//!   the paper proposes in §4, replacing `dvmGetCallStack`).
//! * handle [`LockError::WouldDeadlock`] where the program would previously
//!   have hung — back off, drop what you hold, retry.
//!
//! The global runtime is configured (shards, [`DeadlockPolicy`], history
//! path, fsync policy) with the fluent [`RuntimeBuilder`] before first use;
//! multi-runtime tests and the paper experiments keep full determinism with
//! the explicit surface: [`ImmuneMutex::new_in`], the `*_at` acquisition
//! variants, and [`acquire_site!`].
//!
//! With that in place the behaviour matches the paper: the first occurrence
//! of a deadlock is detected and its signature persisted; subsequent runs
//! park one of the threads just long enough that the signature can no longer
//! be instantiated.
//!
//! ```
//! use dimmunix_rt::ImmuneMutex;
//! use std::sync::Arc;
//!
//! let balance = Arc::new(ImmuneMutex::new(100i64));
//! let b = balance.clone();
//! let t = std::thread::spawn(move || {
//!     *b.lock().unwrap() -= 30;
//! });
//! t.join().unwrap();
//! assert_eq!(*balance.lock()?, 70);
//! # Ok::<(), dimmunix_rt::LockError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asyncio;
mod exchange;
mod monitor;
mod mutex;
mod runtime;
mod rwlock;
mod site;
mod sync;

pub use dimmunix_core::RecoveryReport;
pub use exchange::{ExchangeOptions, ExchangeStats};
pub use monitor::{ImmuneMonitor, MonitorGuard};
pub use mutex::{ImmuneMutex, ImmuneMutexGuard};
pub use runtime::{
    DeadlockPolicy, DimmunixRuntime, GlobalAlreadyInstalled, LockError, RuntimeBuilder,
    RuntimeOptions, TaskAcquire,
};
pub use rwlock::{ImmuneRwLock, ImmuneRwLockReadGuard, ImmuneRwLockWriteGuard};
pub use site::{AcquisitionSite, CALLER_SCOPE};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use dimmunix_core::{Config, SignatureKind};
    use std::sync::Arc;
    use std::time::Duration;

    /// End-to-end "immunity develops" test on real threads: run 1 produces a
    /// deadlock (detected, recorded); run 2 with the recorded history
    /// completes.
    #[test]
    fn real_threads_learn_and_avoid_ab_ba() {
        let site_a_outer = AcquisitionSite::new("transfer.a_to_b", "bank.rs", 10);
        let site_a_inner = AcquisitionSite::new("transfer.a_to_b.inner", "bank.rs", 11);
        let site_b_outer = AcquisitionSite::new("transfer.b_to_a", "bank.rs", 20);
        let site_b_inner = AcquisitionSite::new("transfer.b_to_a.inner", "bank.rs", 21);

        // --- Run 1: provoke the deadlock deterministically. ---------------
        let rt = DimmunixRuntime::builder()
            .config(Config::default())
            .deadlock_policy(DeadlockPolicy::Error)
            .build();
        let a = Arc::new(ImmuneMutex::new_in(&rt, 0i64));
        let b = Arc::new(ImmuneMutex::new_in(&rt, 0i64));

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock_at(site_a_outer)?;
            bar1.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _gb = b1.lock_at(site_a_inner)?;
            Ok(())
        });
        let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            let _gb = b2.lock_at(site_b_outer)?;
            bar2.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _ga = a2.lock_at(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must produce a detected deadlock"
        );
        // The refusal names the antibody and the refused call site — what a
        // fail-safe retry loop would log.
        if let Some(LockError::WouldDeadlock { lock, site, .. }) =
            r1.as_ref().err().or(r2.as_ref().err())
        {
            assert!(*lock == a.lock_id() || *lock == b.lock_id());
            assert_eq!(site.file, "bank.rs");
        }
        let history = rt.history();
        assert_eq!(history.len(), 1);
        assert_eq!(
            history.iter().next().unwrap().1.kind(),
            SignatureKind::Deadlock
        );

        // --- Run 2: same lock order, antibody loaded -> completes. --------
        // (No barrier here: with immunity one thread may legitimately be
        // parked before reaching a barrier, so the threads are staggered by
        // sleeps instead; whichever reaches its outer position second is
        // parked until the first finishes.)
        let rt = DimmunixRuntime::builder()
            .config(Config::default())
            .deadlock_policy(DeadlockPolicy::Error)
            .history(history)
            .build();
        let a = Arc::new(ImmuneMutex::new_in(&rt, 0i64));
        let b = Arc::new(ImmuneMutex::new_in(&rt, 0i64));
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock_at(site_a_outer)?;
            std::thread::sleep(Duration::from_millis(80));
            let _gb = b1.lock_at(site_a_inner)?;
            Ok(())
        });
        let (a2, b2) = (a.clone(), b.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            std::thread::sleep(Duration::from_millis(20));
            let _gb = b2.lock_at(site_b_outer)?;
            std::thread::sleep(Duration::from_millis(10));
            let _ga = a2.lock_at(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    /// The same learn-then-avoid behaviour through the **implicit-site**
    /// drop-in API: no `acquire_site!`, no `lock_at` — the sites are the
    /// source locations of the `lock()` calls inside the two transfer
    /// helpers, which are identical across the learn run and the avoid run
    /// because both runs execute the same code.
    #[test]
    fn implicit_sites_learn_and_avoid_ab_ba() {
        fn forward(
            a: &Arc<ImmuneMutex<i64>>,
            b: &Arc<ImmuneMutex<i64>>,
            hold: Duration,
        ) -> Result<(), LockError> {
            let _ga = a.lock()?;
            std::thread::sleep(hold);
            let _gb = b.lock()?;
            Ok(())
        }
        fn backward(
            a: &Arc<ImmuneMutex<i64>>,
            b: &Arc<ImmuneMutex<i64>>,
            hold: Duration,
        ) -> Result<(), LockError> {
            let _gb = b.lock()?;
            std::thread::sleep(hold);
            let _ga = a.lock()?;
            Ok(())
        }
        let run = |rt: &Arc<DimmunixRuntime>| {
            let a = Arc::new(ImmuneMutex::new_in(rt, 0i64));
            let b = Arc::new(ImmuneMutex::new_in(rt, 0i64));
            let (a1, b1) = (a.clone(), b.clone());
            let t1 = std::thread::spawn(move || forward(&a1, &b1, Duration::from_millis(60)));
            let (a2, b2) = (a.clone(), b.clone());
            let t2 = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                backward(&a2, &b2, Duration::from_millis(60))
            });
            (t1.join().unwrap(), t2.join().unwrap())
        };

        // Run 1: learn.
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .build();
        let (r1, r2) = run(&rt);
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must deadlock: {r1:?} {r2:?}"
        );
        let history = rt.history();
        assert_eq!(history.len(), 1);
        // The implicit sites point at this very file.
        if let Some(Err(LockError::WouldDeadlock { site, .. })) =
            [r1, r2].into_iter().find(|r| r.is_err())
        {
            assert!(site.file.ends_with("lib.rs"), "site: {site}");
            assert_eq!(site.scope, CALLER_SCOPE);
        }

        // Run 2: the same code with the antibody loaded completes.
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .history(history)
            .build();
        let (r1, r2) = run(&rt);
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    /// Writer/writer inversion across two `ImmuneRwLock`s, implicit sites:
    /// detected once, avoided on the replay — the reader-writer scenario
    /// family goes through the same engine path as monitors.
    #[test]
    fn rwlock_writer_writer_inversion_learns_and_avoids() {
        fn forward(
            a: &Arc<ImmuneRwLock<u32>>,
            b: &Arc<ImmuneRwLock<u32>>,
            hold: Duration,
        ) -> Result<(), LockError> {
            let mut ga = a.write()?;
            std::thread::sleep(hold);
            let gb = b.read()?;
            *ga += *gb;
            Ok(())
        }
        fn backward(
            a: &Arc<ImmuneRwLock<u32>>,
            b: &Arc<ImmuneRwLock<u32>>,
            hold: Duration,
        ) -> Result<(), LockError> {
            let mut gb = b.write()?;
            std::thread::sleep(hold);
            let ga = a.read()?;
            *gb += *ga;
            Ok(())
        }
        let run = |rt: &Arc<DimmunixRuntime>| {
            let a = Arc::new(ImmuneRwLock::new_in(rt, 1u32));
            let b = Arc::new(ImmuneRwLock::new_in(rt, 1u32));
            let (a1, b1) = (a.clone(), b.clone());
            let t1 = std::thread::spawn(move || forward(&a1, &b1, Duration::from_millis(60)));
            let (a2, b2) = (a.clone(), b.clone());
            let t2 = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                backward(&a2, &b2, Duration::from_millis(60))
            });
            (t1.join().unwrap(), t2.join().unwrap())
        };

        // Run 1: the write/read inversion deadlocks and is detected.
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .build();
        let (r1, r2) = run(&rt);
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must deadlock: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 1);
        let history = rt.history();
        assert_eq!(history.len(), 1);

        // Run 2: antibody loaded, the same code completes.
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .history(history)
            .build();
        let (r1, r2) = run(&rt);
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DimmunixRuntime>();
        assert_send_sync::<ImmuneMutex<Vec<u8>>>();
        assert_send_sync::<ImmuneRwLock<Vec<u8>>>();
        assert_send_sync::<ImmuneMonitor<Vec<u8>>>();
        assert_send_sync::<LockError>();
    }

    /// Allocates immune mutexes until two of them live on different shards
    /// of `rt`, and returns that pair.
    fn cross_shard_pair(rt: &Arc<DimmunixRuntime>) -> (ImmuneMutex<u64>, ImmuneMutex<u64>) {
        let first = ImmuneMutex::new_in(rt, 0u64);
        let home = rt.shard_of(first.lock_id());
        for _ in 0..64 {
            let other = ImmuneMutex::new_in(rt, 0u64);
            if rt.shard_of(other.lock_id()) != home {
                return (first, other);
            }
        }
        panic!("router failed to spread 64 sequential lock ids over shards");
    }

    /// Cross-shard detection: the AB/BA cycle where A and B live on
    /// different engine shards must be detected through the multi-shard
    /// snapshot path, recorded once, and avoided on the replay.
    #[test]
    fn cross_shard_deadlock_is_detected_and_avoided() {
        let site_a_outer = AcquisitionSite::new("xs.a_outer", "xs.rs", 10);
        let site_a_inner = AcquisitionSite::new("xs.a_inner", "xs.rs", 11);
        let site_b_outer = AcquisitionSite::new("xs.b_outer", "xs.rs", 20);
        let site_b_inner = AcquisitionSite::new("xs.b_inner", "xs.rs", 21);
        let builder = || {
            DimmunixRuntime::builder()
                .deadlock_policy(DeadlockPolicy::Error)
                .shards(4)
        };

        // --- Run 1: provoke the cross-shard deadlock deterministically. ---
        let rt = builder().build();
        let (a, b) = cross_shard_pair(&rt);
        assert_ne!(
            rt.shard_of(a.lock_id()),
            rt.shard_of(b.lock_id()),
            "the cycle must span two shards"
        );
        let a = Arc::new(a);
        let b = Arc::new(b);

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (a1, b1, bar1) = (a.clone(), b.clone(), barrier.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock_at(site_a_outer)?;
            bar1.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _gb = b1.lock_at(site_a_inner)?;
            Ok(())
        });
        let (a2, b2, bar2) = (a.clone(), b.clone(), barrier.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            let _gb = b2.lock_at(site_b_outer)?;
            bar2.wait();
            std::thread::sleep(Duration::from_millis(30));
            let _ga = a2.lock_at(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "the adversarial schedule must produce a detected cross-shard deadlock"
        );
        let history = rt.history();
        assert_eq!(history.len(), 1);
        assert_eq!(rt.stats().deadlocks_detected, 1);

        // --- Run 2: antibody loaded, staggered replay completes. ----------
        let rt = builder().history(history).build();
        let (a, b) = cross_shard_pair(&rt);
        let a = Arc::new(a);
        let b = Arc::new(b);
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _ga = a1.lock_at(site_a_outer)?;
            std::thread::sleep(Duration::from_millis(80));
            let _gb = b1.lock_at(site_a_inner)?;
            Ok(())
        });
        let (a2, b2) = (a.clone(), b.clone());
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            std::thread::sleep(Duration::from_millis(20));
            let _gb = b2.lock_at(site_b_outer)?;
            std::thread::sleep(Duration::from_millis(10));
            let _ga = a2.lock_at(site_b_inner)?;
            Ok(())
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_ok() && r2.is_ok(),
            "replay must complete: {r1:?} {r2:?}"
        );
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    /// Cross-shard stress: several threads hammer the trained AB/BA pattern
    /// (with A and B on different shards) from both directions, with the
    /// antibody pre-loaded. Immunity must hold in the liveness sense — the
    /// workload completes instead of freezing — with every refused
    /// acquisition backed off and retried.
    #[test]
    fn cross_shard_stress_immunity_holds_after_replay() {
        let site_fwd_outer = AcquisitionSite::new("stress.fwd_outer", "stress.rs", 1);
        let site_fwd_inner = AcquisitionSite::new("stress.fwd_inner", "stress.rs", 2);
        let site_rev_outer = AcquisitionSite::new("stress.rev_outer", "stress.rs", 3);
        let site_rev_inner = AcquisitionSite::new("stress.rev_inner", "stress.rs", 4);

        // Train the antibody pair once: both directions of the inversion.
        let trained = dimmunix_core::Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![
                dimmunix_core::SignaturePair::new(
                    site_fwd_outer.to_call_stack(),
                    site_fwd_inner.to_call_stack(),
                ),
                dimmunix_core::SignaturePair::new(
                    site_rev_outer.to_call_stack(),
                    site_rev_inner.to_call_stack(),
                ),
            ],
        );

        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .shards(8)
            .build();
        rt.add_signature(trained);
        let (a, b) = cross_shard_pair(&rt);
        let a = Arc::new(a);
        let b = Arc::new(b);

        const WORKERS: usize = 4;
        const ITERS: usize = 60;
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let (a, b) = (a.clone(), b.clone());
            handles.push(std::thread::spawn(move || -> u64 {
                let forward = w % 2 == 0;
                let mut completed = 0u64;
                for _ in 0..ITERS {
                    // Retry on WouldDeadlock: back off (drop everything held)
                    // and try again — the fail-safe client pattern.
                    loop {
                        let result = if forward {
                            a.lock_at(site_fwd_outer).and_then(|ga| {
                                let gb = b.lock_at(site_fwd_inner)?;
                                drop(gb);
                                drop(ga);
                                Ok(())
                            })
                        } else {
                            b.lock_at(site_rev_outer).and_then(|gb| {
                                let ga = a.lock_at(site_rev_inner)?;
                                drop(ga);
                                drop(gb);
                                Ok(())
                            })
                        };
                        match result {
                            Ok(()) => break,
                            Err(LockError::WouldDeadlock { .. }) => {
                                std::thread::yield_now();
                            }
                        }
                    }
                    completed += 1;
                }
                completed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // The strong assertion is completion itself: with plain mutexes this
        // workload deadlocks almost immediately. Every section finished, and
        // the avoidance machinery (not luck) did the serializing.
        assert_eq!(total, (WORKERS * ITERS) as u64);
        let stats = rt.stats();
        // Every acquisition at the trained outer sites runs the avoidance
        // check against the antibody (yields/detections themselves are
        // schedule-dependent — a fully serialized schedule needs none).
        assert!(
            stats.instantiation_checks > 0 && stats.signatures_examined > 0,
            "the trained sites must have exercised the avoidance index: {stats}"
        );
        assert_eq!(
            stats.acquisitions, stats.releases,
            "every completed section must balance: {stats}"
        );
    }
}
