//! The per-process Dimmunix runtime for real OS threads.
//!
//! This is the integration layer of the paper translated to Rust: since Rust
//! has no interposition point on `std::sync::Mutex`, applications opt in by
//! using the wrapper types [`ImmuneMutex`](crate::ImmuneMutex) and
//! [`ImmuneMonitor`](crate::ImmuneMonitor), which call into a shared
//! [`DimmunixRuntime`] before and after every acquisition — exactly where the
//! modified `lockMonitor` / `unlockMonitor` / `waitMonitor` routines call the
//! Dimmunix core (§4).
//!
//! Thread safety follows the paper: the engine is protected by one global
//! lock (cheap, because the three hooks are short); threads parked by
//! avoidance wait on per-signature gates (condition variables) and are woken
//! from the release path.

use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::{
    CallStack, Config, Dimmunix, History, LockId, RequestOutcome, Signature, SignatureId, Stats,
    ThreadId,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What the wrapper types should do when the engine reports that the
/// requested acquisition closes a genuine deadlock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Return [`LockError::WouldDeadlock`] from the acquisition (fail-safe
    /// default for a library: the caller can back off and retry).
    #[default]
    Error,
    /// Block anyway — paper-faithful behaviour: the first occurrence of a
    /// deadlock freezes the threads involved; the signature is already
    /// persisted so the *next* run is immune.
    Block,
}

/// Errors surfaced by the immune lock types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Acquiring would complete a deadlock cycle (and
    /// [`DeadlockPolicy::Error`] is in force). The signature has been added
    /// to the history.
    WouldDeadlock {
        /// The recorded signature.
        signature: SignatureId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::WouldDeadlock { signature } => {
                write!(f, "acquisition would complete deadlock {signature}")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Options controlling a [`DimmunixRuntime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeOptions {
    /// Engine configuration (stack depth, history path, toggles).
    pub config: Config,
    /// Behaviour on detected deadlocks.
    pub deadlock_policy: DeadlockPolicy,
}

#[derive(Default)]
struct SignatureGate {
    lock: Mutex<u64>,
    cv: Condvar,
}

struct EngineState {
    engine: Dimmunix,
    gates: HashMap<SignatureId, Arc<SignatureGate>>,
}

/// The shared, per-process deadlock-immunity runtime.
///
/// One instance per process mirrors the paper's per-process Dimmunix data
/// (Figure 1). Cloning the [`Arc`] and handing it to every `Immune*` lock in
/// the process is the moral equivalent of "all applications automatically run
/// with Dimmunix".
pub struct DimmunixRuntime {
    state: Mutex<EngineState>,
    options: RuntimeOptions,
    /// Globally unique instance id; used to key the per-thread id cache so a
    /// thread interacting with several runtimes gets an id per runtime.
    instance: u64,
    next_thread: AtomicU64,
    next_lock: AtomicU64,
}

static NEXT_RUNTIME_INSTANCE: AtomicU64 = AtomicU64::new(1);

impl fmt::Debug for DimmunixRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DimmunixRuntime")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// Per-OS-thread cache of engine thread ids, keyed by runtime instance.
    static CURRENT_THREAD: std::cell::RefCell<HashMap<u64, ThreadId>> =
        std::cell::RefCell::new(HashMap::new());
}

impl DimmunixRuntime {
    /// Creates a runtime with default options (paper defaults, fail-safe
    /// deadlock policy).
    pub fn new() -> Arc<Self> {
        Self::with_options(RuntimeOptions::default())
    }

    /// Creates a runtime with explicit options.
    pub fn with_options(options: RuntimeOptions) -> Arc<Self> {
        let engine = Dimmunix::new(options.config.clone());
        Arc::new(DimmunixRuntime {
            state: Mutex::new(EngineState {
                engine,
                gates: HashMap::new(),
            }),
            options,
            instance: NEXT_RUNTIME_INSTANCE.fetch_add(1, Ordering::Relaxed),
            next_thread: AtomicU64::new(1),
            next_lock: AtomicU64::new(1),
        })
    }

    /// Creates a runtime pre-loaded with a history (antibodies).
    pub fn with_history(options: RuntimeOptions, history: History) -> Arc<Self> {
        let engine = Dimmunix::with_history(options.config.clone(), history);
        Arc::new(DimmunixRuntime {
            state: Mutex::new(EngineState {
                engine,
                gates: HashMap::new(),
            }),
            options,
            instance: NEXT_RUNTIME_INSTANCE.fetch_add(1, Ordering::Relaxed),
            next_thread: AtomicU64::new(1),
            next_lock: AtomicU64::new(1),
        })
    }

    /// The options this runtime was created with.
    pub fn options(&self) -> &RuntimeOptions {
        &self.options
    }

    /// Identifier of the calling OS thread, registering it on first use (the
    /// analogue of `initNode` on thread allocation).
    pub fn current_thread(&self) -> ThreadId {
        CURRENT_THREAD.with(|cell| {
            if let Some(id) = cell.borrow().get(&self.instance) {
                return *id;
            }
            let id = ThreadId::new(self.next_thread.fetch_add(1, Ordering::Relaxed));
            cell.borrow_mut().insert(self.instance, id);
            sync::lock(&self.state).engine.register_thread(id);
            id
        })
    }

    /// Allocates a lock id for a new immune lock (the analogue of inflating a
    /// monitor and embedding a RAG node).
    pub fn allocate_lock(&self) -> LockId {
        let id = LockId::new(self.next_lock.fetch_add(1, Ordering::Relaxed));
        sync::lock(&self.state).engine.register_lock(id);
        id
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> Stats {
        *sync::lock(&self.state).engine.stats()
    }

    /// Snapshot of the current history.
    pub fn history(&self) -> History {
        sync::lock(&self.state).engine.history().clone()
    }

    /// Adds a signature (vendor antibody or synthetic benchmark signature).
    pub fn add_signature(&self, sig: Signature) -> SignatureId {
        sync::lock(&self.state).engine.add_signature(sig).0
    }

    /// Estimated bytes of memory the runtime adds to the process.
    pub fn memory_footprint_bytes(&self) -> usize {
        sync::lock(&self.state).engine.memory_footprint_bytes()
    }

    /// Persists the history to the configured path.
    ///
    /// # Errors
    /// Fails if no path is configured or the write fails.
    pub fn save_history(&self) -> dimmunix_core::Result<()> {
        sync::lock(&self.state).engine.save_history()
    }

    fn gate(state: &mut EngineState, sig: SignatureId) -> Arc<SignatureGate> {
        state.gates.entry(sig).or_default().clone()
    }

    /// The `lockMonitor` prologue: keeps requesting until the engine grants,
    /// parking on the matched signature's gate whenever it says yield.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] when a deadlock is detected and
    /// the policy is [`DeadlockPolicy::Error`].
    pub fn before_acquire(&self, lock: LockId, site: AcquisitionSite) -> Result<(), LockError> {
        let thread = self.current_thread();
        let stack: CallStack = site.to_call_stack();
        loop {
            let mut state = sync::lock(&self.state);
            let outcome = state.engine.request(thread, lock, &stack);
            let pending = state.engine.take_pending_wakeups();
            for sig in &pending {
                let gate = Self::gate(&mut state, *sig);
                let mut gen = sync::lock(&gate.lock);
                *gen += 1;
                gate.cv.notify_all();
            }
            match outcome {
                RequestOutcome::Granted | RequestOutcome::GrantedReentrant => return Ok(()),
                RequestOutcome::DeadlockDetected { signature, .. } => {
                    return match self.options.deadlock_policy {
                        DeadlockPolicy::Error => Err(LockError::WouldDeadlock { signature }),
                        DeadlockPolicy::Block => Ok(()),
                    };
                }
                RequestOutcome::Yield { signature } => {
                    // Park on the signature gate. The generation counter is
                    // read while still holding the engine lock, so a release
                    // that happens right after we drop it cannot be lost.
                    let gate = Self::gate(&mut state, signature);
                    let mut gen = sync::lock(&gate.lock);
                    let observed = *gen;
                    drop(state);
                    while *gen == observed {
                        // The timeout is a belt-and-braces guard against a
                        // wake-up that raced with gate creation; correctness
                        // does not depend on its value.
                        let (g, timed_out) =
                            sync::wait_timeout(&gate.cv, gen, Duration::from_millis(50));
                        gen = g;
                        if timed_out {
                            break;
                        }
                    }
                    // Loop: retry the request (the paper's do/while loop).
                }
            }
        }
    }

    /// The `lockMonitor` epilogue.
    pub fn after_acquire(&self, lock: LockId) {
        let thread = self.current_thread();
        sync::lock(&self.state).engine.acquired(thread, lock);
    }

    /// Backs out of an approved acquisition that will not be completed
    /// (e.g. a failed `try_lock` on the underlying mutex).
    pub fn cancel_acquire(&self, lock: LockId) {
        let thread = self.current_thread();
        sync::lock(&self.state).engine.cancel_request(thread, lock);
    }

    /// The `unlockMonitor` prologue: releases in the engine and wakes every
    /// signature gate the engine says must be notified.
    pub fn before_release(&self, lock: LockId) {
        let thread = self.current_thread();
        let mut state = sync::lock(&self.state);
        let wake = state.engine.released(thread, lock);
        for sig in wake {
            let gate = Self::gate(&mut state, sig);
            let mut gen = sync::lock(&gate.lock);
            *gen += 1;
            gate.cv.notify_all();
        }
    }

    /// Unregisters the calling thread (normally done when a worker exits),
    /// force-releasing anything it still holds.
    pub fn retire_current_thread(&self) {
        let thread = self.current_thread();
        let mut state = sync::lock(&self.state);
        let wake = state.engine.unregister_thread(thread);
        for sig in wake {
            let gate = Self::gate(&mut state, sig);
            let mut gen = sync::lock(&gate.lock);
            *gen += 1;
            gate.cv.notify_all();
        }
        CURRENT_THREAD.with(|cell| {
            cell.borrow_mut().remove(&self.instance);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_get_distinct_ids() {
        let rt = DimmunixRuntime::new();
        let main_id = rt.current_thread();
        let rt2 = rt.clone();
        let other = std::thread::spawn(move || rt2.current_thread())
            .join()
            .unwrap();
        assert_ne!(main_id, other);
        // Repeated calls on the same thread return the same id.
        assert_eq!(rt.current_thread(), main_id);
    }

    #[test]
    fn lock_ids_are_unique() {
        let rt = DimmunixRuntime::new();
        let a = rt.allocate_lock();
        let b = rt.allocate_lock();
        assert_ne!(a, b);
    }

    #[test]
    fn uncontended_acquire_release_roundtrip() {
        let rt = DimmunixRuntime::new();
        let lock = rt.allocate_lock();
        rt.before_acquire(lock, acquire_site_for_test(1)).unwrap();
        rt.after_acquire(lock);
        rt.before_release(lock);
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, 1);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.yields, 0);
    }

    #[test]
    fn deadlock_policy_error_reports_would_deadlock() {
        // Build the AB/BA deadlock with two OS threads synchronized by
        // channels so the interleaving is deterministic.
        use std::sync::mpsc;
        let rt = DimmunixRuntime::new();
        let la = rt.allocate_lock();
        let lb = rt.allocate_lock();

        let (to_t2, from_t1) = mpsc::channel::<()>();
        let (to_t1, from_t2) = mpsc::channel::<()>();

        let rt1 = rt.clone();
        let t1 = std::thread::spawn(move || {
            rt1.before_acquire(la, AcquisitionSite::new("t1.outer", "rt.rs", 1))
                .unwrap();
            rt1.after_acquire(la);
            to_t2.send(()).unwrap();
            from_t2.recv().unwrap();
            // B is held by t2; this request parks or errors only if a cycle
            // forms; since t2 errors out first, just try and release.
            let r = rt1.before_acquire(lb, AcquisitionSite::new("t1.inner", "rt.rs", 2));
            if r.is_ok() {
                rt1.after_acquire(lb);
                rt1.before_release(lb);
            }
            rt1.before_release(la);
        });

        let rt2 = rt.clone();
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            from_t1.recv().unwrap();
            rt2.before_acquire(lb, AcquisitionSite::new("t2.outer", "rt.rs", 3))?;
            rt2.after_acquire(lb);
            // t1 holds A and is (or will be) waiting for B: requesting A now
            // closes the cycle.
            std::thread::sleep(Duration::from_millis(50));
            let r = rt2.before_acquire(la, AcquisitionSite::new("t2.inner", "rt.rs", 4));
            to_t1.send(()).ok();
            rt2.before_release(lb);
            r
        });

        // t2 signals t1 only after its own attempt, so order the handshake:
        // t1 waits for t2's token before requesting B. To avoid a real hang
        // when the engine lets both proceed, t2 sends the token right after
        // its attempt (above) — by then the cycle either formed or not.
        // Deliver the token for t1 released by t2 above.
        t1.join().unwrap();
        let result = t2.join().unwrap();
        // Exactly one of the two inner acquisitions must have been refused,
        // and the signature must be in the history.
        match result {
            Err(LockError::WouldDeadlock { .. }) => {}
            Ok(()) => {
                // The schedule did not interleave adversarially this time;
                // that is acceptable (no deadlock formed), but then no
                // signature must have been recorded either.
            }
        }
        let history = rt.history();
        let stats = rt.stats();
        assert_eq!(stats.deadlocks_detected as usize, history.len());
    }

    fn acquire_site_for_test(line: u32) -> AcquisitionSite {
        AcquisitionSite::new("test.site", "runtime_test.rs", line)
    }

    #[test]
    fn yield_parks_and_release_wakes() {
        // Train a runtime so that (siteA, siteB) is a known signature, then
        // check that a thread requesting at siteB parks while another holds
        // siteA, and proceeds after the release.
        let site_a = AcquisitionSite::new("outerA", "park.rs", 1);
        let site_b = AcquisitionSite::new("outerB", "park.rs", 2);
        let sig = Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![
                dimmunix_core::SignaturePair::new(site_a.to_call_stack(), site_a.to_call_stack()),
                dimmunix_core::SignaturePair::new(site_b.to_call_stack(), site_b.to_call_stack()),
            ],
        );
        let rt = DimmunixRuntime::new();
        rt.add_signature(sig);
        let la = rt.allocate_lock();
        let lb = rt.allocate_lock();

        // Main thread holds A acquired at siteA.
        rt.before_acquire(la, site_a).unwrap();
        rt.after_acquire(la);

        let rt2 = rt.clone();
        let waiter = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            rt2.before_acquire(lb, site_b).unwrap();
            rt2.after_acquire(lb);
            rt2.before_release(lb);
            start.elapsed()
        });

        // Give the waiter time to park, then release A to wake it.
        std::thread::sleep(Duration::from_millis(120));
        assert!(rt.stats().yields >= 1, "waiter should have parked");
        rt.before_release(la);
        let waited = waiter.join().unwrap();
        assert!(
            waited >= Duration::from_millis(80),
            "waiter should have been parked for a while, waited {waited:?}"
        );
    }
}
