//! The per-process Dimmunix runtime for real OS threads.
//!
//! This is the integration layer of the paper translated to Rust: since Rust
//! has no interposition point on `std::sync::Mutex`, applications opt in by
//! using the wrapper types [`ImmuneMutex`](crate::ImmuneMutex) and
//! [`ImmuneMonitor`](crate::ImmuneMonitor), which call into a shared
//! [`DimmunixRuntime`] before and after every acquisition — exactly where the
//! modified `lockMonitor` / `unlockMonitor` / `waitMonitor` routines call the
//! Dimmunix core (§4).
//!
//! Thread safety goes beyond the paper: where the paper serializes the three
//! hooks behind one global VM lock, this runtime shards the engine state by
//! lock id ([`RuntimeOptions::shards`]). Each shard is an independent
//! [`Dimmunix`] engine behind its own mutex, so uncontended acquisitions of
//! locks on different shards proceed in parallel. A request that might close
//! a deadlock cycle (the requester already holds locks, some thread is
//! parked by avoidance, or the requesting position appears in the history)
//! takes the cross-shard path instead: every shard mutex is acquired in
//! ascending index order (a total order, so the runtime cannot deadlock
//! itself) and the decision is computed by `dimmunix-core`'s
//! [`request_cross_shard`] against the merged view. See
//! `dimmunix_core::ShardedDimmunix` for the ownership model and
//! `ARCHITECTURE.md` for the full protocol.
//!
//! The deadlock history is **not** sharded: every shard reads one shared,
//! immutable [`HistorySnapshot`] through an `Arc`. A detection (which holds
//! all shard locks) builds the successor snapshot, appends one record to
//! the append-only history log named by [`Config::history_path`], and swaps
//! the `Arc` into every shard; the request path reads its shard's snapshot
//! handle without any history-wide lock. At construction the runtime
//! replays the log — repairing a crash-partial tail record — so antibodies
//! survive process restarts and reboots (§2.1).
//!
//! Threads parked by avoidance wait on per-signature gates (condition
//! variables, global across shards) and are woken from the release path of
//! whichever shard releases a lock acquired at one of the signature's outer
//! positions.

use crate::exchange::{ExchangeOptions, ExchangeState, ExchangeStats};
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::{
    broadcast_signature, fast_path_eligible, holds_mask_with, request_cross_shard,
    stale_shard_after, stale_shard_consumed, try_request_local, AccessMode, Admission,
    AdmissionSummary, CallStack, Config, Dimmunix, History, HistorySnapshot, LocalDecision, LockId,
    OwnerId, PositionId, RecoveryReport, RequestOutcome, ShardRouter, Signature, SignatureId,
    SiteKey, StackInterner, Stats, TaskId, ThreadId,
};
use dimmunix_exchange::{Pack, PackError};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::task::Waker;
use std::time::Duration;

/// What the wrapper types should do when the engine reports that the
/// requested acquisition closes a genuine deadlock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Return [`LockError::WouldDeadlock`] from the acquisition (fail-safe
    /// default for a library: the caller can back off and retry).
    #[default]
    Error,
    /// Block anyway — paper-faithful behaviour: the first occurrence of a
    /// deadlock freezes the threads involved; the signature is already
    /// persisted so the *next* run is immune.
    Block,
}

/// Errors surfaced by the immune lock types.
///
/// Marked `#[non_exhaustive]` (enum and variants): foreign matches need a
/// wildcard arm and cannot construct the variants, so future error kinds
/// and extra context fields are non-breaking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockError {
    /// Acquiring would complete a deadlock cycle (and
    /// [`DeadlockPolicy::Error`] is in force). The signature has been added
    /// to the history. The lock and acquisition site identify *which*
    /// antibody refused the caller, so fail-safe retry loops can log the
    /// refusal instead of spinning blind.
    #[non_exhaustive]
    WouldDeadlock {
        /// The recorded signature.
        signature: SignatureId,
        /// The lock whose acquisition was refused.
        lock: LockId,
        /// The program location of the refused acquisition.
        site: AcquisitionSite,
        /// The owner whose acquisition was refused — an OS thread for the
        /// blocking lock types, an async task for the `asyncio` substrate.
        owner: OwnerId,
        /// Where the refused owner was spawned, when known (recorded for
        /// async tasks at `spawn`; `None` for OS threads, whose identity is
        /// not tied to a source location).
        spawn_site: Option<AcquisitionSite>,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::WouldDeadlock {
                signature,
                lock,
                site,
                owner,
                spawn_site,
            } => {
                write!(
                    f,
                    "acquiring lock {lock} at {site} by {owner} would complete deadlock {signature}"
                )?;
                if let Some(spawned) = spawn_site {
                    write!(f, " (task spawned at {spawned})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Options controlling a [`DimmunixRuntime`]. Readable through
/// [`DimmunixRuntime::options`]; constructed through [`RuntimeBuilder`]
/// (the struct is `#[non_exhaustive]`, so new knobs are non-breaking).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RuntimeOptions {
    /// Engine configuration (stack depth, toggles) — including the
    /// **persistence knobs**: [`Config::history_path`] names the
    /// append-only signature log the runtime replays at construction (with
    /// crash-tail repair) and appends one record to per detected deadlock,
    /// and [`Config::log_sync`] controls whether each append fsyncs (on by
    /// default: an antibody is durable the moment the detection returns).
    /// Unset `history_path` keeps the history purely in-memory.
    pub config: Config,
    /// Behaviour on detected deadlocks.
    pub deadlock_policy: DeadlockPolicy,
    /// Number of engine shards the lock-id space is partitioned over,
    /// clamped to `1..=`[`dimmunix_core::MAX_SHARDS`]. The default is
    /// `min(available_parallelism, MAX_SHARDS)` — one shard per core, so
    /// uncontended acquisitions on different shards run in parallel out of
    /// the box; `1` reproduces the paper's single global engine lock. The
    /// history is **not** per shard: every shard reads the same shared
    /// [`HistorySnapshot`], so raising the shard count does not multiply
    /// history memory (and the shards share one process-wide
    /// [`StackInterner`], so it does not multiply stack memory either).
    pub shards: usize,
    /// Collaborative-exchange wiring (see [`ExchangeOptions`]): pack files
    /// pulled at construction, contribution pack pushed on detections.
    /// `None` (the default) runs the paper's per-process immunity only.
    pub exchange: Option<ExchangeOptions>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            config: Config::default(),
            deadlock_policy: DeadlockPolicy::default(),
            shards: default_shards(),
            exchange: None,
        }
    }
}

/// The default shard count: one engine shard per available core, clamped to
/// [`dimmunix_core::MAX_SHARDS`]. With the lock-free admission path and the
/// shared [`StackInterner`] closing the historical per-shard memory and
/// cache-dilution costs, per-core sharding is the right default; a machine
/// whose parallelism cannot be determined falls back to the paper's single
/// engine lock.
fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(dimmunix_core::MAX_SHARDS))
}

/// Fluent configuration for a [`DimmunixRuntime`] — the construction
/// surface of the drop-in API.
///
/// [`build`](RuntimeBuilder::build) creates a private runtime (multi-runtime
/// tests, benches); [`install_global`](RuntimeBuilder::install_global) makes
/// the built runtime the process-global one that `ImmuneMutex::new(value)`
/// and friends attach to. Install before the first implicit use: once
/// [`DimmunixRuntime::global`] has run, the global runtime is fixed for the
/// life of the process (locks hold `Arc`s into it, so swapping it would
/// split the process across two engines).
///
/// ```
/// use dimmunix_rt::{DeadlockPolicy, DimmunixRuntime};
///
/// let rt = DimmunixRuntime::builder()
///     .shards(4)
///     .deadlock_policy(DeadlockPolicy::Error)
///     .log_sync(false)
///     .build();
/// assert_eq!(rt.shard_count(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    options: RuntimeOptions,
    history: Option<History>,
}

impl RuntimeBuilder {
    /// Starts from the defaults: fail-safe deadlock policy, one engine
    /// shard, in-memory history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole engine configuration. Apply this **before** the
    /// targeted knobs ([`history_path`](Self::history_path),
    /// [`log_sync`](Self::log_sync)), which tweak the configuration in
    /// place.
    pub fn config(mut self, config: Config) -> Self {
        self.options.config = config;
        self
    }

    /// Number of engine shards the lock-id space is partitioned over (see
    /// [`RuntimeOptions::shards`]). Default 1 — the paper's single global
    /// engine lock.
    pub fn shards(mut self, shards: usize) -> Self {
        self.options.shards = shards;
        self
    }

    /// Behaviour when an acquisition closes a genuine deadlock cycle.
    /// Default [`DeadlockPolicy::Error`] (fail-safe).
    pub fn deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.options.deadlock_policy = policy;
        self
    }

    /// Path of the append-only signature log: replayed (with crash-tail
    /// repair) at construction, appended to on every detection. Unset keeps
    /// the history purely in memory.
    pub fn history_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.options.config.history_path = Some(path.into());
        self
    }

    /// Whether each history-log append fsyncs (default `true`; see
    /// [`Config::log_sync`]).
    pub fn log_sync(mut self, sync: bool) -> Self {
        self.options.config.log_sync = sync;
        self
    }

    /// Enables collaborative exchange: the listed packs are pulled at
    /// [`build`](Self::build) (foreign antibodies quarantined until local
    /// positions vouch for their sites) and a contribution pack is pushed
    /// to the export path after every detection.
    pub fn exchange(mut self, options: ExchangeOptions) -> Self {
        self.options.exchange = Some(options);
        self
    }

    /// Pre-loads an explicit starting history (vendor-shipped antibodies,
    /// synthetic benchmark signatures). Takes precedence over replaying
    /// [`history_path`](Self::history_path) for the *starting* state; the
    /// path is still used for appends.
    pub fn history(mut self, history: History) -> Self {
        self.history = Some(history);
        self
    }

    /// Builds a private runtime.
    pub fn build(self) -> Arc<DimmunixRuntime> {
        match self.history {
            Some(history) => DimmunixRuntime::with_history(self.options, history),
            None => DimmunixRuntime::with_options(self.options),
        }
    }

    /// Builds the runtime and installs it as the process-global one used by
    /// the implicit constructors (`ImmuneMutex::new(value)`, …).
    ///
    /// # Errors
    /// Returns [`GlobalAlreadyInstalled`] if the global runtime already
    /// exists — either a previous install or a first implicit use that
    /// default-initialized it. The existing global stays in force.
    pub fn install_global(self) -> Result<Arc<DimmunixRuntime>, GlobalAlreadyInstalled> {
        let rt = self.build();
        let mut global = sync::lock(&GLOBAL_RUNTIME);
        if global.is_some() {
            return Err(GlobalAlreadyInstalled(()));
        }
        *global = Some(Arc::clone(&rt));
        Ok(rt)
    }
}

/// Error returned by [`RuntimeBuilder::install_global`] when the
/// process-global runtime was already initialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalAlreadyInstalled(());

impl fmt::Display for GlobalAlreadyInstalled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the process-global Dimmunix runtime is already installed \
             (install_global must run before the first implicit use)"
        )
    }
}

impl std::error::Error for GlobalAlreadyInstalled {}

/// The process-global runtime backing the implicit constructors. Fixed at
/// first use for the life of the process (a `Mutex<Option>` rather than a
/// `OnceLock` only so the test-only reset can clear it).
static GLOBAL_RUNTIME: Mutex<Option<Arc<DimmunixRuntime>>> = Mutex::new(None);

#[derive(Default)]
struct SignatureGate {
    lock: Mutex<u64>,
    cv: Condvar,
}

/// One engine shard and its per-shard scratch state, behind one mutex.
struct ShardCell {
    engine: Dimmunix,
    /// Reused buffer for the release-path wake-up list, so steady-state
    /// releases perform no allocation.
    wake_scratch: Vec<SignatureId>,
}

impl ShardCell {
    fn new(engine: Dimmunix) -> Self {
        ShardCell {
            engine,
            wake_scratch: Vec::new(),
        }
    }
}

/// A lock admitted on the no-engine fast path and still held. The engine has
/// never seen this hold: the admission summary proved its site cannot appear
/// in any history signature and its owner cannot be a deadlock-cycle
/// participant, so the hold stays thread-private until either it is released
/// (wake-free, since a bloom-clear site can de-instantiate no signature) or
/// the same thread takes the slow path for a nested acquisition — at which
/// point the hold is published into its home shard's RAG first, so cycle
/// detection sees the full hold set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FastHold {
    lock: LockId,
    mode: AccessMode,
    /// The acquisition site, kept so a later publish can intern the same
    /// call stack the locked path would have recorded.
    site: AcquisitionSite,
}

/// Per-(runtime, OS thread) routing state. Only the owning thread reads or
/// writes its entry, so no synchronization is needed.
#[derive(Debug, Clone, Copy)]
struct ThreadRoute {
    id: ThreadId,
    /// Bit `s` set while the thread holds at least one lock on shard `s`.
    holds_mask: u64,
    /// Shard still carrying this thread's request edge from an acquisition
    /// that was refused with [`LockError::WouldDeadlock`] (the substrate
    /// abandons those, so the edge survives until the next request).
    stale_shard: Option<usize>,
    /// The one lock (if any) this thread holds via the no-engine fast path.
    /// At most one: a second acquisition while this is `Some` takes the
    /// cross-shard path, which publishes this hold into the engine first.
    fast_held: Option<FastHold>,
}

/// FNV-1a hasher for the thread-local maps on the admission fast path.
/// Their keys are tiny and fixed-size (a runtime instance id; a site's
/// pointer triple), where the default SipHash costs more than the admission
/// check itself; FNV is not DoS-resistant, but these maps never hold
/// attacker-chosen keys.
#[derive(Default)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FnvHasher>>;

/// Cache key for [`SITE_STACKS`]: the site's `'static` string **pointers**
/// stand in for their contents. For a given call site the pointers are
/// stable, and pointer equality implies content equality; two distinct
/// pointers with equal contents merely cache the same stack twice. This
/// keeps per-call string hashing off the steady-state acquisition path.
#[derive(PartialEq, Eq, Hash)]
struct SiteCacheKey(usize, usize, u32);

impl From<AcquisitionSite> for SiteCacheKey {
    fn from(site: AcquisitionSite) -> Self {
        SiteCacheKey(
            site.scope.as_ptr() as usize,
            site.file.as_ptr() as usize,
            site.line,
        )
    }
}

thread_local! {
    /// Per-OS-thread routing state, keyed by runtime instance.
    static THREAD_ROUTE: std::cell::RefCell<FnvMap<u64, ThreadRoute>> =
        std::cell::RefCell::new(FnvMap::default());

    /// Per-thread cache of interned call stacks and site keys by acquisition
    /// site. A site is a `'static` triple, so the cache never invalidates;
    /// the steady-state acquisition path allocates nothing and hashes only
    /// this one small map lookup.
    static SITE_STACKS: std::cell::RefCell<FnvMap<SiteCacheKey, (Arc<CallStack>, SiteKey)>> =
        std::cell::RefCell::new(FnvMap::default());
}

/// The call stack and stable site key for an acquisition site, from the
/// thread-local cache (built once per (thread, site)).
fn cached_site_stack(site: AcquisitionSite) -> (Arc<CallStack>, SiteKey) {
    SITE_STACKS.with(|cell| {
        cell.borrow_mut()
            .entry(site.into())
            .or_insert_with(|| {
                let stack = Arc::new(site.to_call_stack());
                let key = stack.site_key();
                (stack, key)
            })
            .clone()
    })
}

/// The shared, per-process deadlock-immunity runtime.
///
/// One instance per process mirrors the paper's per-process Dimmunix data
/// (Figure 1). Cloning the [`Arc`] and handing it to every `Immune*` lock in
/// the process is the moral equivalent of "all applications automatically run
/// with Dimmunix".
pub struct DimmunixRuntime {
    /// Engine shards, one mutex each; cross-shard operations acquire them in
    /// ascending index order.
    shards: Vec<Mutex<ShardCell>>,
    /// Per-signature park gates, global across shards.
    gates: Mutex<HashMap<SignatureId, Arc<SignatureGate>>>,
    router: ShardRouter,
    options: RuntimeOptions,
    /// Global acquisition sequence, stamped into shard RAG holds so merged
    /// views can order holds across shards.
    acq_seq: AtomicU64,
    /// Shared lock-free admission summary: a seqlock-published digest of
    /// every shard's history bloom, per-blocker park counts, and fast-path
    /// counters. Each shard engine holds a clone of this `Arc` and updates
    /// it from under its own lock; the no-engine fast path reads it with no
    /// locks at all.
    summary: Arc<AdmissionSummary>,
    /// Globally unique instance id; used to key the per-thread route cache so
    /// a thread interacting with several runtimes gets a route per runtime.
    instance: u64,
    next_thread: AtomicU64,
    next_lock: AtomicU64,
    next_task: AtomicU64,
    /// Per-task routing state (the task analogue of the thread-local
    /// [`ThreadRoute`]). A map rather than a thread-local because a task may
    /// be polled from any worker thread; each entry is only touched by its
    /// own task's polls, which an executor serializes.
    task_routes: Mutex<HashMap<TaskId, TaskRoute>>,
    /// Wakers of tasks parked by avoidance, keyed by the signature whose
    /// instantiation parked them — the async analogue of the condition
    /// variable [`SignatureGate`]s, FIFO per signature and at most one
    /// entry per task. Release-driven notifications wake only the front
    /// entry ([`notify_signatures_released`](Self::notify_signatures_released));
    /// correctness-critical notifications (starvation, cancellation,
    /// retirement) wake every entry.
    task_wakers: Mutex<HashMap<SignatureId, VecDeque<(TaskId, Waker)>>>,
    /// Collaborative-exchange state (quarantined foreign antibodies and
    /// counters); `None` unless [`RuntimeBuilder::exchange`] configured it.
    exchange: Option<ExchangeState>,
}

/// Per-task routing state, mirroring [`ThreadRoute`] plus the task's spawn
/// site for diagnostics.
#[derive(Debug, Clone, Copy, Default)]
struct TaskRoute {
    /// Bit `s` set while the task holds at least one lock on shard `s`.
    holds_mask: u64,
    /// Shard still carrying this task's request edge from an acquisition
    /// answered with `Yield` or `DeadlockDetected`.
    stale_shard: Option<usize>,
    /// Where the task was spawned, when the executor recorded it.
    spawn_site: Option<AcquisitionSite>,
}

/// The engine's answer to a non-blocking task acquisition request — the
/// poll-based analogue of [`DimmunixRuntime::before_acquire`]'s loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskAcquire {
    /// The task may proceed to acquire the lock (new or reentrant hold).
    Granted,
    /// Granting now could instantiate the given history signature: the
    /// task's waker has been registered on the signature and the future
    /// must return `Poll::Pending`; the waker fires when a lock acquired at
    /// one of the signature's positions is released, and the task then
    /// re-requests.
    Parked {
        /// The signature whose instantiation is being avoided.
        signature: SignatureId,
    },
    /// A genuine task-level deadlock was detected (and the policy is
    /// [`DeadlockPolicy::Error`]); the signature is already recorded.
    WouldDeadlock(LockError),
}

static NEXT_RUNTIME_INSTANCE: AtomicU64 = AtomicU64::new(1);

impl fmt::Debug for DimmunixRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DimmunixRuntime")
            .field("options", &self.options)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl DimmunixRuntime {
    /// Creates a private runtime with default options (paper defaults:
    /// fail-safe deadlock policy, one engine shard). Use
    /// [`builder`](Self::builder) to configure one, and
    /// [`global`](Self::global) for the process-global runtime the drop-in
    /// constructors attach to.
    pub fn new() -> Arc<Self> {
        Self::with_options(RuntimeOptions::default())
    }

    /// Starts a [`RuntimeBuilder`] — the fluent construction surface.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// The process-global runtime — the analogue of "Dimmunix is in the
    /// VM, so every application automatically runs with it". The implicit
    /// lock constructors (`ImmuneMutex::new(value)`, …) attach here.
    /// Default-initialized on first use; configure it beforehand with
    /// [`RuntimeBuilder::install_global`]. Once initialized it is fixed for
    /// the life of the process: locks hold `Arc`s into it, so swapping it
    /// would split the process across two engines.
    pub fn global() -> Arc<Self> {
        let mut global = sync::lock(&GLOBAL_RUNTIME);
        global
            .get_or_insert_with(|| RuntimeBuilder::new().build())
            .clone()
    }

    /// Clears the process-global runtime so a later
    /// [`RuntimeBuilder::install_global`] succeeds again. **Test-only**:
    /// locks created before the reset keep their `Arc` to the old runtime
    /// and keep working against it, but they no longer share an engine with
    /// locks created afterwards — never call this outside test code.
    #[cfg(any(test, feature = "test-util"))]
    #[doc(hidden)]
    pub fn reset_global_for_tests() {
        *sync::lock(&GLOBAL_RUNTIME) = None;
    }

    /// Creates a runtime with explicit options. If the configuration names
    /// a history log, it is replayed (and its crash tail repaired) once;
    /// the resulting snapshot is shared by every shard.
    fn with_options(options: RuntimeOptions) -> Arc<Self> {
        let first = Dimmunix::new(options.config.clone());
        Self::assemble_from(options, first)
    }

    /// Creates a runtime pre-loaded with a history (antibodies). The
    /// snapshot is bulk-built once and shared by every shard.
    fn with_history(options: RuntimeOptions, history: History) -> Arc<Self> {
        let first = Dimmunix::with_history(options.config.clone(), history);
        Self::assemble_from(options, first)
    }

    /// Completes construction from the first shard engine: the remaining
    /// shards receive clones of its snapshot `Arc` — one shared history
    /// per runtime, regardless of the shard count.
    fn assemble_from(options: RuntimeOptions, mut first: Dimmunix) -> Arc<Self> {
        let router = ShardRouter::new(options.shards);
        let snapshot = Arc::clone(first.history_snapshot());
        let summary = Arc::new(AdmissionSummary::new());
        let interner = Arc::new(StackInterner::new());
        first.attach_admission_summary(Arc::clone(&summary), 0);
        first.share_stack_interner(Arc::clone(&interner));
        let mut shards = Vec::with_capacity(router.shard_count());
        shards.push(Mutex::new(ShardCell::new(first)));
        for index in 1..router.shard_count() {
            let mut engine = Dimmunix::with_snapshot(options.config.clone(), Arc::clone(&snapshot));
            engine.attach_admission_summary(Arc::clone(&summary), index);
            engine.share_stack_interner(Arc::clone(&interner));
            shards.push(Mutex::new(ShardCell::new(engine)));
        }
        let rt = Self::assemble(options, router, shards, summary);
        rt.startup_exchange_import();
        rt
    }

    fn assemble(
        options: RuntimeOptions,
        router: ShardRouter,
        shards: Vec<Mutex<ShardCell>>,
        summary: Arc<AdmissionSummary>,
    ) -> Arc<Self> {
        let exchange = options.exchange.clone().map(ExchangeState::new);
        Arc::new(DimmunixRuntime {
            shards,
            gates: Mutex::new(HashMap::new()),
            router,
            options,
            acq_seq: AtomicU64::new(1),
            summary,
            instance: NEXT_RUNTIME_INSTANCE.fetch_add(1, Ordering::Relaxed),
            next_thread: AtomicU64::new(1),
            next_lock: AtomicU64::new(1),
            next_task: AtomicU64::new(1),
            task_routes: Mutex::new(HashMap::new()),
            task_wakers: Mutex::new(HashMap::new()),
            exchange,
        })
    }

    /// Startup pull of the configured import packs. Each foreign signature
    /// is quarantined, then screened against the positions the replayed
    /// local history already proves (its outer table), so antibodies whose
    /// sites this process is known to execute activate before the first
    /// acquisition; the rest wait for
    /// [`feed_exchange`](Self::feed_exchange) to see their sites interned.
    fn startup_exchange_import(&self) {
        let Some(ex) = &self.exchange else { return };
        let snapshot = self.history_snapshot();
        let mut activated = Vec::new();
        {
            let mut pending = sync::lock(&ex.pending);
            for path in &ex.import_paths {
                match Pack::load_or_quarantine(path) {
                    Ok(pack) => {
                        for (_, entry) in pack.entries() {
                            activated
                                .extend(pending.admit(entry.signature.clone(), entry.detections));
                            ex.imported.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A peer that has not exported yet is not an error.
                    Err((PackError::Io(e), _)) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(_) => {
                        ex.quarantined_packs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let outers = snapshot.outer_table();
            for raw in 0..outers.len() {
                if pending.is_empty() {
                    break;
                }
                if let Some(stack) = outers.stack(PositionId::new(raw as u32)) {
                    activated.extend(pending.observe_position(stack));
                }
            }
            ex.pending_nonempty
                .store(!pending.is_empty(), Ordering::Relaxed);
        }
        for antibody in activated {
            self.add_signature(antibody.signature);
            ex.activated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Feeds one locally observed acquisition position to the
    /// foreign-antibody gate. The common case — nothing quarantined —
    /// costs one relaxed load. Activated antibodies are appended to the
    /// shared history *after* the pending guard is dropped, keeping the
    /// pending-before-shards lock order one-way.
    fn feed_exchange(&self, stack: &CallStack) {
        let Some(ex) = &self.exchange else { return };
        if !ex.pending_nonempty.load(Ordering::Relaxed) {
            return;
        }
        let activated = {
            let mut pending = sync::lock(&ex.pending);
            let out = pending.observe_position(stack);
            ex.pending_nonempty
                .store(!pending.is_empty(), Ordering::Relaxed);
            out
        };
        for antibody in activated {
            self.add_signature(antibody.signature);
            ex.activated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes this process's contribution pack — its full current history
    /// under the configured origin — to the export path (atomic replace).
    /// Called automatically after every detection; callable manually for a
    /// shutdown flush. Returns true if a pack was written.
    pub fn export_contribution(&self) -> bool {
        let Some(ex) = &self.exchange else {
            return false;
        };
        let Some(path) = &ex.export_path else {
            return false;
        };
        let snapshot = self.history_snapshot();
        let pack = Pack::from_snapshot(ex.origin.clone(), &snapshot);
        if pack.save(path).is_ok() {
            ex.exported.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Counters of the collaborative-exchange wiring; `None` when
    /// [`RuntimeBuilder::exchange`] was not configured.
    pub fn exchange_stats(&self) -> Option<ExchangeStats> {
        self.exchange.as_ref().map(ExchangeState::stats)
    }

    /// The options this runtime was created with.
    pub fn options(&self) -> &RuntimeOptions {
        &self.options
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `lock` (diagnostics and tests).
    pub fn shard_of(&self, lock: LockId) -> usize {
        self.router.shard_of(lock)
    }

    /// Identifier of the calling OS thread, registering it on first use (the
    /// analogue of `initNode` on thread allocation).
    pub fn current_thread(&self) -> ThreadId {
        self.route().id
    }

    /// This thread's routing state, creating and registering it on first use.
    fn route(&self) -> ThreadRoute {
        THREAD_ROUTE.with(|cell| {
            if let Some(r) = cell.borrow().get(&self.instance) {
                return *r;
            }
            let id = ThreadId::new(self.next_thread.fetch_add(1, Ordering::Relaxed));
            for shard in &self.shards {
                sync::lock(shard).engine.register_owner(id);
            }
            let route = ThreadRoute {
                id,
                holds_mask: 0,
                stale_shard: None,
                fast_held: None,
            };
            cell.borrow_mut().insert(self.instance, route);
            route
        })
    }

    fn update_route(&self, f: impl FnOnce(&mut ThreadRoute)) {
        THREAD_ROUTE.with(|cell| {
            if let Some(r) = cell.borrow_mut().get_mut(&self.instance) {
                f(r);
            }
        });
    }

    /// One-access no-engine admission attempt: checks every thread-local
    /// precondition, consults the summary, and records the pending fast
    /// hold, all under a single borrow of the route map. Returns whether
    /// the acquisition was admitted lock-free.
    fn try_fast_admit(
        &self,
        lock: LockId,
        site: AcquisitionSite,
        mode: AccessMode,
        site_key: SiteKey,
    ) -> bool {
        THREAD_ROUTE.with(|cell| {
            let mut map = cell.borrow_mut();
            let Some(r) = map.get_mut(&self.instance) else {
                return false;
            };
            if r.holds_mask != 0 || r.stale_shard.is_some() || r.fast_held.is_some() {
                return false;
            }
            if self.exchange_pending() {
                return false;
            }
            if !matches!(
                self.summary.try_admit(site_key, r.id.into()),
                Admission::Admit { .. }
            ) {
                return false;
            }
            r.fast_held = Some(FastHold { lock, mode, site });
            true
        })
    }

    /// Clears this thread's pending fast hold if it is `lock`, under a
    /// single borrow of the route map. Returns whether it was cleared.
    fn clear_fast_held(&self, lock: LockId) -> bool {
        THREAD_ROUTE.with(|cell| {
            if let Some(r) = cell.borrow_mut().get_mut(&self.instance) {
                if r.fast_held.map(|fh| fh.lock) == Some(lock) {
                    r.fast_held = None;
                    return true;
                }
            }
            false
        })
    }

    /// Allocates a lock id for a new immune lock (the analogue of inflating a
    /// monitor and embedding a RAG node) and registers it on its home shard.
    pub fn allocate_lock(&self) -> LockId {
        let id = LockId::new(self.next_lock.fetch_add(1, Ordering::Relaxed));
        let home = self.router.shard_of(id);
        sync::lock(&self.shards[home]).engine.register_lock(id);
        id
    }

    /// Diagnostics of the history-log recovery performed when this runtime
    /// was constructed: records replayed, crash-tail repair, quarantine of
    /// a corrupt log. `None` when the runtime performed no log replay (no
    /// [`Config::history_path`], or an explicit starting history). Check it
    /// at start-up to tell "no antibodies yet" apart from "antibodies lost
    /// to corruption" — the engine no longer starts silently empty.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        sync::lock(&self.shards[0])
            .engine
            .recovery_report()
            .cloned()
    }

    /// Snapshot of the engine counters, rolled up across shards and folded
    /// together with the lock-free fast-path counters, so a fast-path admit
    /// is indistinguishable from an engine grant in the totals. A fast hold
    /// that was later published into the engine (because its owner took the
    /// slow path for a nested acquisition) already appears in the engine
    /// counters, so published admits are subtracted to avoid double counting.
    pub fn stats(&self) -> Stats {
        let mut total = Stats::new();
        for shard in &self.shards {
            total.merge(sync::lock(shard).engine.stats());
        }
        let s = &self.summary;
        let fast_admits = s.fast_admits();
        let published = s.published();
        let unpublished = fast_admits.saturating_sub(published);
        total.requests += unpublished;
        total.grants += unpublished;
        total.acquisitions += s.fast_acquires().saturating_sub(published);
        total.releases += s.fast_releases();
        total.fast_admits = fast_admits;
        total.slow_fallbacks = s.slow_fallbacks();
        total.degradation_scope_hits = s.degradation_scope_hits();
        total
    }

    /// The shared lock-free [`AdmissionSummary`] — fast-path counters and
    /// the history digest the no-engine admission path reads. Exposed for
    /// benchmarks and diagnostics; all fields are monotone counters or
    /// conservative digests, safe to read at any time.
    pub fn admission_summary(&self) -> &Arc<AdmissionSummary> {
        &self.summary
    }

    /// Snapshot of the current history (cloned out of the shared
    /// [`HistorySnapshot`]).
    pub fn history(&self) -> History {
        sync::lock(&self.shards[0]).engine.history().clone()
    }

    /// The shared history snapshot every shard currently reads. Cheap (one
    /// `Arc` clone under the first shard's lock); the returned snapshot is
    /// immutable and stays internally consistent even as detections swap in
    /// successors.
    pub fn history_snapshot(&self) -> Arc<HistorySnapshot> {
        Arc::clone(sync::lock(&self.shards[0]).engine.history_snapshot())
    }

    /// Adds a signature (vendor antibody or synthetic benchmark signature)
    /// to the shared history, under the all-shard lock — the same
    /// append-once/install-everywhere path detections take.
    pub fn add_signature(&self, sig: Signature) -> SignatureId {
        let mut guards: Vec<MutexGuard<'_, ShardCell>> =
            self.shards.iter().map(sync::lock).collect();
        let mut engines: Vec<&mut Dimmunix> = guards.iter_mut().map(|g| &mut g.engine).collect();
        broadcast_signature(&mut engines, sig).0
    }

    /// Estimated bytes of memory the runtime adds to the process: the
    /// shared history snapshot, charged **once**, plus each shard's local
    /// state (positions, RAG, outer links). The figure stays essentially
    /// flat as the shard count grows.
    pub fn memory_footprint_bytes(&self) -> usize {
        let mut total = 0usize;
        let mut snapshot = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let g = sync::lock(shard);
            if i == 0 {
                snapshot = g.engine.history_snapshot().memory_footprint_bytes();
            }
            total += g.engine.local_memory_footprint_bytes();
        }
        total + snapshot
    }

    /// Rewrites the configured history log to exactly the current history
    /// (compaction; see [`Dimmunix::save_history`]). Normal operation
    /// appends one record per detection instead.
    ///
    /// # Errors
    /// Fails if no path is configured or the write fails.
    pub fn save_history(&self) -> dimmunix_core::Result<()> {
        sync::lock(&self.shards[0]).engine.save_history()
    }

    fn gate(&self, sig: SignatureId) -> Arc<SignatureGate> {
        sync::lock(&self.gates).entry(sig).or_default().clone()
    }

    /// Bumps the generation of every listed signature gate, wakes the
    /// parked threads, and fires the wakers of **every** task parked on
    /// those signatures. Lock order: shard(s) before gates, everywhere.
    fn notify_signatures(&self, sigs: &[SignatureId]) {
        self.bump_gates(sigs);
        let mut parked_tasks = sync::lock(&self.task_wakers);
        for sig in sigs {
            if let Some(wakers) = parked_tasks.remove(sig) {
                for (_, w) in wakers {
                    w.wake();
                }
            }
        }
    }

    /// The release-driven variant of [`notify_signatures`](Self::notify_signatures):
    /// wakes only the **front** task parked on each signature instead of the
    /// whole crowd. Waking everyone on every release makes the parked
    /// population re-run the avoidance check O(parked × releases) times while
    /// at most one of them can be granted per de-instantiating release; the
    /// chain stays live with a single wake because a woken-then-granted task
    /// acquires at an in-history position, so its own release re-notifies
    /// the signature and hands the wake to the next waiter, and a
    /// woken-then-reparked task goes to the back of the queue while the
    /// blockers that keep the signature instantiable still hold locks whose
    /// releases notify it again. Parked threads still get the full condvar
    /// broadcast — their gates are generation-sampled, not queued.
    fn notify_signatures_released(&self, sigs: &[SignatureId]) {
        self.bump_gates(sigs);
        let mut parked_tasks = sync::lock(&self.task_wakers);
        for sig in sigs {
            if let Some(wakers) = parked_tasks.get_mut(sig) {
                if let Some((_, w)) = wakers.pop_front() {
                    w.wake();
                }
                if wakers.is_empty() {
                    parked_tasks.remove(sig);
                }
            }
        }
    }

    /// Generation bump + broadcast on every listed signature's thread gate.
    fn bump_gates(&self, sigs: &[SignatureId]) {
        for sig in sigs {
            let gate = self.gate(*sig);
            let mut gen = sync::lock(&gate.lock);
            *gen += 1;
            gate.cv.notify_all();
        }
    }

    /// The locked half of the shard-local fast-path precondition, read under
    /// the home shard's lock. Parking or resuming a thread requires every
    /// shard lock (including home), and the summary's park counters are
    /// updated from under those locks, so the answer cannot be invalidated
    /// while the home lock is held. With lock-free admission the check is
    /// *scoped*: only a park whose yield record lists `owner` as a blocker
    /// forces the cross-shard path (a yield record's blocker list is a
    /// snapshot, so a starvation cycle can pass through an owner that holds
    /// no lock — but only through owners the record actually names). With
    /// the knob off, any park anywhere degrades every request, reproducing
    /// the old global behaviour.
    fn locked_gate_clear(&self, owner: OwnerId) -> bool {
        if self.options.config.lock_free_admission {
            !self.summary.is_blocker(owner)
        } else {
            self.summary.parked_total() == 0
        }
    }

    /// Whether quarantined foreign antibodies await activation. The
    /// no-engine fast path declines while any are pending, so an antibody
    /// cannot be bypassed in the window between its import and the
    /// history/bloom update that [`feed_exchange`](Self::feed_exchange)'s
    /// activation performs.
    fn exchange_pending(&self) -> bool {
        self.exchange
            .as_ref()
            .is_some_and(|ex| ex.pending_nonempty.load(Ordering::Relaxed))
    }

    /// Publishes a fast-path hold into its home shard's engine, under the
    /// all-shard locks the caller already holds. After this, the owner's
    /// every hold is engine-visible, so the cross-shard request that follows
    /// sees the full wait-for relation.
    fn publish_fast_hold(
        &self,
        guards: &mut [MutexGuard<'_, ShardCell>],
        thread: ThreadId,
        fh: FastHold,
    ) {
        let fhome = self.router.shard_of(fh.lock);
        let seq = self.acq_seq.fetch_add(1, Ordering::Relaxed);
        let (fstack, _) = cached_site_stack(fh.site);
        guards[fhome]
            .engine
            .publish_acquired(thread, fh.lock, &fstack, fh.mode, seq);
        let holds = !guards[fhome]
            .engine
            .rag()
            .held_locks(thread.into())
            .is_empty();
        self.summary.note_published();
        self.update_route(|r| {
            r.fast_held = None;
            r.holds_mask = holds_mask_with(r.holds_mask, fhome, holds);
        });
    }

    /// The `lockMonitor` prologue: keeps requesting until the engine grants,
    /// parking on the matched signature's gate whenever it says yield.
    ///
    /// Uncontended requests that cannot interact with another shard are
    /// decided under the home shard's lock alone; the rest take the ordered
    /// all-shard snapshot path.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] when a deadlock is detected and
    /// the policy is [`DeadlockPolicy::Error`].
    pub fn before_acquire(&self, lock: LockId, site: AcquisitionSite) -> Result<(), LockError> {
        self.before_acquire_mode(lock, site, AccessMode::Exclusive)
    }

    /// [`before_acquire`](DimmunixRuntime::before_acquire) for a **shared**
    /// acquisition (the read side of [`ImmuneRwLock`]): the engine records
    /// the hold as one owner among possibly many, so every reader of a
    /// crowd carries its own RAG edge and a blocked writer waits on all of
    /// them.
    ///
    /// [`ImmuneRwLock`]: crate::ImmuneRwLock
    ///
    /// # Errors
    /// Same as [`before_acquire`](DimmunixRuntime::before_acquire).
    pub fn before_acquire_shared(
        &self,
        lock: LockId,
        site: AcquisitionSite,
    ) -> Result<(), LockError> {
        self.before_acquire_mode(lock, site, AccessMode::Shared)
    }

    fn before_acquire_mode(
        &self,
        lock: LockId,
        site: AcquisitionSite,
        mode: AccessMode,
    ) -> Result<(), LockError> {
        let thread = self.route().id;
        let (stack, site_key) = cached_site_stack(site);
        // Foreign-antibody gate: this acquisition's position is local
        // evidence that may activate quarantined imports. Runs before any
        // shard lock is taken (activation appends under the all-shard
        // lock), so the antibody can refuse *this very request* below.
        self.feed_exchange(&stack);
        let home = self.router.shard_of(lock);

        // No-engine fast path: a hold-free requester whose site provably
        // appears in no history signature and whom no yield record names as
        // a blocker cannot close a cycle and cannot occupy an avoidance
        // slot, so the grant is decided by one seqlock-consistent read of
        // the admission summary — no shard lock at all. Any doubt (seqlock
        // retry exhaustion, bloom hit, blocker hit, relevant park) falls
        // back to the engine paths below, which remain the oracle.
        if self.options.config.lock_free_admission
            && self.try_fast_admit(lock, site, mode, site_key)
        {
            return Ok(());
        }

        loop {
            let route = self.route();
            // Thread-local half of the eligibility predicate; the parked
            // half ([`locked_gate_clear`](Self::locked_gate_clear)) is read
            // *under the home shard's lock* below — parking a thread
            // requires every shard lock (including home), so the answer
            // cannot change while the fast path holds it. A pending
            // fast-path hold forces the cross path, which publishes it into
            // the engine before requesting.
            let fast_pending = route.fast_held;
            let thread_local_ok = fast_pending.is_none()
                && fast_path_eligible(route.holds_mask, route.stale_shard, false, home);

            // Fast path: decide inside the home shard when neither detection
            // nor avoidance can need another shard's state.
            let mut outcome = None;
            if thread_local_ok {
                let mut cell = sync::lock(&self.shards[home]);
                if self.locked_gate_clear(thread.into()) {
                    if let LocalDecision::Decided(o) =
                        try_request_local(&mut cell.engine, thread, lock, &stack, mode)
                    {
                        outcome = Some(o);
                    }
                }
            }

            // Cross-shard path: all shard locks in ascending index order,
            // decision over the merged view, wake-ups and gate sampling
            // while the locks are still held.
            let mut parked_gate: Option<(Arc<SignatureGate>, u64)> = None;
            let outcome = match outcome {
                Some(o) => o,
                None => {
                    let mut guards: Vec<MutexGuard<'_, ShardCell>> =
                        self.shards.iter().map(sync::lock).collect();
                    if let Some(fh) = fast_pending {
                        self.publish_fast_hold(&mut guards, thread, fh);
                    }
                    let o = {
                        let mut engines: Vec<&mut Dimmunix> =
                            guards.iter_mut().map(|g| &mut g.engine).collect();
                        request_cross_shard(
                            &mut engines,
                            &self.router,
                            thread,
                            lock,
                            &stack,
                            mode,
                            route.stale_shard,
                        )
                    };
                    let mut pending: Vec<SignatureId> = Vec::new();
                    for g in guards.iter_mut() {
                        pending.extend(g.engine.take_pending_wakeups());
                    }
                    if !pending.is_empty() {
                        self.notify_signatures(&pending);
                    }
                    if let RequestOutcome::Yield { signature } = &o {
                        // Sample the gate generation before the shard locks
                        // are dropped: a release that happens right after
                        // cannot be lost.
                        let gate = self.gate(*signature);
                        let observed = *sync::lock(&gate.lock);
                        parked_gate = Some((gate, observed));
                    }
                    o
                }
            };

            let next_stale = stale_shard_after(
                &outcome,
                route.stale_shard,
                home,
                self.options.config.is_disabled(),
            );
            if next_stale != route.stale_shard {
                self.update_route(|r| r.stale_shard = next_stale);
            }

            match outcome {
                RequestOutcome::Granted | RequestOutcome::GrantedReentrant => return Ok(()),
                RequestOutcome::DeadlockDetected { signature, .. } => {
                    // Contribute-back: the new antibody is in the shared
                    // history; push the fleet pack before surfacing.
                    self.export_contribution();
                    return match self.options.deadlock_policy {
                        DeadlockPolicy::Error => Err(LockError::WouldDeadlock {
                            signature,
                            lock,
                            site,
                            owner: thread.into(),
                            spawn_site: None,
                        }),
                        DeadlockPolicy::Block => Ok(()),
                    };
                }
                RequestOutcome::Yield { .. } => {
                    let (gate, observed) = parked_gate.expect("yield decided on the cross path");
                    let mut gen = sync::lock(&gate.lock);
                    while *gen == observed {
                        // The timeout is a belt-and-braces guard against a
                        // wake-up that raced with gate creation; correctness
                        // does not depend on its value.
                        let (g, timed_out) =
                            sync::wait_timeout(&gate.cv, gen, Duration::from_millis(50));
                        gen = g;
                        if timed_out {
                            break;
                        }
                    }
                    // Loop: retry the request (the paper's do/while loop).
                }
            }
        }
    }

    /// The `lockMonitor` epilogue. Stamps the hold with the runtime-global
    /// acquisition sequence so merged views can order holds across shards.
    /// A hold admitted on the no-engine fast path stays engine-invisible
    /// here (only a counter ticks); it is published on demand if the owner
    /// ever takes the slow path while still holding it.
    pub fn after_acquire(&self, lock: LockId) {
        let route = self.route();
        if route.fast_held.map(|fh| fh.lock) == Some(lock) {
            self.summary.note_fast_acquire();
            return;
        }
        let thread = route.id;
        let home = self.router.shard_of(lock);
        let seq = self.acq_seq.fetch_add(1, Ordering::Relaxed);
        let holds = {
            let mut cell = sync::lock(&self.shards[home]);
            cell.engine.acquired_with_seq(thread, lock, seq);
            !cell.engine.rag().held_locks(thread.into()).is_empty()
        };
        self.update_route(|r| {
            r.holds_mask = holds_mask_with(r.holds_mask, home, holds);
            // The acquisition consumed the home shard's request edge.
            r.stale_shard = stale_shard_consumed(r.stale_shard, home);
        });
    }

    /// Backs out of an approved acquisition that will not be completed
    /// (e.g. a failed `try_lock` on the underlying mutex). Backing out of a
    /// fast-path admission only drops the thread-local record — the engine
    /// never saw the request.
    pub fn cancel_acquire(&self, lock: LockId) {
        if self.clear_fast_held(lock) {
            self.summary.note_fast_cancel();
            return;
        }
        let thread = self.route().id;
        let home = self.router.shard_of(lock);
        {
            let mut cell = sync::lock(&self.shards[home]);
            cell.engine.cancel_request(thread, lock);
        }
        self.update_route(|r| {
            r.stale_shard = stale_shard_consumed(r.stale_shard, home);
        });
    }

    /// The `unlockMonitor` prologue: releases in the owning shard and wakes
    /// every signature gate the engine says must be notified. Releasing a
    /// fast-path hold is wake-free: its site was bloom-clear at admission,
    /// so no history signature mentions it and the release can
    /// de-instantiate nothing.
    pub fn before_release(&self, lock: LockId) {
        if self.clear_fast_held(lock) {
            self.summary.note_fast_release();
            return;
        }
        let thread = self.route().id;
        let home = self.router.shard_of(lock);
        let holds = self.release_in_shard(thread, lock, home);
        self.update_route(|r| {
            r.holds_mask = holds_mask_with(r.holds_mask, home, holds);
        });
    }

    /// Engine release + gate wake-ups under the home shard's lock; returns
    /// whether `thread` still holds anything on that shard.
    fn release_in_shard(&self, thread: ThreadId, lock: LockId, home: usize) -> bool {
        let mut cell = sync::lock(&self.shards[home]);
        let ShardCell {
            engine,
            wake_scratch,
            ..
        } = &mut *cell;
        engine.released_into(thread, lock, wake_scratch);
        if !cell.wake_scratch.is_empty() {
            self.notify_signatures_released(&cell.wake_scratch);
        }
        !cell.engine.rag().held_locks(thread.into()).is_empty()
    }

    /// Unregisters the calling thread (normally done when a worker exits),
    /// force-releasing anything it still holds on any shard.
    pub fn retire_current_thread(&self) {
        let thread = self.route().id;
        let mut wake: Vec<SignatureId> = Vec::new();
        {
            let mut guards: Vec<MutexGuard<'_, ShardCell>> =
                self.shards.iter().map(sync::lock).collect();
            for g in guards.iter_mut() {
                wake.extend(g.engine.unregister_owner(thread));
            }
            if !wake.is_empty() {
                self.notify_signatures(&wake);
            }
        }
        THREAD_ROUTE.with(|cell| {
            cell.borrow_mut().remove(&self.instance);
        });
    }

    // ------------------------------------------------------------------
    // The task API: poll-based hooks for async substrates
    // ------------------------------------------------------------------
    //
    // Async tasks are multiplexed onto a small pool of OS worker threads, so
    // a task-level deadlock (task A holds lock 1 and awaits lock 2 while
    // task B holds lock 2 and awaits lock 1) is invisible to the
    // thread-keyed hooks above whenever the tasks share a worker. These
    // hooks key the engine by [`OwnerId::Task`] instead, and replace the
    // blocking yield loop of [`before_acquire`](Self::before_acquire) with a
    // single-shot decision: a `Yield` registers the task's waker on the
    // signature and surfaces as [`TaskAcquire::Parked`], so the calling
    // future returns `Poll::Pending` instead of parking an OS thread.

    /// Registers a new async task with the engine and returns its identity.
    /// `spawn_site` (the source location of the `spawn` call, when the
    /// executor records one) is carried into
    /// [`LockError::WouldDeadlock::spawn_site`] diagnostics.
    pub fn register_task(&self, spawn_site: Option<AcquisitionSite>) -> TaskId {
        let id = TaskId::new(self.next_task.fetch_add(1, Ordering::Relaxed));
        for shard in &self.shards {
            sync::lock(shard).engine.register_owner(id);
        }
        sync::lock(&self.task_routes).insert(
            id,
            TaskRoute {
                spawn_site,
                ..TaskRoute::default()
            },
        );
        id
    }

    /// The spawn site recorded for `task`, if any.
    pub fn task_spawn_site(&self, task: TaskId) -> Option<AcquisitionSite> {
        sync::lock(&self.task_routes)
            .get(&task)
            .and_then(|r| r.spawn_site)
    }

    fn task_route(&self, task: TaskId) -> TaskRoute {
        sync::lock(&self.task_routes)
            .get(&task)
            .copied()
            .unwrap_or_default()
    }

    fn update_task_route(&self, task: TaskId, f: impl FnOnce(&mut TaskRoute)) {
        if let Some(r) = sync::lock(&self.task_routes).get_mut(&task) {
            f(r);
        }
    }

    /// Non-blocking analogue of [`before_acquire`](Self::before_acquire)
    /// for an **exclusive** task acquisition. One engine decision per call:
    /// [`TaskAcquire::Parked`] means the future must return
    /// `Poll::Pending` — `waker` has been registered on the signature and
    /// fires when the park may be over, whereupon the future calls this
    /// again (the paper's `do { … } while (sigId >= 0)` loop, driven by the
    /// executor instead of a condition variable).
    pub fn task_begin_acquire(
        &self,
        task: TaskId,
        lock: LockId,
        site: AcquisitionSite,
        waker: &Waker,
    ) -> TaskAcquire {
        self.task_begin_acquire_mode(task, lock, site, AccessMode::Exclusive, waker)
    }

    /// [`task_begin_acquire`](Self::task_begin_acquire) with an explicit
    /// access mode ([`AccessMode::Shared`] for the read side of the async
    /// rwlock).
    pub fn task_begin_acquire_mode(
        &self,
        task: TaskId,
        lock: LockId,
        site: AcquisitionSite,
        mode: AccessMode,
        waker: &Waker,
    ) -> TaskAcquire {
        let owner = OwnerId::Task(task);
        let (stack, _) = cached_site_stack(site);
        // Same foreign-antibody gate as the thread path.
        self.feed_exchange(&stack);
        let home = self.router.shard_of(lock);
        let route = self.task_route(task);
        let task_local_ok = fast_path_eligible(route.holds_mask, route.stale_shard, false, home);

        // Fast path: decide inside the home shard when neither detection nor
        // avoidance can need another shard's state. The local path cannot
        // yield (a yield needs the requesting position in the history, which
        // forces the cross-shard path), so no waker registration is needed.
        let mut outcome = None;
        if task_local_ok {
            let mut cell = sync::lock(&self.shards[home]);
            if self.locked_gate_clear(owner) {
                if let LocalDecision::Decided(o) =
                    try_request_local(&mut cell.engine, owner, lock, &stack, mode)
                {
                    if matches!(o, RequestOutcome::Yield { .. }) {
                        // Unreachable by construction; fall through to the
                        // cross-shard path, which can register the waker
                        // race-free under the all-shard lock.
                        debug_assert!(false, "local fast path yielded");
                    } else {
                        outcome = Some(o);
                    }
                }
            }
        }

        let outcome = match outcome {
            Some(o) => o,
            None => {
                let mut guards: Vec<MutexGuard<'_, ShardCell>> =
                    self.shards.iter().map(sync::lock).collect();
                let o = {
                    let mut engines: Vec<&mut Dimmunix> =
                        guards.iter_mut().map(|g| &mut g.engine).collect();
                    request_cross_shard(
                        &mut engines,
                        &self.router,
                        owner,
                        lock,
                        &stack,
                        mode,
                        route.stale_shard,
                    )
                };
                let mut pending: Vec<SignatureId> = Vec::new();
                for g in guards.iter_mut() {
                    pending.extend(g.engine.take_pending_wakeups());
                }
                if !pending.is_empty() {
                    self.notify_signatures(&pending);
                }
                if let RequestOutcome::Yield { signature } = &o {
                    // Register the waker while every shard lock is still
                    // held: a release that would wake this signature needs a
                    // shard lock, so the wake-up cannot be lost. At most one
                    // entry per task: a re-park refreshes the waker in place
                    // (keeping its queue turn) instead of duplicating it.
                    let mut parked = sync::lock(&self.task_wakers);
                    let queue = parked.entry(*signature).or_default();
                    match queue.iter_mut().find(|(t, _)| *t == task) {
                        Some((_, w)) => *w = waker.clone(),
                        None => queue.push_back((task, waker.clone())),
                    }
                }
                o
            }
        };

        let next_stale = stale_shard_after(
            &outcome,
            route.stale_shard,
            home,
            self.options.config.is_disabled(),
        );
        if next_stale != route.stale_shard {
            self.update_task_route(task, |r| r.stale_shard = next_stale);
        }

        match outcome {
            RequestOutcome::Granted | RequestOutcome::GrantedReentrant => TaskAcquire::Granted,
            RequestOutcome::Yield { signature } => TaskAcquire::Parked { signature },
            RequestOutcome::DeadlockDetected { signature, .. } => {
                self.export_contribution();
                match self.options.deadlock_policy {
                    DeadlockPolicy::Error => TaskAcquire::WouldDeadlock(LockError::WouldDeadlock {
                        signature,
                        lock,
                        site,
                        owner,
                        spawn_site: route.spawn_site,
                    }),
                    // Paper-faithful: proceed and let the tasks freeze once;
                    // the signature is persisted, so the next run is immune.
                    DeadlockPolicy::Block => TaskAcquire::Granted,
                }
            }
        }
    }

    /// The task analogue of [`after_acquire`](Self::after_acquire): records
    /// the completed acquisition, stamped with the runtime-global sequence.
    pub fn task_finish_acquire(&self, task: TaskId, lock: LockId) {
        let owner = OwnerId::Task(task);
        let home = self.router.shard_of(lock);
        let seq = self.acq_seq.fetch_add(1, Ordering::Relaxed);
        let holds = {
            let mut cell = sync::lock(&self.shards[home]);
            cell.engine.acquired_with_seq(owner, lock, seq);
            !cell.engine.rag().held_locks(owner).is_empty()
        };
        self.update_task_route(task, |r| {
            r.holds_mask = holds_mask_with(r.holds_mask, home, holds);
            r.stale_shard = stale_shard_consumed(r.stale_shard, home);
        });
    }

    /// Backs out of an approved task acquisition that will not be completed
    /// (the acquiring future was dropped between approval and completion —
    /// e.g. a select! raced it against a timeout).
    pub fn task_cancel_acquire(&self, task: TaskId, lock: LockId) {
        let owner = OwnerId::Task(task);
        let home = self.router.shard_of(lock);
        let parked_on = {
            let mut cell = sync::lock(&self.shards[home]);
            let sig = cell.engine.rag().yielding(owner).map(|y| y.signature);
            cell.engine.cancel_request(owner, lock);
            sig
        };
        if let Some(sig) = parked_on {
            // The dropped future may have been the single waiter a
            // release-driven wake was handed to; drop its stale waker and
            // re-broadcast so the wake is not lost with it.
            if let Some(q) = sync::lock(&self.task_wakers).get_mut(&sig) {
                q.retain(|(t, _)| *t != task);
            }
            self.notify_signatures(&[sig]);
        }
        self.update_task_route(task, |r| {
            r.stale_shard = stale_shard_consumed(r.stale_shard, home);
        });
    }

    /// The task analogue of [`before_release`](Self::before_release):
    /// releases in the owning shard and wakes every parked thread and task
    /// the engine says must be notified.
    pub fn task_release(&self, task: TaskId, lock: LockId) {
        let owner = OwnerId::Task(task);
        let home = self.router.shard_of(lock);
        let holds = {
            let mut cell = sync::lock(&self.shards[home]);
            let ShardCell {
                engine,
                wake_scratch,
                ..
            } = &mut *cell;
            engine.released_into(owner, lock, wake_scratch);
            if !cell.wake_scratch.is_empty() {
                self.notify_signatures_released(&cell.wake_scratch);
            }
            !cell.engine.rag().held_locks(owner).is_empty()
        };
        self.update_task_route(task, |r| {
            r.holds_mask = holds_mask_with(r.holds_mask, home, holds);
        });
    }

    /// Unregisters a completed task, force-releasing anything it still
    /// holds on any shard (a guard leaked across task teardown).
    pub fn retire_task(&self, task: TaskId) {
        let owner = OwnerId::Task(task);
        let mut wake: Vec<SignatureId> = Vec::new();
        {
            let mut guards: Vec<MutexGuard<'_, ShardCell>> =
                self.shards.iter().map(sync::lock).collect();
            for g in guards.iter_mut() {
                wake.extend(g.engine.unregister_owner(owner));
            }
            if !wake.is_empty() {
                self.notify_signatures(&wake);
            }
        }
        sync::lock(&self.task_routes).remove(&task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_get_distinct_ids() {
        let rt = DimmunixRuntime::new();
        let main_id = rt.current_thread();
        let rt2 = rt.clone();
        let other = std::thread::spawn(move || rt2.current_thread())
            .join()
            .unwrap();
        assert_ne!(main_id, other);
        // Repeated calls on the same thread return the same id.
        assert_eq!(rt.current_thread(), main_id);
    }

    #[test]
    fn lock_ids_are_unique() {
        let rt = DimmunixRuntime::new();
        let a = rt.allocate_lock();
        let b = rt.allocate_lock();
        assert_ne!(a, b);
    }

    #[test]
    fn uncontended_acquire_release_roundtrip() {
        let rt = DimmunixRuntime::new();
        let lock = rt.allocate_lock();
        rt.before_acquire(lock, acquire_site_for_test(1)).unwrap();
        rt.after_acquire(lock);
        rt.before_release(lock);
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, 1);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.yields, 0);
    }

    #[test]
    fn sharded_runtime_roundtrips_across_shards() {
        let rt = DimmunixRuntime::with_options(RuntimeOptions {
            shards: 8,
            ..RuntimeOptions::default()
        });
        assert_eq!(rt.shard_count(), 8);
        // Nested acquisitions across several shards, then release in
        // reverse order; everything must balance.
        let locks: Vec<LockId> = (0..6).map(|_| rt.allocate_lock()).collect();
        for (i, l) in locks.iter().enumerate() {
            rt.before_acquire(*l, acquire_site_for_test(i as u32))
                .unwrap();
            rt.after_acquire(*l);
        }
        for l in locks.iter().rev() {
            rt.before_release(*l);
        }
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, 6);
        assert_eq!(stats.releases, 6);
        assert_eq!(stats.deadlocks_detected, 0);
    }

    #[test]
    fn deadlock_policy_error_reports_would_deadlock() {
        // Build the AB/BA deadlock with two OS threads synchronized by
        // channels so the interleaving is deterministic.
        use std::sync::mpsc;
        let rt = DimmunixRuntime::new();
        let la = rt.allocate_lock();
        let lb = rt.allocate_lock();

        let (to_t2, from_t1) = mpsc::channel::<()>();
        let (to_t1, from_t2) = mpsc::channel::<()>();

        let rt1 = rt.clone();
        let t1 = std::thread::spawn(move || {
            rt1.before_acquire(la, AcquisitionSite::new("t1.outer", "rt.rs", 1))
                .unwrap();
            rt1.after_acquire(la);
            to_t2.send(()).unwrap();
            from_t2.recv().unwrap();
            // B is held by t2; this request parks or errors only if a cycle
            // forms; since t2 errors out first, just try and release.
            let r = rt1.before_acquire(lb, AcquisitionSite::new("t1.inner", "rt.rs", 2));
            if r.is_ok() {
                rt1.after_acquire(lb);
                rt1.before_release(lb);
            }
            rt1.before_release(la);
        });

        let rt2 = rt.clone();
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            from_t1.recv().unwrap();
            rt2.before_acquire(lb, AcquisitionSite::new("t2.outer", "rt.rs", 3))?;
            rt2.after_acquire(lb);
            // t1 holds A and is (or will be) waiting for B: requesting A now
            // closes the cycle.
            std::thread::sleep(Duration::from_millis(50));
            let r = rt2.before_acquire(la, AcquisitionSite::new("t2.inner", "rt.rs", 4));
            to_t1.send(()).ok();
            rt2.before_release(lb);
            r
        });

        // t2 signals t1 only after its own attempt, so order the handshake:
        // t1 waits for t2's token before requesting B. To avoid a real hang
        // when the engine lets both proceed, t2 sends the token right after
        // its attempt (above) — by then the cycle either formed or not.
        // Deliver the token for t1 released by t2 above.
        t1.join().unwrap();
        let result = t2.join().unwrap();
        // Exactly one of the two inner acquisitions must have been refused,
        // and the signature must be in the history.
        match result {
            Err(LockError::WouldDeadlock { .. }) => {}
            Ok(()) => {
                // The schedule did not interleave adversarially this time;
                // that is acceptable (no deadlock formed), but then no
                // signature must have been recorded either.
            }
        }
        let history = rt.history();
        let stats = rt.stats();
        assert_eq!(stats.deadlocks_detected as usize, history.len());
    }

    fn acquire_site_for_test(line: u32) -> AcquisitionSite {
        AcquisitionSite::new("test.site", "runtime_test.rs", line)
    }

    /// End-to-end lazy activation on real threads: process A detects (here:
    /// is trained with) a signature and exports a pack; process B imports
    /// it under a *different compilation* (all lines shifted), keeps it
    /// quarantined until both outer sites have been observed locally, and
    /// then parks the thread whose acquisition would re-instantiate the bug.
    #[test]
    fn imported_antibody_activates_lazily_and_parks() {
        let dir = std::env::temp_dir().join(format!("dimmunix-exch-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("fleet.pack");

        // Process A: same program compiled with different line numbers.
        let a_site_a = AcquisitionSite::new("outerA", "park.rs", 901);
        let a_site_b = AcquisitionSite::new("outerB", "park.rs", 902);
        let rt_a = DimmunixRuntime::builder()
            .exchange(ExchangeOptions::new("proc-a").export(&pack_path))
            .build();
        rt_a.add_signature(Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![
                dimmunix_core::SignaturePair::new(
                    a_site_a.to_call_stack(),
                    a_site_a.to_call_stack(),
                ),
                dimmunix_core::SignaturePair::new(
                    a_site_b.to_call_stack(),
                    a_site_b.to_call_stack(),
                ),
            ],
        ));
        assert!(rt_a.export_contribution());
        assert_eq!(rt_a.exchange_stats().unwrap().exported, 1);

        // Process B imports the pack; nothing activates at construction
        // because B's history proves no positions yet.
        let rt = DimmunixRuntime::builder()
            .exchange(ExchangeOptions::new("proc-b").import(&pack_path))
            .build();
        let stats = rt.exchange_stats().unwrap();
        assert_eq!(stats.imported, 1);
        assert_eq!(stats.pending, 1);
        assert_eq!(stats.activated, 0);
        assert!(rt.history().is_empty(), "quarantine must not touch history");

        // B's own build of the sites.
        let site_a = AcquisitionSite::new("outerA", "park.rs", 11);
        let site_b = AcquisitionSite::new("outerB", "park.rs", 12);
        let la = rt.allocate_lock();
        let lb = rt.allocate_lock();

        // Main thread holds A at siteA: first outer site observed.
        rt.before_acquire(la, site_a).unwrap();
        rt.after_acquire(la);
        assert_eq!(rt.exchange_stats().unwrap().pending, 1);

        // Waiter requests B at siteB: the observation activates the
        // antibody before the engine decides, so this very request parks.
        let rt2 = rt.clone();
        let waiter = std::thread::spawn(move || {
            rt2.before_acquire(lb, site_b).unwrap();
            rt2.after_acquire(lb);
            rt2.before_release(lb);
        });
        std::thread::sleep(Duration::from_millis(120));
        let stats = rt.exchange_stats().unwrap();
        assert_eq!(stats.activated, 1);
        assert_eq!(stats.pending, 0);
        assert!(rt.stats().yields >= 1, "imported antibody should park");
        assert_eq!(rt.stats().deadlocks_detected, 0);
        rt.before_release(la);
        waiter.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Startup screening: outer positions proven by the replayed local
    /// history activate matching imports before the first acquisition,
    /// while a missing import file is silently skipped.
    #[test]
    fn startup_import_screens_against_local_history() {
        let dir = std::env::temp_dir().join(format!("dimmunix-exch-boot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("fleet.pack");

        let local_a = AcquisitionSite::new("outerA", "boot.rs", 5);
        let local_b = AcquisitionSite::new("outerB", "boot.rs", 6);
        let local_sig = |inner: &'static str| {
            Signature::new(
                dimmunix_core::SignatureKind::Deadlock,
                vec![
                    dimmunix_core::SignaturePair::new(
                        local_a.to_call_stack(),
                        AcquisitionSite::new(inner, "boot.rs", 7).to_call_stack(),
                    ),
                    dimmunix_core::SignaturePair::new(
                        local_b.to_call_stack(),
                        AcquisitionSite::new(inner, "boot.rs", 8).to_call_stack(),
                    ),
                ],
            )
        };
        // The exporter ships a *different* bug over the same outer sites,
        // rendered at foreign line numbers.
        let rt_a = DimmunixRuntime::builder()
            .exchange(ExchangeOptions::new("proc-a").export(&pack_path))
            .build();
        let foreign_a = AcquisitionSite::new("outerA", "boot.rs", 505);
        let foreign_b = AcquisitionSite::new("outerB", "boot.rs", 506);
        rt_a.add_signature(Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![
                dimmunix_core::SignaturePair::new(
                    foreign_a.to_call_stack(),
                    AcquisitionSite::new("innerX", "boot.rs", 507).to_call_stack(),
                ),
                dimmunix_core::SignaturePair::new(
                    foreign_b.to_call_stack(),
                    AcquisitionSite::new("innerX", "boot.rs", 508).to_call_stack(),
                ),
            ],
        ));
        assert!(rt_a.export_contribution());

        let mut history = dimmunix_core::History::new();
        history.add(local_sig("innerLocal"));
        let rt = DimmunixRuntime::builder()
            .history(history)
            .exchange(
                ExchangeOptions::new("proc-b")
                    .import(&pack_path)
                    .import(dir.join("never-written.pack")),
            )
            .build();
        let stats = rt.exchange_stats().unwrap();
        assert_eq!(stats.imported, 1);
        assert_eq!(stats.activated, 1, "local history vouches for both sites");
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.quarantined_packs, 0, "missing file is not an error");
        assert_eq!(rt.history().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A tampered pack is rejected whole at startup and quarantined; the
    /// runtime keeps working with an empty pending set.
    #[test]
    fn tampered_import_pack_is_quarantined_at_startup() {
        let dir = std::env::temp_dir().join(format!("dimmunix-exch-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("fleet.pack");
        let rt_a = DimmunixRuntime::builder()
            .exchange(ExchangeOptions::new("proc-a").export(&pack_path))
            .build();
        let s = AcquisitionSite::new("outerA", "bad.rs", 1);
        rt_a.add_signature(Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![dimmunix_core::SignaturePair::new(
                s.to_call_stack(),
                s.to_call_stack(),
            )],
        ));
        assert!(rt_a.export_contribution());
        let text = std::fs::read_to_string(&pack_path).unwrap();
        std::fs::write(
            &pack_path,
            text.replace("\"signature_count\": 1", "\"signature_count\": 2"),
        )
        .unwrap();

        let rt = DimmunixRuntime::builder()
            .exchange(ExchangeOptions::new("proc-b").import(&pack_path))
            .build();
        let stats = rt.exchange_stats().unwrap();
        assert_eq!(stats.imported, 0);
        assert_eq!(stats.quarantined_packs, 1);
        assert!(!pack_path.exists(), "bad pack moved aside");
        assert!(dir.join("fleet.pack.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn yield_parks_and_release_wakes() {
        // Train a runtime so that (siteA, siteB) is a known signature, then
        // check that a thread requesting at siteB parks while another holds
        // siteA, and proceeds after the release.
        let site_a = AcquisitionSite::new("outerA", "park.rs", 1);
        let site_b = AcquisitionSite::new("outerB", "park.rs", 2);
        let sig = Signature::new(
            dimmunix_core::SignatureKind::Deadlock,
            vec![
                dimmunix_core::SignaturePair::new(site_a.to_call_stack(), site_a.to_call_stack()),
                dimmunix_core::SignaturePair::new(site_b.to_call_stack(), site_b.to_call_stack()),
            ],
        );
        let rt = DimmunixRuntime::new();
        rt.add_signature(sig);
        let la = rt.allocate_lock();
        let lb = rt.allocate_lock();

        // Main thread holds A acquired at siteA.
        rt.before_acquire(la, site_a).unwrap();
        rt.after_acquire(la);

        let rt2 = rt.clone();
        let waiter = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            rt2.before_acquire(lb, site_b).unwrap();
            rt2.after_acquire(lb);
            rt2.before_release(lb);
            start.elapsed()
        });

        // Give the waiter time to park, then release A to wake it.
        std::thread::sleep(Duration::from_millis(120));
        assert!(rt.stats().yields >= 1, "waiter should have parked");
        rt.before_release(la);
        let waited = waiter.join().unwrap();
        assert!(
            waited >= Duration::from_millis(80),
            "waiter should have been parked for a while, waited {waited:?}"
        );
    }
}
