//! Poison-transparent helpers over `std::sync` primitives.
//!
//! The build environment has no crates.io access, so the runtime uses the
//! standard library's `Mutex`/`Condvar` instead of `parking_lot`. Lock
//! poisoning is deliberately ignored (matching `parking_lot` semantics): a
//! panic in one application thread must not take down the process-wide
//! immunity runtime, whose invariants are re-established on every engine
//! entry anyway.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Locks `m`, recovering the guard from a poisoned state.
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Consumes `m` and returns the protected value, ignoring poisoning.
pub(crate) fn into_inner<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `rw`, recovering the guard from a poisoned state.
pub(crate) fn read<T: ?Sized>(rw: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rw.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `rw`, recovering the guard from a poisoned state.
pub(crate) fn write<T: ?Sized>(rw: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rw.write().unwrap_or_else(PoisonError::into_inner)
}

/// Consumes `rw` and returns the protected value, ignoring poisoning.
pub(crate) fn rwlock_into_inner<T>(rw: RwLock<T>) -> T {
    rw.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard from a poisoned state.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv` with a timeout; returns the guard and whether it timed out.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, result)) => (g, result.timed_out()),
        Err(poisoned) => {
            let (g, result) = poisoned.into_inner();
            (g, result.timed_out())
        }
    }
}
