//! `ImmuneMutex` — a drop-in `std::sync::Mutex` with deadlock immunity.
//!
//! Rust offers no way to interpose on `std::sync::Mutex`, so immunity is
//! provided by a wrapper type: every acquisition calls the runtime's
//! `before_acquire` / `after_acquire` hooks and every release (guard drop)
//! calls `before_release`, exactly where the paper's modified Dalvik
//! routines call the Dimmunix core.
//!
//! The type is a **drop-in replacement**: [`ImmuneMutex::new`] takes only
//! the protected value (attaching to the process-global
//! [`DimmunixRuntime`](crate::DimmunixRuntime)), and [`ImmuneMutex::lock`]
//! is `#[track_caller]`, deriving its acquisition site from the caller's
//! source location. Migrating a program from `std::sync` is a rename plus
//! handling [`LockError`] where a deadlock would have hung. The explicit
//! variants ([`new_in`](ImmuneMutex::new_in),
//! [`lock_at`](ImmuneMutex::lock_at)) remain for multi-runtime tests and
//! deterministic site identity.
//!
//! The lock id allocated at construction determines the engine shard whose
//! mutex screens this lock's acquisitions (see
//! [`RuntimeOptions::shards`](crate::RuntimeOptions::shards)): two
//! `ImmuneMutex`es on different shards synchronize through entirely
//! disjoint engine state on the hot path.

use crate::runtime::{DimmunixRuntime, LockError};
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::LockId;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard};

/// A mutex whose acquisitions are screened by Dimmunix.
///
/// ```
/// use dimmunix_rt::ImmuneMutex;
///
/// let counter = ImmuneMutex::new(0u32);
/// {
///     let mut guard = counter.lock()?;
///     *guard += 1;
/// }
/// assert_eq!(*counter.lock()?, 1);
/// # Ok::<(), dimmunix_rt::LockError>(())
/// ```
pub struct ImmuneMutex<T: ?Sized> {
    runtime: Arc<DimmunixRuntime>,
    lock_id: LockId,
    inner: Mutex<T>,
}

impl<T> ImmuneMutex<T> {
    /// Creates an immune mutex protected by the process-global runtime
    /// ([`DimmunixRuntime::global`]) — the drop-in constructor.
    pub fn new(value: T) -> Self {
        Self::new_in(&DimmunixRuntime::global(), value)
    }

    /// Creates an immune mutex protected by an explicit runtime
    /// (multi-runtime tests, benches, paper experiments).
    pub fn new_in(runtime: &Arc<DimmunixRuntime>, value: T) -> Self {
        ImmuneMutex {
            runtime: runtime.clone(),
            lock_id: runtime.allocate_lock(),
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        sync::into_inner(self.inner)
    }
}

impl<T: ?Sized> ImmuneMutex<T> {
    /// The engine-level identifier of this lock.
    pub fn lock_id(&self) -> LockId {
        self.lock_id
    }

    /// Acquires the mutex. The acquisition site is the caller's source
    /// location (`#[track_caller]`); use [`lock_at`](ImmuneMutex::lock_at)
    /// to pin an explicit site.
    ///
    /// The calling thread may be parked by the avoidance module if acquiring
    /// here could re-instantiate a known deadlock signature.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] if the acquisition would complete
    /// a deadlock cycle and the runtime's policy is
    /// [`DeadlockPolicy::Error`](crate::DeadlockPolicy::Error).
    #[track_caller]
    pub fn lock(&self) -> Result<ImmuneMutexGuard<'_, T>, LockError> {
        self.lock_at(AcquisitionSite::here())
    }

    /// Acquires the mutex, identifying the acquisition by an explicit
    /// `site` (use [`acquire_site!`](crate::acquire_site)). Deterministic
    /// tests and the paper experiments use this to keep site identity
    /// stable across refactors and runs.
    ///
    /// # Errors
    /// Same as [`lock`](ImmuneMutex::lock).
    pub fn lock_at(&self, site: AcquisitionSite) -> Result<ImmuneMutexGuard<'_, T>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        let guard = sync::lock(&self.inner);
        self.runtime.after_acquire(self.lock_id);
        Ok(ImmuneMutexGuard {
            runtime: &self.runtime,
            lock_id: self.lock_id,
            guard: Some(guard),
        })
    }

    /// Attempts to acquire the mutex without blocking on the underlying
    /// lock, with the caller's source location as the site. The Dimmunix
    /// request is still issued (and may park the thread); only contention
    /// on the real mutex is non-blocking.
    ///
    /// # Errors
    /// Same as [`lock`](ImmuneMutex::lock).
    #[track_caller]
    pub fn try_lock(&self) -> Result<Option<ImmuneMutexGuard<'_, T>>, LockError> {
        self.try_lock_at(AcquisitionSite::here())
    }

    /// [`try_lock`](ImmuneMutex::try_lock) with an explicit site.
    ///
    /// # Errors
    /// Same as [`lock`](ImmuneMutex::lock).
    pub fn try_lock_at(
        &self,
        site: AcquisitionSite,
    ) -> Result<Option<ImmuneMutexGuard<'_, T>>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        // Recover from poisoning like every other acquisition path (see
        // crate::sync); only genuine contention yields `None`.
        let attempt = match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        match attempt {
            Some(guard) => {
                self.runtime.after_acquire(self.lock_id);
                Ok(Some(ImmuneMutexGuard {
                    runtime: &self.runtime,
                    lock_id: self.lock_id,
                    guard: Some(guard),
                }))
            }
            None => {
                // Back out of the approved-but-unused acquisition.
                self.runtime.cancel_acquire(self.lock_id);
                Ok(None)
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ImmuneMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneMutex")
            .field("lock_id", &self.lock_id)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for [`ImmuneMutex`]; releasing it notifies Dimmunix before the
/// underlying mutex is unlocked.
pub struct ImmuneMutexGuard<'a, T: ?Sized> {
    runtime: &'a Arc<DimmunixRuntime>,
    lock_id: LockId,
    guard: Option<MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for ImmuneMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for ImmuneMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for ImmuneMutexGuard<'_, T> {
    fn drop(&mut self) {
        // §4: Release() runs right before the monitor is released.
        self.runtime.before_release(self.lock_id);
        drop(self.guard.take());
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for ImmuneMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneMutexGuard")
            .field("lock_id", &self.lock_id)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_provides_mutable_access() {
        let rt = DimmunixRuntime::new();
        let m = ImmuneMutex::new_in(&rt, vec![1, 2, 3]);
        {
            let mut g = m.lock().unwrap();
            g.push(4);
        }
        assert_eq!(m.lock().unwrap().len(), 4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_increments_are_mutually_excluded() {
        let rt = DimmunixRuntime::new();
        let m = Arc::new(ImmuneMutex::new_in(&rt, 0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let mut g = m.lock().unwrap();
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 8000);
        assert_eq!(rt.stats().deadlocks_detected, 0);
    }

    #[test]
    fn try_lock_returns_none_under_contention() {
        let rt = DimmunixRuntime::new();
        let m = Arc::new(ImmuneMutex::new_in(&rt, ()));
        let g = m.lock().unwrap();
        let m2 = m.clone();
        let handle = std::thread::spawn(move || m2.try_lock().unwrap().is_none());
        assert!(handle.join().unwrap());
        drop(g);
        assert!(m.try_lock().unwrap().is_some());
    }

    #[test]
    fn lock_ids_differ_between_mutexes() {
        let rt = DimmunixRuntime::new();
        let a = ImmuneMutex::new_in(&rt, ());
        let b = ImmuneMutex::new_in(&rt, ());
        assert_ne!(a.lock_id(), b.lock_id());
    }

    #[test]
    fn drop_in_constructor_uses_the_global_runtime() {
        // Only touch state that tolerates sharing with every other test in
        // this binary: a lock/unlock round trip and the lock-id allocator.
        let m = ImmuneMutex::new("global".to_string());
        assert_eq!(m.lock().unwrap().as_str(), "global");
        let n = ImmuneMutex::new(());
        assert_ne!(m.lock_id(), n.lock_id());
    }
}
