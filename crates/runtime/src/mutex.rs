//! `ImmuneMutex` — a mutual-exclusion lock with deadlock immunity.
//!
//! Rust offers no way to interpose on `std::sync::Mutex`, so immunity is
//! provided by a wrapper type: every acquisition calls the runtime's
//! `before_acquire` / `after_acquire` hooks and every release (guard drop)
//! calls `before_release`, exactly where the paper's modified Dalvik
//! routines call the Dimmunix core.
//!
//! The lock id allocated at construction determines the engine shard whose
//! mutex screens this lock's acquisitions (see
//! [`RuntimeOptions::shards`](crate::RuntimeOptions::shards)): two
//! `ImmuneMutex`es on different shards synchronize through entirely
//! disjoint engine state on the hot path.

use crate::runtime::{DimmunixRuntime, LockError};
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::LockId;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard};

/// A mutex whose acquisitions are screened by Dimmunix.
///
/// ```
/// use dimmunix_rt::{acquire_site, DimmunixRuntime, ImmuneMutex};
///
/// let runtime = DimmunixRuntime::new();
/// let counter = ImmuneMutex::new(&runtime, 0u32);
/// {
///     let mut guard = counter.lock(acquire_site!())?;
///     *guard += 1;
/// }
/// assert_eq!(*counter.lock(acquire_site!())?, 1);
/// # Ok::<(), dimmunix_rt::LockError>(())
/// ```
pub struct ImmuneMutex<T: ?Sized> {
    runtime: Arc<DimmunixRuntime>,
    lock_id: LockId,
    inner: Mutex<T>,
}

impl<T> ImmuneMutex<T> {
    /// Creates an immune mutex protected by the given runtime.
    pub fn new(runtime: &Arc<DimmunixRuntime>, value: T) -> Self {
        ImmuneMutex {
            runtime: runtime.clone(),
            lock_id: runtime.allocate_lock(),
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        sync::into_inner(self.inner)
    }
}

impl<T: ?Sized> ImmuneMutex<T> {
    /// The engine-level identifier of this lock.
    pub fn lock_id(&self) -> LockId {
        self.lock_id
    }

    /// Acquires the mutex, identifying the acquisition by `site` (use
    /// [`acquire_site!`](crate::acquire_site)).
    ///
    /// The calling thread may be parked by the avoidance module if acquiring
    /// here could re-instantiate a known deadlock signature.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] if the acquisition would complete
    /// a deadlock cycle and the runtime's policy is
    /// [`DeadlockPolicy::Error`](crate::DeadlockPolicy::Error).
    pub fn lock(&self, site: AcquisitionSite) -> Result<ImmuneMutexGuard<'_, T>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        let guard = sync::lock(&self.inner);
        self.runtime.after_acquire(self.lock_id);
        Ok(ImmuneMutexGuard {
            runtime: &self.runtime,
            lock_id: self.lock_id,
            guard: Some(guard),
        })
    }

    /// Attempts to acquire the mutex without blocking on the underlying lock.
    /// The Dimmunix request is still issued (and may park the thread); only
    /// contention on the real mutex is non-blocking.
    ///
    /// # Errors
    /// Same as [`lock`](ImmuneMutex::lock).
    pub fn try_lock(
        &self,
        site: AcquisitionSite,
    ) -> Result<Option<ImmuneMutexGuard<'_, T>>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        // Recover from poisoning like every other acquisition path (see
        // crate::sync); only genuine contention yields `None`.
        let attempt = match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        match attempt {
            Some(guard) => {
                self.runtime.after_acquire(self.lock_id);
                Ok(Some(ImmuneMutexGuard {
                    runtime: &self.runtime,
                    lock_id: self.lock_id,
                    guard: Some(guard),
                }))
            }
            None => {
                // Back out of the approved-but-unused acquisition.
                self.runtime_cancel();
                Ok(None)
            }
        }
    }

    fn runtime_cancel(&self) {
        // `cancel_request` is not exposed on the runtime's hot path; emulate
        // it with an acquire/release pair is wrong, so go through the engine
        // hook provided for this purpose.
        self.runtime.cancel_acquire(self.lock_id);
    }
}

impl<T: fmt::Debug> fmt::Debug for ImmuneMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneMutex")
            .field("lock_id", &self.lock_id)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for [`ImmuneMutex`]; releasing it notifies Dimmunix before the
/// underlying mutex is unlocked.
pub struct ImmuneMutexGuard<'a, T: ?Sized> {
    runtime: &'a Arc<DimmunixRuntime>,
    lock_id: LockId,
    guard: Option<MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for ImmuneMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for ImmuneMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for ImmuneMutexGuard<'_, T> {
    fn drop(&mut self) {
        // §4: Release() runs right before the monitor is released.
        self.runtime.before_release(self.lock_id);
        drop(self.guard.take());
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for ImmuneMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneMutexGuard")
            .field("lock_id", &self.lock_id)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire_site;

    #[test]
    fn guard_provides_mutable_access() {
        let rt = DimmunixRuntime::new();
        let m = ImmuneMutex::new(&rt, vec![1, 2, 3]);
        {
            let mut g = m.lock(acquire_site!()).unwrap();
            g.push(4);
        }
        assert_eq!(m.lock(acquire_site!()).unwrap().len(), 4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_increments_are_mutually_excluded() {
        let rt = DimmunixRuntime::new();
        let m = Arc::new(ImmuneMutex::new(&rt, 0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let mut g = m.lock(acquire_site!()).unwrap();
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(acquire_site!()).unwrap(), 8000);
        assert_eq!(rt.stats().deadlocks_detected, 0);
    }

    #[test]
    fn try_lock_returns_none_under_contention() {
        let rt = DimmunixRuntime::new();
        let m = Arc::new(ImmuneMutex::new(&rt, ()));
        let g = m.lock(acquire_site!()).unwrap();
        let m2 = m.clone();
        let handle = std::thread::spawn(move || m2.try_lock(acquire_site!()).unwrap().is_none());
        assert!(handle.join().unwrap());
        drop(g);
        assert!(m.try_lock(acquire_site!()).unwrap().is_some());
    }

    #[test]
    fn lock_ids_differ_between_mutexes() {
        let rt = DimmunixRuntime::new();
        let a = ImmuneMutex::new(&rt, ());
        let b = ImmuneMutex::new(&rt, ());
        assert_ne!(a.lock_id(), b.lock_id());
    }
}
