//! Acquisition sites — how the real-thread runtime names program locations.
//!
//! Rust has no `dvmGetCallStack`: a library cannot cheaply capture the
//! caller's call stack at run time. The paper itself points out the fix (§4):
//! the *compiler* can hand Dimmunix a constant identifier per
//! synchronization statement, bound to the program location, and skip stack
//! retrieval entirely. The [`acquire_site!`] macro does exactly that —
//! `file!()` / `line!()` / `module_path!()` are compile-time constants — and
//! [`AcquisitionSite`] is the resulting depth-1 "call stack".

use dimmunix_core::{CallStack, Frame, SiteId};
use std::fmt;

/// A static synchronization site: the program location of a lock statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcquisitionSite {
    /// Enclosing module or function (used as the frame's method name).
    pub scope: &'static str,
    /// Source file.
    pub file: &'static str,
    /// Source line.
    pub line: u32,
}

impl AcquisitionSite {
    /// Creates a site from its components (prefer
    /// [`acquire_site!`](crate::acquire_site)).
    pub const fn new(scope: &'static str, file: &'static str, line: u32) -> Self {
        AcquisitionSite { scope, file, line }
    }

    /// Converts the site into the depth-1 call stack the engine interns.
    pub fn to_call_stack(self) -> CallStack {
        CallStack::single(Frame::new(self.scope, self.file, self.line))
    }

    /// Derives a stable numeric id for the site (the paper's compiler-id
    /// optimization, exercised by the `site_id_ablation` bench).
    pub fn to_site_id(self) -> SiteId {
        // FNV-1a over the textual location; stable across runs because it
        // depends only on the source location.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .scope
            .as_bytes()
            .iter()
            .chain(self.file.as_bytes())
            .chain(self.line.to_le_bytes().iter())
        {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SiteId::new(hash)
    }
}

impl fmt::Display for AcquisitionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.scope, self.file, self.line)
    }
}

/// Captures the current source location as an [`AcquisitionSite`].
///
/// ```
/// use dimmunix_rt::acquire_site;
/// let site = acquire_site!();
/// assert!(site.file.ends_with(".rs"));
/// ```
#[macro_export]
macro_rules! acquire_site {
    () => {
        $crate::AcquisitionSite::new(module_path!(), file!(), line!())
    };
    ($scope:expr) => {
        $crate::AcquisitionSite::new($scope, file!(), line!())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_captures_location() {
        let a = acquire_site!();
        let b = acquire_site!();
        assert_eq!(a.file, b.file);
        assert_ne!(a.line, b.line);
        assert!(a.to_string().contains(".rs"));
    }

    #[test]
    fn named_scope_overrides_module_path() {
        let s = acquire_site!("StatusBarService.expand");
        assert_eq!(s.scope, "StatusBarService.expand");
    }

    #[test]
    fn call_stack_is_depth_one_and_stable() {
        let s = AcquisitionSite::new("scope", "file.rs", 10);
        let cs = s.to_call_stack();
        assert_eq!(cs.depth(), 1);
        assert_eq!(
            cs,
            AcquisitionSite::new("scope", "file.rs", 10).to_call_stack()
        );
    }

    #[test]
    fn site_ids_are_stable_and_distinct() {
        let a = AcquisitionSite::new("scope", "file.rs", 10);
        let b = AcquisitionSite::new("scope", "file.rs", 11);
        assert_eq!(a.to_site_id(), a.to_site_id());
        assert_ne!(a.to_site_id(), b.to_site_id());
    }
}
