//! Acquisition sites — how the real-thread runtime names program locations.
//!
//! Rust has no `dvmGetCallStack`: a library cannot cheaply capture the
//! caller's call stack at run time. The paper itself points out the fix (§4):
//! the *compiler* can hand Dimmunix a constant identifier per
//! synchronization statement, bound to the program location, and skip stack
//! retrieval entirely. Two surfaces provide that identifier:
//!
//! * **Implicit** (the drop-in path): every acquisition method of the
//!   `Immune*` lock types is `#[track_caller]`, so plain `mutex.lock()`
//!   derives its site from [`std::panic::Location::caller()`] —
//!   [`AcquisitionSite::here`]. File and line are `&'static str` / `u32`
//!   compile-time constants, exactly what [`AcquisitionSite`] holds; no
//!   macro, no argument.
//! * **Explicit** (the deterministic-test path): the
//!   [`acquire_site!`](crate::acquire_site) macro, or
//!   [`AcquisitionSite::new`] with a hand-chosen scope, passed to the
//!   `*_at` acquisition variants. Paper experiments and schedule-replay
//!   tests use this so the same site identity can be pinned across runs and
//!   files.
//!
//! The two surfaces are equivalent by construction: `acquire_site!()`
//! expands to [`AcquisitionSite::here`], so an antibody learned through one
//! is matched by the other (asserted by the site-equivalence tests).

use dimmunix_core::{CallStack, Frame, SiteId};
use std::fmt;

/// Scope recorded by implicitly captured sites ([`AcquisitionSite::here`]
/// and the zero-argument [`acquire_site!`](crate::acquire_site)).
/// [`std::panic::Location`] carries no module path, so all implicit sites
/// share this constant scope; site identity is carried entirely by `file` +
/// `line`.
pub const CALLER_SCOPE: &str = "caller";

/// A static synchronization site: the program location of a lock statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcquisitionSite {
    /// Enclosing module or function (used as the frame's method name).
    pub scope: &'static str,
    /// Source file.
    pub file: &'static str,
    /// Source line.
    pub line: u32,
}

impl AcquisitionSite {
    /// Creates a site from its components (prefer
    /// [`acquire_site!`](crate::acquire_site) or [`here`](Self::here)).
    pub const fn new(scope: &'static str, file: &'static str, line: u32) -> Self {
        AcquisitionSite { scope, file, line }
    }

    /// Captures the caller's source location as a site. This is the
    /// implicit-site path: the `#[track_caller]` attribute propagates
    /// through the `Immune*` lock methods, so `mutex.lock()` records the
    /// file and line of the `lock()` call itself — the paper's
    /// compiler-provided static identifier, with `rustc` as the compiler.
    #[must_use]
    #[track_caller]
    pub fn here() -> Self {
        let loc = std::panic::Location::caller();
        AcquisitionSite::new(CALLER_SCOPE, loc.file(), loc.line())
    }

    /// Converts the site into the depth-1 call stack the engine interns.
    pub fn to_call_stack(self) -> CallStack {
        CallStack::single(Frame::new(self.scope, self.file, self.line))
    }

    /// Derives a stable numeric id for the site (the paper's compiler-id
    /// optimization, exercised by the `site_id_ablation` bench).
    pub fn to_site_id(self) -> SiteId {
        // FNV-1a over the textual location; stable across runs because it
        // depends only on the source location.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .scope
            .as_bytes()
            .iter()
            .chain(self.file.as_bytes())
            .chain(self.line.to_le_bytes().iter())
        {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SiteId::new(hash)
    }
}

impl fmt::Display for AcquisitionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.scope, self.file, self.line)
    }
}

/// Captures the current source location as an [`AcquisitionSite`].
///
/// The zero-argument form is byte-for-byte equivalent to the implicit site
/// a `#[track_caller]` acquisition (`lock()`, `read()`, …) captures on the
/// same line — it expands to [`AcquisitionSite::here`]. The one-argument
/// form pins an explicit scope name, which deterministic tests use to keep
/// site identity stable across refactors.
///
/// ```
/// use dimmunix_rt::acquire_site;
/// let site = acquire_site!();
/// assert!(site.file.ends_with(".rs"));
/// let named = acquire_site!("StatusBarService.expand");
/// assert_eq!(named.scope, "StatusBarService.expand");
/// ```
#[macro_export]
macro_rules! acquire_site {
    () => {
        $crate::AcquisitionSite::here()
    };
    ($scope:expr) => {
        $crate::AcquisitionSite::new($scope, file!(), line!())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_captures_location() {
        let a = acquire_site!();
        let b = acquire_site!();
        assert_eq!(a.file, b.file);
        assert_ne!(a.line, b.line);
        assert!(a.to_string().contains(".rs"));
    }

    #[test]
    fn named_scope_overrides_module_path() {
        let s = acquire_site!("StatusBarService.expand");
        assert_eq!(s.scope, "StatusBarService.expand");
    }

    #[test]
    fn call_stack_is_depth_one_and_stable() {
        let s = AcquisitionSite::new("scope", "file.rs", 10);
        let cs = s.to_call_stack();
        assert_eq!(cs.depth(), 1);
        assert_eq!(
            cs,
            AcquisitionSite::new("scope", "file.rs", 10).to_call_stack()
        );
    }

    #[test]
    fn here_and_zero_arg_macro_are_byte_identical_on_one_line() {
        // Both captures sit on the same source line, so the equivalence of
        // the implicit (`here()`) and explicit (`acquire_site!()`) surfaces
        // is observable as plain equality — scope, file, and line all match.
        #[rustfmt::skip]
        let (implicit, explicit) = (AcquisitionSite::here(), acquire_site!());
        assert_eq!(implicit, explicit);
        assert_eq!(implicit.scope, CALLER_SCOPE);
        assert_eq!(implicit.to_call_stack(), explicit.to_call_stack());
        assert_eq!(implicit.to_site_id(), explicit.to_site_id());
    }

    #[test]
    fn track_caller_propagates_through_helpers() {
        #[track_caller]
        fn capture() -> AcquisitionSite {
            AcquisitionSite::here()
        }
        #[rustfmt::skip]
        let (through_helper, direct) = (capture(), AcquisitionSite::here());
        assert_eq!(through_helper, direct);
    }

    #[test]
    fn site_ids_are_stable_and_distinct() {
        let a = AcquisitionSite::new("scope", "file.rs", 10);
        let b = AcquisitionSite::new("scope", "file.rs", 11);
        assert_eq!(a.to_site_id(), a.to_site_id());
        assert_ne!(a.to_site_id(), b.to_site_id());
    }
}
