//! `ImmuneMonitor` — a Java-style monitor (lock + condition) with deadlock
//! immunity, including the `wait()` reacquisition path.
//!
//! §3.2 explains why intercepting `Object.wait()` matters: when a thread
//! finishes waiting it must *reacquire* the monitor, typically while still
//! holding other locks, and that reacquisition can complete a lock-inversion
//! deadlock that bytecode instrumentation never sees. `ImmuneMonitor::wait`
//! therefore releases through Dimmunix, parks on the condition variable, and
//! reacquires through Dimmunix again.
//!
//! Because the reacquiring thread typically still holds other locks, the
//! reacquisition request usually takes the runtime's cross-shard snapshot
//! path (the held locks may live on other shards than this monitor) — which
//! is exactly the case the sharded engine's merged cycle detection exists
//! for.

use crate::runtime::{DimmunixRuntime, LockError};
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::LockId;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A monitor: mutual exclusion plus `wait` / `notify`, screened by Dimmunix.
///
/// ```
/// use dimmunix_rt::ImmuneMonitor;
/// use std::sync::Arc;
///
/// let queue = Arc::new(ImmuneMonitor::new(Vec::<u32>::new()));
///
/// let producer = {
///     let queue = queue.clone();
///     std::thread::spawn(move || {
///         let mut guard = queue.enter().unwrap();
///         guard.push(42);
///         guard.notify_all();
///     })
/// };
/// producer.join().unwrap();
///
/// let mut guard = queue.enter().unwrap();
/// while guard.is_empty() {
///     guard = guard.wait_for(std::time::Duration::from_millis(10)).unwrap();
/// }
/// assert_eq!(*guard, vec![42]);
/// ```
pub struct ImmuneMonitor<T: ?Sized> {
    runtime: Arc<DimmunixRuntime>,
    lock_id: LockId,
    /// Wait-set gate: a generation counter bumped by every notification.
    /// Waiters sample the generation while still holding the monitor, so a
    /// notification issued after the monitor is released can never be lost.
    wait_gate: Mutex<u64>,
    wait_cv: Condvar,
    inner: Mutex<T>,
}

impl<T> ImmuneMonitor<T> {
    /// Creates a monitor protected by the process-global runtime
    /// ([`DimmunixRuntime::global`]) — the drop-in constructor.
    pub fn new(value: T) -> Self {
        Self::new_in(&DimmunixRuntime::global(), value)
    }

    /// Creates a monitor protected by an explicit runtime (multi-runtime
    /// tests, benches, paper experiments).
    pub fn new_in(runtime: &Arc<DimmunixRuntime>, value: T) -> Self {
        ImmuneMonitor {
            runtime: runtime.clone(),
            lock_id: runtime.allocate_lock(),
            wait_gate: Mutex::new(0),
            wait_cv: Condvar::new(),
            inner: Mutex::new(value),
        }
    }

    /// Consumes the monitor and returns the protected value.
    pub fn into_inner(self) -> T {
        sync::into_inner(self.inner)
    }
}

impl<T: ?Sized> ImmuneMonitor<T> {
    /// The engine-level identifier of this monitor.
    pub fn lock_id(&self) -> LockId {
        self.lock_id
    }

    /// Enters the monitor (the equivalent of a `synchronized` block). The
    /// acquisition site is the caller's source location (`#[track_caller]`);
    /// use [`enter_at`](ImmuneMonitor::enter_at) to pin an explicit site.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] under the error policy if the
    /// acquisition would complete a deadlock cycle.
    #[track_caller]
    pub fn enter(&self) -> Result<MonitorGuard<'_, T>, LockError> {
        self.enter_at(AcquisitionSite::here())
    }

    /// Enters the monitor with an explicit acquisition site (use
    /// [`acquire_site!`](crate::acquire_site)).
    ///
    /// # Errors
    /// Same as [`enter`](ImmuneMonitor::enter).
    pub fn enter_at(&self, site: AcquisitionSite) -> Result<MonitorGuard<'_, T>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        let guard = sync::lock(&self.inner);
        self.runtime.after_acquire(self.lock_id);
        Ok(MonitorGuard {
            monitor: self,
            guard: Some(guard),
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for ImmuneMonitor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneMonitor")
            .field("lock_id", &self.lock_id)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`ImmuneMonitor::enter`].
pub struct MonitorGuard<'a, T: ?Sized> {
    monitor: &'a ImmuneMonitor<T>,
    guard: Option<MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MonitorGuard<'a, T> {
    /// `Object.wait()`: atomically releases the monitor (through Dimmunix),
    /// waits to be notified, then reacquires the monitor (through Dimmunix —
    /// the path that catches wait-induced lock inversions). The returned
    /// guard holds the monitor again. The *reacquisition* site is the
    /// caller's source location (`#[track_caller]`); use
    /// [`wait_at`](MonitorGuard::wait_at) to pin an explicit site.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] if the *reacquisition* would
    /// complete a deadlock cycle under the error policy.
    #[track_caller]
    pub fn wait(self) -> Result<MonitorGuard<'a, T>, LockError> {
        self.wait_inner(AcquisitionSite::here(), None)
    }

    /// [`wait`](MonitorGuard::wait) with an explicit reacquisition site.
    ///
    /// # Errors
    /// Same as [`wait`](MonitorGuard::wait).
    pub fn wait_at(
        self,
        reacquire_site: AcquisitionSite,
    ) -> Result<MonitorGuard<'a, T>, LockError> {
        self.wait_inner(reacquire_site, None)
    }

    /// `Object.wait(timeout)`: like [`wait`](MonitorGuard::wait) but resumes
    /// after `timeout` even without a notification.
    ///
    /// # Errors
    /// Same as [`wait`](MonitorGuard::wait).
    #[track_caller]
    pub fn wait_for(self, timeout: Duration) -> Result<MonitorGuard<'a, T>, LockError> {
        self.wait_inner(AcquisitionSite::here(), Some(timeout))
    }

    /// [`wait_for`](MonitorGuard::wait_for) with an explicit reacquisition
    /// site.
    ///
    /// # Errors
    /// Same as [`wait`](MonitorGuard::wait).
    pub fn wait_for_at(
        self,
        reacquire_site: AcquisitionSite,
        timeout: Duration,
    ) -> Result<MonitorGuard<'a, T>, LockError> {
        self.wait_inner(reacquire_site, Some(timeout))
    }

    fn wait_inner(
        mut self,
        reacquire_site: AcquisitionSite,
        timeout: Option<Duration>,
    ) -> Result<MonitorGuard<'a, T>, LockError> {
        let monitor = self.monitor;
        // Sample the notification generation while still inside the monitor:
        // only a notifier that runs *after* we release can bump it, so the
        // wake-up cannot be lost.
        let observed = *sync::lock(&monitor.wait_gate);
        // Release through Dimmunix, then really release the monitor. The
        // guard's Drop is bypassed because we already take the inner guard.
        monitor.runtime.before_release(monitor.lock_id);
        drop(self.guard.take());
        // `self` now holds no guard; its Drop is a no-op.
        drop(self);

        // Wait for a notification or the timeout, without holding the
        // monitor (Java wait-set semantics).
        {
            let mut gen = sync::lock(&monitor.wait_gate);
            let deadline = timeout.map(|t| std::time::Instant::now() + t);
            while *gen == observed {
                match deadline {
                    Some(d) => {
                        let remaining = d.saturating_duration_since(std::time::Instant::now());
                        if remaining.is_zero() {
                            break;
                        }
                        let (g, timed_out) = sync::wait_timeout(&monitor.wait_cv, gen, remaining);
                        gen = g;
                        if timed_out {
                            break;
                        }
                    }
                    None => gen = sync::wait(&monitor.wait_cv, gen),
                }
            }
        }

        // Reacquire the monitor through Dimmunix — the interception the
        // paper adds to waitMonitor so wait-induced inversions are covered.
        monitor
            .runtime
            .before_acquire(monitor.lock_id, reacquire_site)?;
        let guard = sync::lock(&monitor.inner);
        monitor.runtime.after_acquire(monitor.lock_id);
        Ok(MonitorGuard {
            monitor,
            guard: Some(guard),
        })
    }

    /// `Object.notify()`: wakes a thread waiting on this monitor. (Like the
    /// JVM, waiters may also wake spuriously; callers re-check their
    /// condition in a loop.)
    pub fn notify_one(&self) {
        let mut gen = sync::lock(&self.monitor.wait_gate);
        *gen += 1;
        self.monitor.wait_cv.notify_one();
    }

    /// `Object.notifyAll()`: wakes every thread waiting on this monitor.
    pub fn notify_all(&self) {
        let mut gen = sync::lock(&self.monitor.wait_gate);
        *gen += 1;
        self.monitor.wait_cv.notify_all();
    }
}

impl<T: ?Sized> Deref for MonitorGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MonitorGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MonitorGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.is_some() {
            self.monitor.runtime.before_release(self.monitor.lock_id);
            drop(self.guard.take());
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MonitorGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorGuard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_and_mutate() {
        let rt = DimmunixRuntime::new();
        let m = ImmuneMonitor::new_in(&rt, 0u32);
        {
            let mut g = m.enter().unwrap();
            *g = 7;
        }
        assert_eq!(*m.enter().unwrap(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn wait_for_times_out_and_reacquires() {
        let rt = DimmunixRuntime::new();
        let m = ImmuneMonitor::new_in(&rt, 5u32);
        let g = m.enter().unwrap();
        let g = g.wait_for(Duration::from_millis(10)).unwrap();
        assert_eq!(*g, 5);
        drop(g);
        // One enter plus one reacquisition.
        assert_eq!(rt.stats().acquisitions, 2);
        assert_eq!(rt.stats().releases, 2);
    }

    #[test]
    fn notify_wakes_waiter() {
        let rt = DimmunixRuntime::new();
        let m = Arc::new(ImmuneMonitor::new_in(&rt, false));
        let m2 = m.clone();
        let waiter = std::thread::spawn(move || {
            let mut g = m2.enter().unwrap();
            while !*g {
                g = g.wait_for(Duration::from_millis(20)).unwrap();
            }
            true
        });
        std::thread::sleep(Duration::from_millis(30));
        {
            let mut g = m.enter().unwrap();
            *g = true;
            g.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_induced_inversion_is_detected() {
        // §3.2's example with real threads and the error policy: t1 holds Y
        // and waits (with timeout) on X; t2 takes X and then wants Y. The
        // reacquisition of X by t1 (or the acquisition of Y by t2) must be
        // reported as a deadlock, not silently hang.
        use crate::{DeadlockPolicy, ImmuneMutex};
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .build();
        let x = Arc::new(ImmuneMonitor::new_in(&rt, ()));
        let y = Arc::new(ImmuneMutex::new_in(&rt, ()));

        let (x1, y1) = (x.clone(), y.clone());
        let rt1 = rt.clone();
        let t1 = std::thread::spawn(move || -> Result<(), LockError> {
            let _y_guard = y1.lock_at(AcquisitionSite::new("T1.holdY", "inv.rs", 1))?;
            let x_guard = x1.enter_at(AcquisitionSite::new("T1.enterX", "inv.rs", 2))?;
            // Wait with a timeout long enough for t2 to grab X.
            let _reacquired = x_guard.wait_for_at(
                AcquisitionSite::new("T1.reacquireX", "inv.rs", 3),
                Duration::from_millis(120),
            )?;
            let _ = &rt1;
            Ok(())
        });

        let (x2, y2) = (x, y);
        let t2 = std::thread::spawn(move || -> Result<(), LockError> {
            std::thread::sleep(Duration::from_millis(40));
            let _x_guard = x2.enter_at(AcquisitionSite::new("T2.enterX", "inv.rs", 4))?;
            std::thread::sleep(Duration::from_millis(150));
            let _y_guard = y2.lock_at(AcquisitionSite::new("T2.lockY", "inv.rs", 5))?;
            Ok(())
        });

        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        // At least one of the two must have been refused with WouldDeadlock,
        // and the signature must be recorded; if the timing did not produce
        // the inversion, both succeed and nothing is recorded.
        let detected = rt.stats().deadlocks_detected;
        if r1.is_err() || r2.is_err() {
            assert!(detected >= 1);
            assert!(!rt.history().is_empty());
        } else {
            assert_eq!(detected, 0);
        }
    }
}
