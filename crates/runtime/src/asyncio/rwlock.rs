//! The poll-based immune reader–writer lock.

use crate::asyncio::executor::current_task;
use crate::asyncio::mutex::Stage;
use crate::runtime::{DimmunixRuntime, LockError, TaskAcquire};
use crate::site::AcquisitionSite;
use dimmunix_core::{AccessMode, LockId, TaskId};
use std::cell::{Ref, RefCell, RefMut};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// Book-keeping of the actual task-level rwlock, separate from the engine's
/// approval view. Readers may contain the same task more than once
/// (reentrant shared acquisitions, which the engine grants reentrantly).
struct RwState {
    readers: Vec<TaskId>,
    writer: Option<TaskId>,
    /// Wakers of engine-approved tasks waiting for the lock itself, FIFO
    /// with the access mode they wait in and at most one entry per task;
    /// their request edges stay in the RAG while they wait. A release wakes
    /// only what can actually proceed — the front writer, or the reader
    /// batch — never the whole crowd.
    waiters: VecDeque<(TaskId, AccessMode, Waker)>,
}

impl RwState {
    /// Registers (or refreshes) `task`'s waker without duplicating its
    /// queue entry.
    fn enqueue(&mut self, task: TaskId, mode: AccessMode, waker: &Waker) {
        match self.waiters.iter_mut().find(|(t, _, _)| *t == task) {
            Some((_, m, w)) => {
                *m = mode;
                *w = waker.clone();
            }
            None => self.waiters.push_back((task, mode, waker.clone())),
        }
    }

    /// The wakers the next release hand-off should fire: the front waiter,
    /// plus — when the front waits shared — every other shared waiter, since
    /// a reader batch proceeds together while a writer proceeds alone.
    fn handoff(&mut self) -> Vec<Waker> {
        match self.waiters.front() {
            None => Vec::new(),
            Some((_, AccessMode::Exclusive, _)) => {
                vec![self
                    .waiters
                    .pop_front()
                    .map(|(_, _, w)| w)
                    .expect("front exists")]
            }
            Some((_, AccessMode::Shared, _)) => {
                let mut woken = Vec::new();
                self.waiters.retain(|(_, m, w)| {
                    if m.is_shared() {
                        woken.push(w.clone());
                        false
                    } else {
                        true
                    }
                });
                woken
            }
        }
    }
}

/// An async reader–writer lock with deadlock immunity, keyed by task.
///
/// The async counterpart of [`ImmuneRwLock`](crate::ImmuneRwLock): shared
/// acquisitions go through the engine under
/// [`AccessMode::Shared`], so every reader of a crowd carries its own hold
/// edge and a blocked writer waits on all of them — the multi-owner RAG
/// nodes that make rwlock cycles (e.g. two readers upgrading against each
/// other's write) exact rather than approximated.
///
/// Write acquisitions are not reentrant, and a read→write upgrade by the
/// task holding the read side panics (it is a self-deadlock the engine
/// cannot rescue, exactly like `std::sync::RwLock`'s undefined behaviour,
/// made loud).
pub struct RwLock<T> {
    rt: Arc<DimmunixRuntime>,
    id: LockId,
    state: RefCell<RwState>,
    data: RefCell<T>,
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("asyncio::RwLock")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<T> RwLock<T> {
    /// Creates an immune async rwlock attached to the process-global
    /// runtime.
    pub fn new(value: T) -> Self {
        Self::new_in(&DimmunixRuntime::global(), value)
    }

    /// Creates an immune async rwlock attached to an explicit runtime.
    pub fn new_in(rt: &Arc<DimmunixRuntime>, value: T) -> Self {
        RwLock {
            rt: Arc::clone(rt),
            id: rt.allocate_lock(),
            state: RefCell::new(RwState {
                readers: Vec::new(),
                writer: None,
                waiters: VecDeque::new(),
            }),
            data: RefCell::new(value),
        }
    }

    /// The engine lock id backing this rwlock.
    pub fn lock_id(&self) -> LockId {
        self.id
    }

    /// Acquires the lock shared, capturing the caller's source location as
    /// the acquisition site.
    #[track_caller]
    pub fn read(&self) -> RwLockReadFuture<'_, T> {
        self.read_at(AcquisitionSite::here())
    }

    /// [`read`](Self::read) with an explicit acquisition site.
    pub fn read_at(&self, site: AcquisitionSite) -> RwLockReadFuture<'_, T> {
        RwLockReadFuture {
            lock: self,
            site,
            task: None,
            stage: Stage::Init,
        }
    }

    /// Acquires the lock exclusively, capturing the caller's source
    /// location as the acquisition site.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteFuture<'_, T> {
        self.write_at(AcquisitionSite::here())
    }

    /// [`write`](Self::write) with an explicit acquisition site.
    pub fn write_at(&self, site: AcquisitionSite) -> RwLockWriteFuture<'_, T> {
        RwLockWriteFuture {
            lock: self,
            site,
            task: None,
            stage: Stage::Init,
        }
    }

    /// Consumes the rwlock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// One engine decision for this future's poll; shared by the read and
    /// write futures. Returns `Some(poll-result)` when the poll is over
    /// (parked or refused), `None` when the engine approved and the caller
    /// should try the actual lock.
    fn begin<G>(
        &self,
        task: TaskId,
        site: AcquisitionSite,
        mode: AccessMode,
        stage: &mut Stage,
        cx: &mut Context<'_>,
    ) -> Option<Poll<Result<G, LockError>>> {
        match self
            .rt
            .task_begin_acquire_mode(task, self.id, site, mode, cx.waker())
        {
            TaskAcquire::Granted => {
                *stage = Stage::Approved;
                None
            }
            TaskAcquire::Parked { .. } => {
                *stage = Stage::Parked;
                Some(Poll::Pending)
            }
            TaskAcquire::WouldDeadlock(err) => {
                // Clear the refused request edge (see asyncio::Mutex).
                self.rt.task_cancel_acquire(task, self.id);
                *stage = Stage::Done;
                Some(Poll::Ready(Err(err)))
            }
        }
    }
}

/// Future returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadFuture<'a, T> {
    lock: &'a RwLock<T>,
    site: AcquisitionSite,
    task: Option<TaskId>,
    stage: Stage,
}

impl<'a, T> Future for RwLockReadFuture<'a, T> {
    type Output = Result<RwLockReadGuard<'a, T>, LockError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let task = current_task()
            .expect("asyncio lock futures must be polled from an Executor task context");
        this.task = Some(task);
        loop {
            match this.stage {
                Stage::Init | Stage::Parked => {
                    if let Some(done) =
                        this.lock
                            .begin(task, this.site, AccessMode::Shared, &mut this.stage, cx)
                    {
                        return done;
                    }
                }
                Stage::Approved => {
                    let mut state = this.lock.state.borrow_mut();
                    match state.writer {
                        Some(writer) if writer == task => panic!(
                            "asyncio::RwLock: task {task} holds the write side; a \
                             reentrant read would self-deadlock"
                        ),
                        Some(_) => {
                            state.enqueue(task, AccessMode::Shared, cx.waker());
                            return Poll::Pending;
                        }
                        None => {
                            state.readers.push(task);
                            drop(state);
                            this.lock.rt.task_finish_acquire(task, this.lock.id);
                            this.stage = Stage::Done;
                            return Poll::Ready(Ok(RwLockReadGuard {
                                lock: this.lock,
                                task,
                                inner: Some(this.lock.data.borrow()),
                            }));
                        }
                    }
                }
                Stage::Done => panic!("RwLockReadFuture polled after completion"),
            }
        }
    }
}

impl<T> Drop for RwLockReadFuture<'_, T> {
    fn drop(&mut self) {
        if matches!(self.stage, Stage::Parked | Stage::Approved) {
            if let Some(task) = self.task {
                self.lock.rt.task_cancel_acquire(task, self.lock.id);
                if self.stage == Stage::Approved {
                    forward_handoff(self.lock, task);
                }
            }
        }
    }
}

/// Removes a dropped waiter's queue entry and, when the lock is not
/// write-held, re-fires the hand-off: the dropped future may have consumed
/// the single wake a release distributed, and that wake must not die with
/// it. A spurious extra wake only costs the woken task one re-poll.
fn forward_handoff<T>(lock: &RwLock<T>, task: TaskId) {
    let woken = {
        let mut state = lock.state.borrow_mut();
        state.waiters.retain(|(t, _, _)| *t != task);
        if state.writer.is_none() {
            state.handoff()
        } else {
            Vec::new()
        }
    };
    for w in woken {
        w.wake();
    }
}

/// Future returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteFuture<'a, T> {
    lock: &'a RwLock<T>,
    site: AcquisitionSite,
    task: Option<TaskId>,
    stage: Stage,
}

impl<'a, T> Future for RwLockWriteFuture<'a, T> {
    type Output = Result<RwLockWriteGuard<'a, T>, LockError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let task = current_task()
            .expect("asyncio lock futures must be polled from an Executor task context");
        this.task = Some(task);
        loop {
            match this.stage {
                Stage::Init | Stage::Parked => {
                    if let Some(done) =
                        this.lock
                            .begin(task, this.site, AccessMode::Exclusive, &mut this.stage, cx)
                    {
                        return done;
                    }
                }
                Stage::Approved => {
                    let mut state = this.lock.state.borrow_mut();
                    if state.writer == Some(task) {
                        panic!(
                            "asyncio::RwLock is not write-reentrant: task {task} \
                             already holds lock {} exclusively",
                            this.lock.id
                        );
                    }
                    if state.readers.contains(&task) {
                        panic!(
                            "asyncio::RwLock: task {task} holds the read side; a \
                             read→write upgrade would self-deadlock"
                        );
                    }
                    if state.writer.is_none() && state.readers.is_empty() {
                        state.writer = Some(task);
                        drop(state);
                        this.lock.rt.task_finish_acquire(task, this.lock.id);
                        this.stage = Stage::Done;
                        return Poll::Ready(Ok(RwLockWriteGuard {
                            lock: this.lock,
                            task,
                            inner: Some(this.lock.data.borrow_mut()),
                        }));
                    }
                    state.enqueue(task, AccessMode::Exclusive, cx.waker());
                    return Poll::Pending;
                }
                Stage::Done => panic!("RwLockWriteFuture polled after completion"),
            }
        }
    }
}

impl<T> Drop for RwLockWriteFuture<'_, T> {
    fn drop(&mut self) {
        if matches!(self.stage, Stage::Parked | Stage::Approved) {
            if let Some(task) = self.task {
                self.lock.rt.task_cancel_acquire(task, self.lock.id);
                if self.stage == Stage::Approved {
                    forward_handoff(self.lock, task);
                }
            }
        }
    }
}

/// Shared guard produced by [`RwLock::read`]; releases on drop. Held across
/// an `.await`, it is a hold edge (one of possibly many on the lock's
/// multi-owner RAG node) under the task's identity.
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    task: TaskId,
    inner: Option<Ref<'a, T>>,
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("asyncio::RwLockReadGuard")
            .field("value", &**self)
            .finish()
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        let woken = {
            let mut state = self.lock.state.borrow_mut();
            if let Some(i) = state.readers.iter().position(|r| *r == self.task) {
                state.readers.swap_remove(i);
            }
            if state.readers.is_empty() && state.writer.is_none() {
                state.handoff()
            } else {
                Vec::new()
            }
        };
        self.lock.rt.task_release(self.task, self.lock.id);
        for w in woken {
            w.wake();
        }
    }
}

/// Exclusive guard produced by [`RwLock::write`]; releases on drop.
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    task: TaskId,
    inner: Option<RefMut<'a, T>>,
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("asyncio::RwLockWriteGuard")
            .field("value", &**self)
            .finish()
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        let woken = {
            let mut state = self.lock.state.borrow_mut();
            state.writer = None;
            state.handoff()
        };
        self.lock.rt.task_release(self.task, self.lock.id);
        for w in woken {
            w.wake();
        }
    }
}
