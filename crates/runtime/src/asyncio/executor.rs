//! A deterministic single-OS-thread executor with simulated workers.
//!
//! The executor exists so task-level immunity can be tested and benchmarked
//! the way the core engine is: as a deterministic state machine. All
//! futures run on the calling OS thread; "workers" are simulated by
//! attributing each poll to worker `polls % workers`, which is exactly the
//! adversarial situation the task-keyed engine must survive — two tasks of
//! a deadlock cycle multiplexed over the same small pool, sometimes over
//! the *same* worker, where a thread-keyed RAG would see a reentrant
//! acquisition instead of a cycle.
//!
//! Scheduling is FIFO over a deduplicated ready queue: `spawn` enqueues the
//! task, a waker re-enqueues it (at most once until its next poll), and
//! [`Executor::run`] polls until the queue drains. Identical spawn orders
//! and wake orders therefore replay identical schedules.

use crate::runtime::DimmunixRuntime;
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::TaskId;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// The deduplicated FIFO ready queue, shared with wakers. `Mutex`-guarded
/// so wakers are `Send + Sync` (a requirement of [`std::task::Wake`]) even
/// though the executor itself is single-threaded.
#[derive(Default)]
struct ReadyQueue {
    state: Mutex<ReadyState>,
}

#[derive(Default)]
struct ReadyState {
    queue: VecDeque<u64>,
    queued: HashSet<u64>,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        let mut state = sync::lock(&self.state);
        if state.queued.insert(id) {
            state.queue.push_back(id);
        }
    }

    fn pop(&self) -> Option<u64> {
        let mut state = sync::lock(&self.state);
        let id = state.queue.pop_front()?;
        state.queued.remove(&id);
        Some(id)
    }
}

/// Waker for one task: re-enqueues the task on the ready queue.
struct TaskWaker {
    ready: Arc<ReadyQueue>,
    id: u64,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// Identity of the task currently being polled, visible to the immune lock
/// futures through [`current_task`].
#[derive(Debug, Clone, Copy)]
struct CurrentTask {
    task: TaskId,
    worker: usize,
}

thread_local! {
    static CURRENT: Cell<Option<CurrentTask>> = const { Cell::new(None) };
}

/// The task being polled right now on this thread, if any. The `asyncio`
/// lock futures use this to learn their owner identity; it is `None`
/// outside [`Executor::run`].
pub fn current_task() -> Option<TaskId> {
    CURRENT.with(|c| c.get()).map(|c| c.task)
}

/// The simulated worker the current poll is attributed to, if any.
/// Workloads use this to contrast task-keyed immunity with what a
/// worker-thread-keyed engine would (fail to) see.
pub fn current_worker() -> Option<usize> {
    CURRENT.with(|c| c.get()).map(|c| c.worker)
}

/// Cooperatively yields the current task once: the first poll schedules a
/// wake and returns `Poll::Pending`, sending the task to the back of the
/// ready queue. Workloads use this to pin adversarial interleavings
/// deterministically.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// One spawned task: its engine identity and its future.
struct TaskEntry {
    task: TaskId,
    future: Pin<Box<dyn Future<Output = ()>>>,
}

/// What a [`Executor::run`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorReport {
    /// Tasks that ran to completion.
    pub completed: usize,
    /// Tasks still pending when the ready queue drained — parked on a
    /// waker that can no longer fire. Under
    /// [`DeadlockPolicy::Block`](crate::DeadlockPolicy) a genuine
    /// task-level deadlock shows up here (the paper-faithful freeze);
    /// under the default `Error` policy this stays zero.
    pub stuck: usize,
    /// Total future polls performed.
    pub polls: u64,
}

/// A deterministic, single-OS-thread async executor bound to a
/// [`DimmunixRuntime`]. See the [module docs](crate::asyncio) for the
/// scheduling model.
pub struct Executor {
    rt: Arc<DimmunixRuntime>,
    workers: usize,
    tasks: RefCell<HashMap<u64, TaskEntry>>,
    ready: Arc<ReadyQueue>,
    spawned: Cell<usize>,
    polls: Cell<u64>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers)
            .field("pending_tasks", &self.tasks.borrow().len())
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Creates an executor with `workers` simulated workers (clamped to at
    /// least 1), bound to `rt`: every task spawned on it is registered with
    /// that runtime under a fresh [`TaskId`].
    pub fn new_in(rt: &Arc<DimmunixRuntime>, workers: usize) -> Self {
        Executor {
            rt: Arc::clone(rt),
            workers: workers.max(1),
            tasks: RefCell::new(HashMap::new()),
            ready: Arc::new(ReadyQueue::default()),
            spawned: Cell::new(0),
            polls: Cell::new(0),
        }
    }

    /// Creates an executor bound to the process-global runtime.
    pub fn new(workers: usize) -> Self {
        Self::new_in(&DimmunixRuntime::global(), workers)
    }

    /// The runtime this executor registers its tasks with.
    pub fn runtime(&self) -> &Arc<DimmunixRuntime> {
        &self.rt
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Spawns a future as a new immune task and returns its engine
    /// identity. The source location of the `spawn` call is recorded as the
    /// task's spawn site (carried into
    /// [`LockError::WouldDeadlock`](crate::LockError) diagnostics).
    ///
    /// Futures need not be `Send`: everything runs on the calling thread.
    #[track_caller]
    pub fn spawn(&self, future: impl Future<Output = ()> + 'static) -> TaskId {
        self.spawn_at(AcquisitionSite::here(), future)
    }

    /// [`spawn`](Self::spawn) with an explicit spawn site, for
    /// deterministic tests that pin site identity across runs.
    pub fn spawn_at(
        &self,
        site: AcquisitionSite,
        future: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        let task = self.rt.register_task(Some(site));
        let id = task.index();
        self.tasks.borrow_mut().insert(
            id,
            TaskEntry {
                task,
                future: Box::pin(future),
            },
        );
        self.spawned.set(self.spawned.get() + 1);
        self.ready.push(id);
        task
    }

    /// Polls ready tasks FIFO until the queue drains, then reports. Tasks
    /// still pending at that point are parked on wakers that can no longer
    /// fire (e.g. frozen in a deadlock under
    /// [`DeadlockPolicy::Block`](crate::DeadlockPolicy)); they stay
    /// spawned, so a later `run` continues them if something external wakes
    /// them first.
    pub fn run(&self) -> ExecutorReport {
        let mut completed = 0usize;
        while let Some(id) = self.ready.pop() {
            let Some(mut entry) = self.tasks.borrow_mut().remove(&id) else {
                continue; // woken after completion
            };
            let poll_index = self.polls.get();
            self.polls.set(poll_index + 1);
            let worker = (poll_index % self.workers as u64) as usize;
            let waker = Waker::from(Arc::new(TaskWaker {
                ready: Arc::clone(&self.ready),
                id,
            }));
            let mut cx = Context::from_waker(&waker);
            CURRENT.with(|c| {
                c.set(Some(CurrentTask {
                    task: entry.task,
                    worker,
                }))
            });
            let poll = entry.future.as_mut().poll(&mut cx);
            CURRENT.with(|c| c.set(None));
            match poll {
                Poll::Ready(()) => {
                    self.rt.retire_task(entry.task);
                    completed += 1;
                }
                Poll::Pending => {
                    self.tasks.borrow_mut().insert(id, entry);
                }
            }
        }
        ExecutorReport {
            completed,
            stuck: self.tasks.borrow().len(),
            polls: self.polls.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_run_to_completion_in_spawn_order() {
        let rt = DimmunixRuntime::builder().build();
        let ex = Executor::new_in(&rt, 2);
        let order = std::rc::Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let order = order.clone();
            ex.spawn(async move {
                order.borrow_mut().push(i);
            });
        }
        let report = ex.run();
        assert_eq!(report.completed, 4);
        assert_eq!(report.stuck, 0);
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn current_task_is_visible_during_polls_only() {
        assert!(current_task().is_none());
        let rt = DimmunixRuntime::builder().build();
        let ex = Executor::new_in(&rt, 3);
        let seen = std::rc::Rc::new(Cell::new(None));
        let seen2 = seen.clone();
        let spawned = ex.spawn(async move {
            seen2.set(current_task());
            assert!(current_worker().is_some());
        });
        ex.run();
        assert_eq!(seen.get(), Some(spawned));
        assert!(current_task().is_none());
    }

    #[test]
    fn workers_rotate_per_poll() {
        // A task that yields once is polled twice; with 2 workers the two
        // polls land on different simulated workers.
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0 {
                    Poll::Ready(())
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let rt = DimmunixRuntime::builder().build();
        let ex = Executor::new_in(&rt, 2);
        let workers = std::rc::Rc::new(RefCell::new(Vec::new()));
        let w = workers.clone();
        ex.spawn(async move {
            w.borrow_mut().push(current_worker().unwrap());
            YieldOnce(false).await;
            w.borrow_mut().push(current_worker().unwrap());
        });
        let report = ex.run();
        assert_eq!(report.completed, 1);
        assert_eq!(*workers.borrow(), vec![0, 1]);
    }
}
