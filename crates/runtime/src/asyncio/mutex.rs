//! The poll-based immune mutex.

use crate::asyncio::executor::current_task;
use crate::runtime::{DimmunixRuntime, LockError, TaskAcquire};
use crate::site::AcquisitionSite;
use dimmunix_core::{LockId, TaskId};
use std::cell::{RefCell, RefMut};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// Book-keeping of the actual (task-level) lock, separate from the engine's
/// view: the engine *approves* acquisitions; this state serializes them.
struct MutexState {
    owner: Option<TaskId>,
    /// Wakers of engine-approved tasks waiting for the owner to release —
    /// the async analogue of blocking on the raw mutex after
    /// `before_acquire` returns. Their request edges stay in the RAG, so
    /// cycles through these waits remain visible. FIFO with at most one
    /// entry per task: a release hands the lock to the front waiter only,
    /// so a crowd of `W` waiters costs `O(1)` polls per release instead of
    /// the `O(W)` re-poll herd a broadcast would trigger.
    waiters: VecDeque<(TaskId, Waker)>,
}

impl MutexState {
    /// Registers (or refreshes) `task`'s waker without duplicating its
    /// queue entry — a re-poll must not push the task to the back twice.
    fn enqueue(&mut self, task: TaskId, waker: &Waker) {
        match self.waiters.iter_mut().find(|(t, _)| *t == task) {
            Some((_, w)) => *w = waker.clone(),
            None => self.waiters.push_back((task, waker.clone())),
        }
    }

    /// Pops and returns the front waiter's waker, if any.
    fn next_waiter(&mut self) -> Option<Waker> {
        self.waiters.pop_front().map(|(_, w)| w)
    }
}

/// An async mutual-exclusion lock with deadlock immunity, keyed by task.
///
/// The async counterpart of [`ImmuneMutex`](crate::ImmuneMutex): every
/// acquisition is screened by the [`DimmunixRuntime`] under the *task's*
/// identity ([`OwnerId::Task`](dimmunix_core::OwnerId)), so lock cycles
/// among tasks are detected and avoided even when the tasks share worker
/// threads. A [`MutexGuard`] held across an `.await` is a hold edge in the
/// RAG for as long as it lives.
///
/// Not reentrant: a task locking a mutex it already holds panics (the
/// engine reports the acquisition as reentrant, but an async mutex cannot
/// grant it without self-deadlock).
///
/// Lock futures must be polled from a task context (inside a future
/// spawned on an [`Executor`](crate::asyncio::Executor)).
pub struct Mutex<T> {
    rt: Arc<DimmunixRuntime>,
    id: LockId,
    state: RefCell<MutexState>,
    data: RefCell<T>,
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("asyncio::Mutex")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<T> Mutex<T> {
    /// Creates an immune async mutex attached to the process-global
    /// runtime.
    pub fn new(value: T) -> Self {
        Self::new_in(&DimmunixRuntime::global(), value)
    }

    /// Creates an immune async mutex attached to an explicit runtime.
    pub fn new_in(rt: &Arc<DimmunixRuntime>, value: T) -> Self {
        Mutex {
            rt: Arc::clone(rt),
            id: rt.allocate_lock(),
            state: RefCell::new(MutexState {
                owner: None,
                waiters: VecDeque::new(),
            }),
            data: RefCell::new(value),
        }
    }

    /// The engine lock id backing this mutex.
    pub fn lock_id(&self) -> LockId {
        self.id
    }

    /// Acquires the mutex, implicitly capturing the caller's source
    /// location as the acquisition site.
    ///
    /// Resolves to [`LockError::WouldDeadlock`] when the acquisition would
    /// close a task-level deadlock cycle (under the `Error` policy).
    #[track_caller]
    pub fn lock(&self) -> MutexLockFuture<'_, T> {
        self.lock_at(AcquisitionSite::here())
    }

    /// [`lock`](Self::lock) with an explicit acquisition site
    /// (deterministic tests and schedule replays).
    pub fn lock_at(&self, site: AcquisitionSite) -> MutexLockFuture<'_, T> {
        MutexLockFuture {
            lock: self,
            site,
            task: None,
            stage: Stage::Init,
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// Where a lock future stands in the acquisition protocol — which engine
/// state exists and must be reversed if the future is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// No engine state yet.
    Init,
    /// Parked by avoidance: a yield record and request edge exist.
    Parked,
    /// Engine approved; a pending grant (request edge) exists until the
    /// acquisition completes.
    Approved,
    /// Completed (guard produced or error returned).
    Done,
}

/// Future returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexLockFuture<'a, T> {
    lock: &'a Mutex<T>,
    site: AcquisitionSite,
    task: Option<TaskId>,
    stage: Stage,
}

impl<'a, T> Future for MutexLockFuture<'a, T> {
    type Output = Result<MutexGuard<'a, T>, LockError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let task = current_task()
            .expect("asyncio lock futures must be polled from an Executor task context");
        this.task = Some(task);
        loop {
            match this.stage {
                Stage::Init | Stage::Parked => {
                    match this
                        .lock
                        .rt
                        .task_begin_acquire(task, this.lock.id, this.site, cx.waker())
                    {
                        TaskAcquire::Granted => this.stage = Stage::Approved,
                        TaskAcquire::Parked { .. } => {
                            this.stage = Stage::Parked;
                            return Poll::Pending;
                        }
                        TaskAcquire::WouldDeadlock(err) => {
                            // The engine leaves the refused request edge
                            // behind; clear it so the task's next request
                            // starts clean.
                            this.lock.rt.task_cancel_acquire(task, this.lock.id);
                            this.stage = Stage::Done;
                            return Poll::Ready(Err(err));
                        }
                    }
                }
                Stage::Approved => {
                    let mut state = this.lock.state.borrow_mut();
                    match state.owner {
                        None => {
                            state.owner = Some(task);
                            drop(state);
                            this.lock.rt.task_finish_acquire(task, this.lock.id);
                            this.stage = Stage::Done;
                            return Poll::Ready(Ok(MutexGuard {
                                lock: this.lock,
                                task,
                                inner: Some(this.lock.data.borrow_mut()),
                            }));
                        }
                        Some(owner) if owner == task => {
                            panic!(
                                "asyncio::Mutex is not reentrant: task {task} already \
                                 holds lock {}",
                                this.lock.id
                            );
                        }
                        Some(_) => {
                            state.enqueue(task, cx.waker());
                            return Poll::Pending;
                        }
                    }
                }
                Stage::Done => panic!("MutexLockFuture polled after completion"),
            }
        }
    }
}

impl<T> Drop for MutexLockFuture<'_, T> {
    fn drop(&mut self) {
        // An abandoned future (select! lost the race, task cancelled) must
        // reverse whatever engine state the protocol accumulated.
        if matches!(self.stage, Stage::Parked | Stage::Approved) {
            if let Some(task) = self.task {
                self.lock.rt.task_cancel_acquire(task, self.lock.id);
                if self.stage == Stage::Approved {
                    // This future may have consumed the single wake a
                    // release handed out; leave the queue clean and pass
                    // the wake on so the lock is not silently orphaned.
                    let next = {
                        let mut state = self.lock.state.borrow_mut();
                        state.waiters.retain(|(t, _)| *t != task);
                        state.owner.is_none().then(|| state.next_waiter()).flatten()
                    };
                    if let Some(w) = next {
                        w.wake();
                    }
                }
            }
        }
    }
}

/// Guard produced by [`Mutex::lock`]; releases on drop. Holding it across
/// an `.await` keeps the hold edge in the RAG — that is the mechanism by
/// which guard-across-await deadlocks become visible cycles.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    task: TaskId,
    /// `Some` for the guard's whole life; `Option` only so `drop` can end
    /// the borrow before waking the next owner.
    inner: Option<RefMut<'a, T>>,
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("asyncio::MutexGuard")
            .field("value", &**self)
            .finish()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not yet dropped")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not yet dropped")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // End the data borrow before any waiter can be polled again.
        self.inner = None;
        let next = {
            let mut state = self.lock.state.borrow_mut();
            state.owner = None;
            state.next_waiter()
        };
        self.lock.rt.task_release(self.task, self.lock.id);
        if let Some(w) = next {
            w.wake();
        }
    }
}
