//! # `asyncio` — deadlock immunity for async tasks
//!
//! The blocking lock types ([`ImmuneMutex`](crate::ImmuneMutex) and
//! friends) key the engine by OS thread. That identity is wrong for async
//! code: an executor multiplexes thousands of tasks onto a handful of
//! worker threads, so a **task-level** deadlock — task A holds lock 1 and
//! awaits lock 2 while task B holds lock 2 and awaits lock 1 — is invisible
//! to a thread-keyed RAG whenever the two tasks share a worker (the worker
//! appears to re-enter its own lock). This module keys every engine hook by
//! [`OwnerId::Task`](dimmunix_core::OwnerId) instead:
//!
//! * [`Mutex`] and [`RwLock`] are **poll-based** immune locks: where the
//!   blocking runtime parks an OS thread on a condition variable when the
//!   engine answers *yield*, the async lock registers the task's waker on
//!   the signature and returns `Poll::Pending`; the release path fires the
//!   waker and the future re-requests — the paper's
//!   `do { … } while (sigId >= 0)` loop, driven by the executor.
//! * A guard held across an `.await` **is a hold edge** in the RAG, under
//!   the task's identity: the engine records the acquisition when the guard
//!   is produced and the release when it is dropped, however many polls and
//!   worker migrations happen in between.
//! * A genuine task-level deadlock surfaces on the closing request as
//!   [`LockError::WouldDeadlock`](crate::LockError) (under
//!   [`DeadlockPolicy::Error`](crate::DeadlockPolicy)) with the refused
//!   **task** identity and its spawn site — no hang, and the signature is
//!   already in the history, so the next run avoids it.
//!
//! [`Executor`] is a deterministic single-OS-thread executor with a
//! configurable number of *simulated* workers: tasks are polled round-robin
//! from a FIFO ready queue and each poll is attributed to worker
//! `polls % workers`. Determinism makes task-level immunity testable the
//! same way the core engine is: identical schedules replay identically.
//!
//! ```
//! use dimmunix_rt::asyncio::{Executor, Mutex};
//! use dimmunix_rt::DimmunixRuntime;
//! use std::rc::Rc;
//!
//! let rt = DimmunixRuntime::builder().build();
//! let ex = Executor::new_in(&rt, 2);
//! let counter = Rc::new(Mutex::new_in(&rt, 0u32));
//! for _ in 0..10 {
//!     let counter = counter.clone();
//!     ex.spawn(async move {
//!         let mut guard = counter.lock().await.unwrap();
//!         *guard += 1;
//!     });
//! }
//! let report = ex.run();
//! assert_eq!(report.completed, 10);
//! assert_eq!(report.stuck, 0);
//! ```

mod executor;
mod mutex;
mod rwlock;

pub use executor::{current_task, current_worker, yield_now, Executor, ExecutorReport, YieldNow};
pub use mutex::{Mutex, MutexGuard, MutexLockFuture};
pub use rwlock::{RwLock, RwLockReadFuture, RwLockReadGuard, RwLockWriteFuture, RwLockWriteGuard};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{DeadlockPolicy, DimmunixRuntime, LockError};
    use crate::site::AcquisitionSite;
    use dimmunix_core::{Config, Dimmunix, OwnerId, RequestOutcome, SignatureKind};
    use std::cell::RefCell;
    use std::rc::Rc;

    const SITE_A_OUTER: AcquisitionSite = AcquisitionSite::new("fwd.outer", "srv.rs", 10);
    const SITE_A_INNER: AcquisitionSite = AcquisitionSite::new("fwd.inner", "srv.rs", 11);
    const SITE_B_OUTER: AcquisitionSite = AcquisitionSite::new("bwd.outer", "srv.rs", 20);
    const SITE_B_INNER: AcquisitionSite = AcquisitionSite::new("bwd.inner", "srv.rs", 21);

    /// One engine-relevant event of the async schedule, stamped with the
    /// simulated worker it ran on — replayable into a worker-keyed engine.
    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Lock { worker: usize, lock: u8, ok: bool },
        Unlock { worker: usize, lock: u8 },
    }

    type Log = Rc<RefCell<Vec<Ev>>>;

    async fn lock_logged<'a>(
        m: &'a Mutex<i32>,
        site: AcquisitionSite,
        tag: u8,
        log: &Log,
    ) -> Result<MutexGuard<'a, i32>, LockError> {
        // Push the event at *request* time (this poll), then patch `ok`
        // when the grant lands — the log stays in request order, which is
        // the order a thread-keyed engine would observe.
        let idx = {
            let mut l = log.borrow_mut();
            l.push(Ev::Lock {
                worker: current_worker().unwrap(),
                lock: tag,
                ok: false,
            });
            l.len() - 1
        };
        let res = m.lock_at(site).await;
        if res.is_ok() {
            if let Ev::Lock { ok, .. } = &mut log.borrow_mut()[idx] {
                *ok = true;
            }
        }
        res
    }

    fn unlock_logged(g: MutexGuard<'_, i32>, tag: u8, log: &Log) {
        log.borrow_mut().push(Ev::Unlock {
            worker: current_worker().unwrap(),
            lock: tag,
        });
        drop(g);
    }

    /// Runs the AB/BA pair plus two filler tasks on a 2-worker executor.
    /// The fillers occupy the odd polls, so every lock event of the cycle
    /// pair lands on worker 0 — the exact multiplexing that blinds a
    /// thread-keyed RAG. Returns (report, error count, log).
    fn run_server_round(rt: &std::sync::Arc<DimmunixRuntime>) -> (ExecutorReport, usize, Log) {
        let ex = Executor::new_in(rt, 2);
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let errors = Rc::new(RefCell::new(0usize));

        let a = Rc::new(Mutex::new_in(rt, 0));
        let b = Rc::new(Mutex::new_in(rt, 0));

        // forward: lock A, yield, lock B
        {
            let (a, b, log, errors) = (a.clone(), b.clone(), log.clone(), errors.clone());
            ex.spawn(async move {
                let ga = lock_logged(&a, SITE_A_OUTER, 0, &log).await.unwrap();
                yield_now().await;
                match lock_logged(&b, SITE_A_INNER, 1, &log).await {
                    Ok(gb) => {
                        unlock_logged(gb, 1, &log);
                        unlock_logged(ga, 0, &log);
                    }
                    Err(_) => {
                        *errors.borrow_mut() += 1;
                        unlock_logged(ga, 0, &log);
                    }
                }
            });
        }
        ex.spawn(async { yield_now().await }); // filler for odd polls
                                               // backward: lock B, yield, lock A
        {
            let (a, b, log, errors) = (a.clone(), b.clone(), log.clone(), errors.clone());
            ex.spawn(async move {
                let gb = lock_logged(&b, SITE_B_OUTER, 1, &log).await.unwrap();
                yield_now().await;
                match lock_logged(&a, SITE_B_INNER, 0, &log).await {
                    Ok(ga) => {
                        unlock_logged(ga, 0, &log);
                        unlock_logged(gb, 1, &log);
                    }
                    Err(e) => {
                        assert!(matches!(
                            e,
                            LockError::WouldDeadlock {
                                owner: OwnerId::Task(_),
                                ..
                            }
                        ));
                        *errors.borrow_mut() += 1;
                        unlock_logged(gb, 1, &log);
                    }
                }
            });
        }
        ex.spawn(async { yield_now().await }); // filler for odd polls

        let report = ex.run();
        let errs = *errors.borrow();
        (report, errs, log)
    }

    /// Tentpole acceptance: a task-level AB/BA deadlock whose four lock
    /// events all happen on ONE worker of a 2-worker pool is (a) detected on
    /// first occurrence under task identity, (b) invisible to a thread-keyed
    /// replay of the very same schedule, and (c) avoided on the next run
    /// once the learned history is loaded.
    #[test]
    fn shared_worker_task_deadlock_is_learned_then_avoided() {
        // --- Run 1: learn. ------------------------------------------------
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .build();
        let (report, errors, log) = run_server_round(&rt);
        assert_eq!(report.completed, 4, "no task may hang");
        assert_eq!(report.stuck, 0);
        assert_eq!(errors, 1, "exactly one task is refused");
        assert_eq!(rt.stats().deadlocks_detected, 1);
        let history = rt.history();
        assert_eq!(history.len(), 1);
        assert_eq!(
            history.iter().next().unwrap().1.kind(),
            SignatureKind::Deadlock
        );

        // Every lock/unlock of the cycle pair ran on worker 0 even though
        // the pool has two workers — the premise of the invisibility claim.
        assert!(log.borrow().iter().all(|e| match e {
            Ev::Lock { worker, .. } | Ev::Unlock { worker, .. } => *worker == 0,
        }));

        // --- Thread-keyed replay of the same schedule sees NO cycle. ------
        let mut engine = Dimmunix::new(Config::default());
        let sites = [SITE_A_OUTER, SITE_B_OUTER]; // lock tag -> any site; see below
        let stacks = [sites[0].to_call_stack(), sites[1].to_call_stack()];
        let locks = [dimmunix_core::LockId::new(1), dimmunix_core::LockId::new(2)];
        engine.register_owner(OwnerId::thread(0));
        let mut outcomes = Vec::new();
        for ev in log.borrow().iter() {
            match *ev {
                Ev::Lock { worker, lock, ok } => {
                    let t = OwnerId::thread(worker as u64);
                    let out = engine.request(t, locks[lock as usize], &stacks[lock as usize]);
                    assert!(
                        !matches!(out, RequestOutcome::DeadlockDetected { .. }),
                        "thread-keyed replay must not see the task cycle"
                    );
                    if ok {
                        engine.acquired(t, locks[lock as usize]);
                    }
                    outcomes.push(out);
                }
                Ev::Unlock { worker, lock } => {
                    engine.released(OwnerId::thread(worker as u64), locks[lock as usize]);
                }
            }
        }
        // The request that closed the task-level cycle is a *reentrant
        // grant* under thread identity: worker 0 already "owns" the lock.
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, RequestOutcome::GrantedReentrant)),
            "the closing request must look reentrant to a thread-keyed RAG"
        );
        assert_eq!(engine.stats().deadlocks_detected, 0);

        // --- Run 2: the antibody makes the same program immune. -----------
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Error)
            .history(history)
            .build();
        let (report, errors, _log) = run_server_round(&rt);
        assert_eq!(report.completed, 4, "replay must complete");
        assert_eq!(report.stuck, 0);
        assert_eq!(errors, 0, "no refusal on the immune run");
        assert_eq!(rt.stats().deadlocks_detected, 0);
        assert!(rt.stats().yields >= 1, "avoidance must have parked a task");
        assert_eq!(rt.history().len(), 1, "no new signature on the replay");
    }

    /// A guard held across an `.await` stays a hold edge: a second task
    /// requesting the lock while the first is suspended mid-await simply
    /// waits (no grant, no false release), and gets the lock when the guard
    /// drops on the far side of the await.
    #[test]
    fn guard_across_await_is_a_hold_edge() {
        let rt = DimmunixRuntime::builder().build();
        let ex = Executor::new_in(&rt, 2);
        let m = Rc::new(Mutex::new_in(&rt, Vec::<u32>::new()));
        let (m1, m2) = (m.clone(), m.clone());
        ex.spawn(async move {
            let mut g = m1.lock().await.unwrap();
            g.push(1);
            // Suspend twice while holding the guard; task 2 must not get in.
            yield_now().await;
            yield_now().await;
            g.push(2);
        });
        ex.spawn(async move {
            let mut g = m2.lock().await.unwrap();
            g.push(3);
        });
        let report = ex.run();
        assert_eq!(report.completed, 2);
        assert_eq!(report.stuck, 0);
        let m = Rc::try_unwrap(m).map_err(|_| "still shared").unwrap();
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    /// Under `DeadlockPolicy::Block` the cycle tasks freeze (paper-faithful
    /// first occurrence): the executor reports them stuck, the signature is
    /// still learned, and the remaining tasks keep running.
    #[test]
    fn block_policy_freezes_the_cycle_but_learns() {
        let rt = DimmunixRuntime::builder()
            .deadlock_policy(DeadlockPolicy::Block)
            .build();
        let (report, errors, _log) = run_server_round(&rt);
        assert_eq!(errors, 0, "Block policy surfaces no error");
        assert_eq!(report.stuck, 2, "the two cycle tasks freeze");
        assert_eq!(report.completed, 2, "the fillers still complete");
        assert_eq!(rt.stats().deadlocks_detected, 1);
        assert_eq!(rt.history().len(), 1, "the signature is still learned");
    }

    /// Read crowds on the async rwlock coexist; a writer excludes them and
    /// task-level write/write order is preserved.
    #[test]
    fn rwlock_readers_share_and_writer_excludes() {
        let rt = DimmunixRuntime::builder().build();
        let ex = Executor::new_in(&rt, 3);
        let l = Rc::new(RwLock::new_in(&rt, 7u64));
        let seen = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let (l, seen) = (l.clone(), seen.clone());
            ex.spawn(async move {
                let g = l.read().await.unwrap();
                // Hold the read across a yield: all three readers overlap.
                yield_now().await;
                seen.borrow_mut().push(*g);
            });
        }
        {
            let (l, seen) = (l.clone(), seen.clone());
            ex.spawn(async move {
                let mut g = l.write().await.unwrap();
                *g += 1;
                seen.borrow_mut().push(*g);
            });
        }
        let report = ex.run();
        assert_eq!(report.completed, 4);
        assert_eq!(report.stuck, 0);
        // Readers overlapped (all saw 7) and the writer ran after them.
        assert_eq!(*seen.borrow(), vec![7, 7, 7, 8]);
    }

    /// A lock future dropped between engine approval and completion backs
    /// out cleanly: the winner's schedule is undisturbed and later
    /// acquisitions of the same lock still work.
    #[test]
    fn dropped_lock_future_backs_out() {
        let rt = DimmunixRuntime::builder().build();
        let ex = Executor::new_in(&rt, 1);
        let m = Rc::new(Mutex::new_in(&rt, 0));
        let (m1, m2) = (m.clone(), m.clone());
        ex.spawn(async move {
            let g = m1.lock().await.unwrap();
            yield_now().await;
            drop(g);
        });
        ex.spawn(async move {
            {
                // Poll once (queues behind task 1), then abandon the future.
                let fut = m2.lock();
                futures_pending_probe(fut).await;
            }
            // A fresh acquisition still succeeds.
            let mut g = m2.lock().await.unwrap();
            *g += 1;
        });
        let report = ex.run();
        assert_eq!(report.completed, 2);
        assert_eq!(report.stuck, 0);
        let m = Rc::try_unwrap(m).map_err(|_| "still shared").unwrap();
        assert_eq!(m.into_inner(), 1);
    }

    /// Polls `fut` exactly once, then resolves (dropping `fut` regardless of
    /// its result) — a deterministic stand-in for "`select!` lost the race".
    async fn futures_pending_probe<F: std::future::Future>(fut: F) {
        use std::pin::pin;
        use std::task::Poll;
        let mut fut = pin!(fut);
        let mut polled = false;
        std::future::poll_fn(move |cx| {
            if polled {
                Poll::Ready(())
            } else {
                polled = true;
                let _ = fut.as_mut().poll(cx);
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        })
        .await;
    }
}
