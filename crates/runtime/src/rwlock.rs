//! `ImmuneRwLock` — a drop-in `std::sync::RwLock` with deadlock immunity.
//!
//! Both read and write acquisitions are screened through the same
//! shard-routed engine path as [`ImmuneMutex`](crate::ImmuneMutex): the
//! full `request` screening (RAG cycle detection **and** signature
//! avoidance) runs before the real `RwLock` is touched, so reader/writer
//! and writer/writer lock inversions develop antibodies exactly like
//! monitor inversions do.
//!
//! ## How readers map onto the engine's single-owner RAG
//!
//! The paper's RAG models Java monitors: one owner per lock. A reader
//! *crowd* (several threads holding the read lock at once) is represented
//! in the engine as **one hold, owned by the first reader in** — the
//! crowd's representative. Later readers are screened on entry
//! (`before_acquire`) but then join the crowd without registering a second
//! hold; whichever reader leaves last releases the engine-level hold in
//! the representative's name. This keeps the engine's accounting exactly
//! balanced (one `acquired` and one `released` per crowd) while preserving
//! what detection needs: a writer blocked behind the crowd has a wait-for
//! edge to a thread that really is inside the read section.
//!
//! The representation is a sound *approximation*: wait-for edges point at
//! the representative rather than at every reader, so a cycle through a
//! non-representative reader can be missed until the crowd drains, and a
//! cycle through the representative may be reported even though another
//! reader keeps the section alive. Both err on the side the paper accepts
//! — detection may fire late or conservatively, avoidance still keys on
//! acquisition sites, and accounting never corrupts.
//!
//! Like `std::sync::RwLock`, the lock is not reentrant and acquisitions do
//! not upgrade: a thread that already holds **any** guard on this lock
//! (read or write) must not call `read`/`write` again. In particular a
//! read→write upgrade (`let g = rw.read()?; rw.write()?`) deadlocks the
//! calling thread exactly as it does with `std::sync::RwLock`, and the
//! engine cannot rescue it: if the thread is the crowd representative the
//! write request looks reentrant (screening is skipped), and otherwise the
//! wait-for edge points at the representative and never closes a cycle.

use crate::runtime::{DimmunixRuntime, LockError};
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::{LockId, ThreadId};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock whose acquisitions are screened by Dimmunix.
///
/// ```
/// use dimmunix_rt::ImmuneRwLock;
///
/// let config = ImmuneRwLock::new(vec!["a", "b"]);
/// assert_eq!(config.read()?.len(), 2);
/// config.write()?.push("c");
/// assert_eq!(config.read()?.len(), 3);
/// # Ok::<(), dimmunix_rt::LockError>(())
/// ```
pub struct ImmuneRwLock<T: ?Sized> {
    runtime: Arc<DimmunixRuntime>,
    lock_id: LockId,
    /// Reader-crowd accounting: how many read guards are live and which
    /// thread's name the engine-level hold was registered under.
    crowd: Mutex<ReaderCrowd>,
    inner: RwLock<T>,
}

#[derive(Debug, Default)]
struct ReaderCrowd {
    readers: usize,
    representative: Option<ThreadId>,
}

impl<T> ImmuneRwLock<T> {
    /// Creates an immune reader–writer lock protected by the process-global
    /// runtime ([`DimmunixRuntime::global`]) — the drop-in constructor.
    pub fn new(value: T) -> Self {
        Self::new_in(DimmunixRuntime::global(), value)
    }

    /// Creates an immune reader–writer lock protected by an explicit
    /// runtime (multi-runtime tests, benches, paper experiments).
    pub fn new_in(runtime: &Arc<DimmunixRuntime>, value: T) -> Self {
        ImmuneRwLock {
            runtime: runtime.clone(),
            lock_id: runtime.allocate_lock(),
            crowd: Mutex::new(ReaderCrowd::default()),
            inner: RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        sync::rwlock_into_inner(self.inner)
    }
}

impl<T: ?Sized> ImmuneRwLock<T> {
    /// The engine-level identifier of this lock.
    pub fn lock_id(&self) -> LockId {
        self.lock_id
    }

    /// Acquires shared read access. The acquisition site is the caller's
    /// source location (`#[track_caller]`); use
    /// [`read_at`](ImmuneRwLock::read_at) to pin an explicit site.
    ///
    /// The calling thread may be parked by the avoidance module if acquiring
    /// here could re-instantiate a known deadlock signature.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] if the acquisition would complete
    /// a deadlock cycle and the runtime's policy is
    /// [`DeadlockPolicy::Error`](crate::DeadlockPolicy::Error).
    #[track_caller]
    pub fn read(&self) -> Result<ImmuneRwLockReadGuard<'_, T>, LockError> {
        self.read_at(AcquisitionSite::here())
    }

    /// [`read`](ImmuneRwLock::read) with an explicit acquisition site (use
    /// [`acquire_site!`](crate::acquire_site)).
    ///
    /// # Errors
    /// Same as [`read`](ImmuneRwLock::read).
    pub fn read_at(
        &self,
        site: AcquisitionSite,
    ) -> Result<ImmuneRwLockReadGuard<'_, T>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        let guard = sync::read(&self.inner);
        // Join the crowd. The crowd mutex serializes engine-level
        // register/release with other readers, so the acquired/released
        // pairing stays exact no matter how reads interleave.
        let mut crowd = sync::lock(&self.crowd);
        if crowd.readers == 0 {
            // First reader in: register the crowd's single engine hold in
            // this thread's name.
            self.runtime.after_acquire(self.lock_id);
            crowd.representative = Some(self.runtime.current_thread());
        } else {
            // The crowd is already represented; retract the approved
            // request so no stale edge or queue entry lingers.
            self.runtime.cancel_acquire(self.lock_id);
        }
        crowd.readers += 1;
        drop(crowd);
        Ok(ImmuneRwLockReadGuard {
            lock: self,
            guard: Some(guard),
        })
    }

    /// Acquires exclusive write access. The acquisition site is the
    /// caller's source location (`#[track_caller]`); use
    /// [`write_at`](ImmuneRwLock::write_at) to pin an explicit site.
    ///
    /// # Errors
    /// Same as [`read`](ImmuneRwLock::read).
    #[track_caller]
    pub fn write(&self) -> Result<ImmuneRwLockWriteGuard<'_, T>, LockError> {
        self.write_at(AcquisitionSite::here())
    }

    /// [`write`](ImmuneRwLock::write) with an explicit acquisition site.
    ///
    /// # Errors
    /// Same as [`read`](ImmuneRwLock::read).
    pub fn write_at(
        &self,
        site: AcquisitionSite,
    ) -> Result<ImmuneRwLockWriteGuard<'_, T>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        let guard = sync::write(&self.inner);
        self.runtime.after_acquire(self.lock_id);
        Ok(ImmuneRwLockWriteGuard {
            lock: self,
            guard: Some(guard),
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for ImmuneRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneRwLock")
            .field("lock_id", &self.lock_id)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for shared read access to an [`ImmuneRwLock`].
pub struct ImmuneRwLockReadGuard<'a, T: ?Sized> {
    lock: &'a ImmuneRwLock<T>,
    guard: Option<RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for ImmuneRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for ImmuneRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let mut crowd = sync::lock(&self.lock.crowd);
        crowd.readers -= 1;
        if crowd.readers == 0 {
            // Last reader out releases the crowd's engine hold in the
            // representative's name (§4: Release() runs right before the
            // real lock is released).
            if let Some(representative) = crowd.representative.take() {
                self.lock
                    .runtime
                    .before_release_as(representative, self.lock.lock_id);
            }
        }
        drop(self.guard.take());
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for ImmuneRwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneRwLockReadGuard")
            .finish_non_exhaustive()
    }
}

/// RAII guard for exclusive write access to an [`ImmuneRwLock`]; releasing
/// it notifies Dimmunix before the underlying lock is unlocked.
pub struct ImmuneRwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a ImmuneRwLock<T>,
    guard: Option<RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for ImmuneRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for ImmuneRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for ImmuneRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.runtime.before_release(self.lock.lock_id);
        drop(self.guard.take());
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for ImmuneRwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneRwLockWriteGuard")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn read_write_roundtrip_balances_engine_accounting() {
        let rt = DimmunixRuntime::new();
        let rw = ImmuneRwLock::new_in(&rt, 1u32);
        {
            let g = rw.read().unwrap();
            assert_eq!(*g, 1);
        }
        {
            let mut g = rw.write().unwrap();
            *g = 2;
        }
        assert_eq!(*rw.read().unwrap(), 2);
        assert_eq!(rw.into_inner(), 2);
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, 3);
        assert_eq!(stats.releases, 3);
    }

    #[test]
    fn readers_run_concurrently() {
        let rt = DimmunixRuntime::new();
        let rw = Arc::new(ImmuneRwLock::new_in(&rt, 0u32));
        const READERS: usize = 4;
        // Every reader must be inside the read section at the same time
        // before any of them leaves — impossible if reads excluded each
        // other.
        let inside = Arc::new(Barrier::new(READERS));
        let mut handles = Vec::new();
        for _ in 0..READERS {
            let rw = rw.clone();
            let inside = inside.clone();
            handles.push(std::thread::spawn(move || {
                let g = rw.read().unwrap();
                inside.wait();
                *g
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
        let stats = rt.stats();
        // One engine hold per crowd: fewer engine acquisitions than read
        // guards is the crowd model working, but every registered
        // acquisition must be matched by a release.
        assert_eq!(stats.acquisitions, stats.releases);
        assert_eq!(stats.deadlocks_detected, 0);
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let rt = DimmunixRuntime::new();
        let rw = Arc::new(ImmuneRwLock::new_in(&rt, 0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rw = rw.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    *rw.write().unwrap() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*rw.read().unwrap(), 2000);
    }

    #[test]
    fn crowd_survives_out_of_order_reader_exits() {
        // The representative (first reader) leaves first; the engine hold
        // must survive until the *last* reader leaves, and accounting must
        // balance afterwards.
        let rt = DimmunixRuntime::new();
        let rw = Arc::new(ImmuneRwLock::new_in(&rt, ()));
        let first_in = Arc::new(Barrier::new(2));
        let second_in = Arc::new(Barrier::new(2));

        let (rw1, fi1, si1) = (rw.clone(), first_in.clone(), second_in.clone());
        let representative = std::thread::spawn(move || {
            let g = rw1.read().unwrap();
            fi1.wait(); // let the second reader join the crowd
            si1.wait();
            drop(g); // representative leaves while the crowd lives on
        });
        first_in.wait();
        let g = rw.read().unwrap();
        second_in.wait();
        representative.join().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        drop(g); // last reader out releases the crowd's engine hold
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, stats.releases);
        // A fresh writer can still come and go cleanly.
        drop(rw.write().unwrap());
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, stats.releases);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImmuneRwLock<Vec<u8>>>();
    }
}
