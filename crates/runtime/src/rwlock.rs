//! `ImmuneRwLock` — a drop-in `std::sync::RwLock` with deadlock immunity.
//!
//! Both read and write acquisitions are screened through the same
//! shard-routed engine path as [`ImmuneMutex`](crate::ImmuneMutex): the
//! full `request` screening (RAG cycle detection **and** signature
//! avoidance) runs before the real `RwLock` is touched, so reader/writer
//! and writer/writer lock inversions develop antibodies exactly like
//! monitor inversions do.
//!
//! ## Exact shared-reader semantics
//!
//! The engine's RAG carries **multi-owner lock nodes**: every reader of a
//! crowd registers its own hold (its own acquisition site, `acqPos`, and
//! acquisition sequence number) through
//! [`DimmunixRuntime::before_acquire_shared`], and releases it itself when
//! its guard drops. A writer blocked behind the crowd has a wait-for edge
//! to **every** current reader, so a cycle through any reader — not just
//! the first one in — is detected on its first occurrence, and the
//! signature's template positions come from the reader actually on the
//! cycle. Conversely, a reader that left the section carries no stale
//! engine hold, so no cycle can be pinned on it spuriously. Readers
//! joining an existing crowd conflict with no one: the engine treats
//! shared/shared as compatible in both detection (no wait-for edge) and
//! avoidance (crowd-mates are not instantiation blockers).
//!
//! Like `std::sync::RwLock`, the lock is not reentrant and acquisitions do
//! not upgrade: a thread that already holds **any** guard on this lock
//! (read or write) must not call `read`/`write` again. A read→write
//! upgrade (`let g = rw.read()?; rw.write()?`) deadlocks the calling
//! thread exactly as it does with `std::sync::RwLock`, and the engine
//! cannot rescue it: a thread's request against a lock it already owns is
//! a self-edge the wait-for relation (correctly) ignores.
//!
//! One modeling gap remains, shared with the previous design: if the OS
//! rwlock implements writer preference, a *new* reader can block behind a
//! waiting writer; the engine does not model that reader→writer wait (it
//! sees only reader→owner conflicts), so cycles that exist purely because
//! of writer-preference queuing are handled by the paper's fail-safe
//! machinery (timeouts/retries at the substrate level), not by detection.

use crate::runtime::{DimmunixRuntime, LockError};
use crate::site::AcquisitionSite;
use crate::sync;
use dimmunix_core::LockId;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock whose acquisitions are screened by Dimmunix.
///
/// ```
/// use dimmunix_rt::ImmuneRwLock;
///
/// let config = ImmuneRwLock::new(vec!["a", "b"]);
/// assert_eq!(config.read()?.len(), 2);
/// config.write()?.push("c");
/// assert_eq!(config.read()?.len(), 3);
/// # Ok::<(), dimmunix_rt::LockError>(())
/// ```
pub struct ImmuneRwLock<T: ?Sized> {
    runtime: Arc<DimmunixRuntime>,
    lock_id: LockId,
    inner: RwLock<T>,
}

impl<T> ImmuneRwLock<T> {
    /// Creates an immune reader–writer lock protected by the process-global
    /// runtime ([`DimmunixRuntime::global`]) — the drop-in constructor.
    pub fn new(value: T) -> Self {
        Self::new_in(&DimmunixRuntime::global(), value)
    }

    /// Creates an immune reader–writer lock protected by an explicit
    /// runtime (multi-runtime tests, benches, paper experiments).
    pub fn new_in(runtime: &Arc<DimmunixRuntime>, value: T) -> Self {
        ImmuneRwLock {
            runtime: runtime.clone(),
            lock_id: runtime.allocate_lock(),
            inner: RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        sync::rwlock_into_inner(self.inner)
    }
}

impl<T: ?Sized> ImmuneRwLock<T> {
    /// The engine-level identifier of this lock.
    pub fn lock_id(&self) -> LockId {
        self.lock_id
    }

    /// Acquires shared read access. The acquisition site is the caller's
    /// source location (`#[track_caller]`); use
    /// [`read_at`](ImmuneRwLock::read_at) to pin an explicit site.
    ///
    /// The calling thread registers its **own** engine-level hold (one
    /// owner among possibly many) and may be parked by the avoidance module
    /// if acquiring here could re-instantiate a known deadlock signature;
    /// joining an already-reading crowd is always compatible.
    ///
    /// # Errors
    /// Returns [`LockError::WouldDeadlock`] if the acquisition would complete
    /// a deadlock cycle and the runtime's policy is
    /// [`DeadlockPolicy::Error`](crate::DeadlockPolicy::Error).
    #[track_caller]
    pub fn read(&self) -> Result<ImmuneRwLockReadGuard<'_, T>, LockError> {
        self.read_at(AcquisitionSite::here())
    }

    /// [`read`](ImmuneRwLock::read) with an explicit acquisition site (use
    /// [`acquire_site!`](crate::acquire_site)).
    ///
    /// # Errors
    /// Same as [`read`](ImmuneRwLock::read).
    pub fn read_at(
        &self,
        site: AcquisitionSite,
    ) -> Result<ImmuneRwLockReadGuard<'_, T>, LockError> {
        self.runtime.before_acquire_shared(self.lock_id, site)?;
        let guard = sync::read(&self.inner);
        self.runtime.after_acquire(self.lock_id);
        Ok(ImmuneRwLockReadGuard {
            lock: self,
            guard: Some(guard),
        })
    }

    /// Acquires exclusive write access. The acquisition site is the
    /// caller's source location (`#[track_caller]`); use
    /// [`write_at`](ImmuneRwLock::write_at) to pin an explicit site.
    ///
    /// # Errors
    /// Same as [`read`](ImmuneRwLock::read).
    #[track_caller]
    pub fn write(&self) -> Result<ImmuneRwLockWriteGuard<'_, T>, LockError> {
        self.write_at(AcquisitionSite::here())
    }

    /// [`write`](ImmuneRwLock::write) with an explicit acquisition site.
    ///
    /// # Errors
    /// Same as [`read`](ImmuneRwLock::read).
    pub fn write_at(
        &self,
        site: AcquisitionSite,
    ) -> Result<ImmuneRwLockWriteGuard<'_, T>, LockError> {
        self.runtime.before_acquire(self.lock_id, site)?;
        let guard = sync::write(&self.inner);
        self.runtime.after_acquire(self.lock_id);
        Ok(ImmuneRwLockWriteGuard {
            lock: self,
            guard: Some(guard),
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for ImmuneRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneRwLock")
            .field("lock_id", &self.lock_id)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for shared read access to an [`ImmuneRwLock`]; releasing it
/// notifies Dimmunix (dropping this reader's own engine hold) before the
/// underlying lock is unlocked.
pub struct ImmuneRwLockReadGuard<'a, T: ?Sized> {
    lock: &'a ImmuneRwLock<T>,
    guard: Option<RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for ImmuneRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for ImmuneRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // §4: Release() runs right before the real lock is released. Each
        // reader releases exactly the hold it registered; co-readers keep
        // theirs.
        self.lock.runtime.before_release(self.lock.lock_id);
        drop(self.guard.take());
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for ImmuneRwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneRwLockReadGuard")
            .finish_non_exhaustive()
    }
}

/// RAII guard for exclusive write access to an [`ImmuneRwLock`]; releasing
/// it notifies Dimmunix before the underlying lock is unlocked.
pub struct ImmuneRwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a ImmuneRwLock<T>,
    guard: Option<RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for ImmuneRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for ImmuneRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for ImmuneRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.runtime.before_release(self.lock.lock_id);
        drop(self.guard.take());
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for ImmuneRwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmuneRwLockWriteGuard")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn read_write_roundtrip_balances_engine_accounting() {
        let rt = DimmunixRuntime::new();
        let rw = ImmuneRwLock::new_in(&rt, 1u32);
        {
            let g = rw.read().unwrap();
            assert_eq!(*g, 1);
        }
        {
            let mut g = rw.write().unwrap();
            *g = 2;
        }
        assert_eq!(*rw.read().unwrap(), 2);
        assert_eq!(rw.into_inner(), 2);
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, 3);
        assert_eq!(stats.releases, 3);
    }

    #[test]
    fn readers_run_concurrently_each_with_their_own_hold() {
        let rt = DimmunixRuntime::new();
        let rw = Arc::new(ImmuneRwLock::new_in(&rt, 0u32));
        const READERS: usize = 4;
        // Every reader must be inside the read section at the same time
        // before any of them leaves — impossible if reads excluded each
        // other.
        let inside = Arc::new(Barrier::new(READERS));
        let mut handles = Vec::new();
        for _ in 0..READERS {
            let rw = rw.clone();
            let inside = inside.clone();
            handles.push(std::thread::spawn(move || {
                let g = rw.read().unwrap();
                inside.wait();
                *g
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
        let stats = rt.stats();
        // Exact multi-owner accounting: one engine acquisition and one
        // release per reader, not one per crowd.
        assert_eq!(stats.acquisitions, READERS as u64);
        assert_eq!(stats.releases, READERS as u64);
        assert_eq!(stats.deadlocks_detected, 0);
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let rt = DimmunixRuntime::new();
        let rw = Arc::new(ImmuneRwLock::new_in(&rt, 0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rw = rw.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    *rw.write().unwrap() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*rw.read().unwrap(), 2000);
    }

    #[test]
    fn out_of_order_reader_exits_balance_exactly() {
        // The first reader in leaves first; the second reader's own engine
        // hold must survive, and accounting must balance afterwards. (Under
        // the old representative protocol the crowd's single hold stayed
        // registered in the *departed* first reader's name.)
        let rt = DimmunixRuntime::new();
        let rw = Arc::new(ImmuneRwLock::new_in(&rt, ()));
        let first_in = Arc::new(Barrier::new(2));
        let second_in = Arc::new(Barrier::new(2));

        let (rw1, fi1, si1) = (rw.clone(), first_in.clone(), second_in.clone());
        let first_reader = std::thread::spawn(move || {
            let g = rw1.read().unwrap();
            fi1.wait(); // let the second reader join the crowd
            si1.wait();
            drop(g); // first reader leaves while the crowd lives on
        });
        first_in.wait();
        let g = rw.read().unwrap();
        second_in.wait();
        first_reader.join().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        drop(g); // last reader out releases its own hold
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, stats.releases);
        // A fresh writer can still come and go cleanly.
        drop(rw.write().unwrap());
        let stats = rt.stats();
        assert_eq!(stats.acquisitions, stats.releases);
    }

    /// Regression (tentpole acceptance): a cycle through a
    /// **non-first-in** reader is caught at its first occurrence. Under the
    /// single-owner representative mapping the writer's wait-for edge
    /// pointed only at the first reader in, so this schedule was a missed
    /// detection — a genuine hang.
    #[test]
    fn cycle_through_non_representative_reader_learns_on_first_occurrence() {
        let rt = DimmunixRuntime::new(); // DeadlockPolicy::Error
        let a = Arc::new(ImmuneRwLock::new_in(&rt, 0u32));
        let b = Arc::new(ImmuneRwLock::new_in(&rt, 0u32));

        // r1 (this thread) is the first reader into `a`; r2 joins the crowd
        // second (before any writer arrives — std's RwLock may hold new
        // readers back once a writer waits).
        let r1_guard = a.read().unwrap();
        let (r2_in_tx, r2_in_rx) = mpsc::channel::<()>();
        let (r2_go_tx, r2_go_rx) = mpsc::channel::<()>();
        let (ra2, rb2) = (a.clone(), b.clone());
        let r2 = std::thread::spawn(move || {
            let ga = ra2.read().unwrap();
            r2_in_tx.send(()).unwrap();
            r2_go_rx.recv().unwrap();
            // Closes the cycle r2 -> writer -> r2 through the *second*
            // reader of `a`'s crowd; must be refused, not hang.
            let refused = rb2.read();
            drop(ga);
            refused.err()
        });
        r2_in_rx.recv().unwrap();

        // The writer takes `b`, then blocks writing `a` (two readers hold it).
        let (writer_has_b_tx, writer_has_b_rx) = mpsc::channel::<()>();
        let (rw, rb) = (a.clone(), b.clone());
        let writer = std::thread::spawn(move || {
            let gb = rb.write().unwrap();
            writer_has_b_tx.send(()).unwrap();
            // Blocks on the real rwlock until both readers leave; the engine
            // request edge (writer -> every reader of `a`) is registered
            // before the block.
            let ga = rw.write().unwrap();
            drop(ga);
            drop(gb);
        });
        writer_has_b_rx.recv().unwrap();
        // Let the writer actually park inside `a.write()` so its request
        // edge is in the RAG.
        std::thread::sleep(Duration::from_millis(80));
        r2_go_tx.send(()).unwrap();

        let refusal = r2.join().unwrap();
        assert!(
            matches!(refusal, Some(LockError::WouldDeadlock { .. })),
            "the second reader's request must be refused at first occurrence, got {refusal:?}"
        );
        drop(r1_guard); // writer can now proceed
        writer.join().unwrap();

        let stats = rt.stats();
        assert_eq!(stats.deadlocks_detected, 1, "{stats}");
        assert_eq!(rt.history().len(), 1, "the antibody must be learned");
        assert_eq!(stats.acquisitions, stats.releases);
    }

    /// Regression (tentpole acceptance): the old representative
    /// false-positive schedule now acquires cleanly. Under the single-owner
    /// mapping the crowd's hold stayed registered in the first reader's
    /// name after that reader left, so the departed reader's next request
    /// could close a cycle against *its own stale hold* — a spurious
    /// refusal. With per-reader holds the departed reader owns nothing and
    /// must sail through.
    #[test]
    fn departed_first_reader_is_not_refused_spuriously() {
        let rt = DimmunixRuntime::new();
        let a = Arc::new(ImmuneRwLock::new_in(&rt, 0u32));
        let b = Arc::new(ImmuneRwLock::new_in(&rt, 0u32));

        // r1 (this thread) reads `a` first; r2 joins and holds on.
        let r1_guard = a.read().unwrap();
        let (r2_in_tx, r2_in_rx) = mpsc::channel::<()>();
        let (r2_release_tx, r2_release_rx) = mpsc::channel::<()>();
        let ra2 = a.clone();
        let r2 = std::thread::spawn(move || {
            let ga = ra2.read().unwrap();
            r2_in_tx.send(()).unwrap();
            r2_release_rx.recv().unwrap();
            drop(ga);
        });
        r2_in_rx.recv().unwrap();
        // r1 leaves the crowd: its engine hold must vanish with it.
        drop(r1_guard);

        // A writer takes `b` and blocks writing `a` (r2 still reads it).
        let (writer_has_b_tx, writer_has_b_rx) = mpsc::channel::<()>();
        let (rw, rb) = (a.clone(), b.clone());
        let writer = std::thread::spawn(move || {
            let gb = rb.write().unwrap();
            writer_has_b_tx.send(()).unwrap();
            let ga = rw.write().unwrap();
            drop(ga);
            drop(gb);
        });
        writer_has_b_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(80));

        // r1 now writes `b`: waits behind the writer, who waits on r2 only.
        // No cycle exists — the acquisition must succeed once r2 leaves.
        let rb1 = b.clone();
        let r1 = std::thread::spawn(move || rb1.write().map(|_| ()));
        std::thread::sleep(Duration::from_millis(50));
        r2_release_tx.send(()).unwrap();
        r2.join().unwrap();
        writer.join().unwrap();
        r1.join()
            .unwrap()
            .expect("the departed reader must not be refused");

        let stats = rt.stats();
        assert_eq!(
            stats.deadlocks_detected, 0,
            "no cycle exists in this schedule: {stats}"
        );
        assert!(rt.history().is_empty(), "no spurious antibody");
        assert_eq!(stats.acquisitions, stats.releases);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImmuneRwLock<Vec<u8>>>();
    }
}
