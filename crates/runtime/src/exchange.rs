//! Runtime wiring for collaborative immunity (`dimmunix-exchange`).
//!
//! [`ExchangeOptions`] is the builder-facing configuration: pack files to
//! pull at startup and an optional path to push a contribution pack to on
//! every detection. [`ExchangeState`] is the runtime-internal half: the
//! quarantine [`PendingSet`] foreign antibodies wait in until a locally
//! interned position vouches for each of their outer sites, plus counters.
//!
//! The trust model is deliberately one-sided: importing a pack never parks
//! a thread by itself. A foreign signature only starts influencing
//! scheduling after [`DimmunixRuntime`](crate::DimmunixRuntime) observes,
//! via its own acquisition hooks, positions matching every outer site key
//! the signature names — at which point it is re-anchored to those local
//! stacks and appended to the shared history like any homegrown antibody.

use dimmunix_exchange::PendingSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration of the collaborative-exchange wiring, passed to
/// [`RuntimeBuilder::exchange`](crate::RuntimeBuilder::exchange).
#[derive(Debug, Clone, Default)]
pub struct ExchangeOptions {
    /// Origin identifier stamped into exported packs (a process or host
    /// name; free-form lineage metadata).
    pub origin: String,
    /// Pack files pulled at construction. Missing files are skipped
    /// silently (a fleet peer that has not exported yet); files failing an
    /// integrity check are rejected whole and quarantined to
    /// `<path>.corrupt`.
    pub import_paths: Vec<PathBuf>,
    /// Where to write this process's contribution pack (atomically, full
    /// replacement) after each detected deadlock. `None` disables pushing.
    pub export_path: Option<PathBuf>,
}

impl ExchangeOptions {
    /// Starts an empty configuration under the given origin identifier.
    pub fn new(origin: impl Into<String>) -> Self {
        ExchangeOptions {
            origin: origin.into(),
            ..ExchangeOptions::default()
        }
    }

    /// Adds a pack file to pull at startup.
    #[must_use]
    pub fn import(mut self, path: impl Into<PathBuf>) -> Self {
        self.import_paths.push(path.into());
        self
    }

    /// Sets the contribution-pack path pushed to on every detection.
    #[must_use]
    pub fn export(mut self, path: impl Into<PathBuf>) -> Self {
        self.export_path = Some(path.into());
        self
    }
}

/// Counters describing what the exchange wiring has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ExchangeStats {
    /// Foreign antibodies admitted from packs over the runtime's lifetime.
    pub imported: u64,
    /// Foreign antibodies still quarantined, waiting for local evidence.
    pub pending: u64,
    /// Foreign antibodies activated into the live history (startup
    /// screening plus lazy activation as positions interned).
    pub activated: u64,
    /// Import packs rejected whole by an integrity check.
    pub quarantined_packs: u64,
    /// Contribution packs written to the export path.
    pub exported: u64,
}

/// Runtime-internal exchange state: quarantine set plus counters.
#[derive(Debug)]
pub(crate) struct ExchangeState {
    pub(crate) origin: String,
    pub(crate) import_paths: Vec<PathBuf>,
    pub(crate) export_path: Option<PathBuf>,
    pub(crate) pending: Mutex<PendingSet>,
    /// Fast pre-check consulted on every acquisition so the common case —
    /// nothing quarantined — costs one relaxed load, no mutex.
    pub(crate) pending_nonempty: AtomicBool,
    pub(crate) imported: AtomicU64,
    pub(crate) activated: AtomicU64,
    pub(crate) quarantined_packs: AtomicU64,
    pub(crate) exported: AtomicU64,
}

impl ExchangeState {
    pub(crate) fn new(options: ExchangeOptions) -> Self {
        ExchangeState {
            origin: options.origin,
            import_paths: options.import_paths,
            export_path: options.export_path,
            pending: Mutex::new(PendingSet::new()),
            pending_nonempty: AtomicBool::new(false),
            imported: AtomicU64::new(0),
            activated: AtomicU64::new(0),
            quarantined_packs: AtomicU64::new(0),
            exported: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> ExchangeStats {
        ExchangeStats {
            imported: self.imported.load(Ordering::Relaxed),
            pending: crate::sync::lock(&self.pending).len() as u64,
            activated: self.activated.load(Ordering::Relaxed),
            quarantined_packs: self.quarantined_packs.load(Ordering::Relaxed),
            exported: self.exported.load(Ordering::Relaxed),
        }
    }
}
